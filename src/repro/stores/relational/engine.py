"""The relational store: tables, indexes, and SQL execution.

``RelationalStore`` is the MySQL stand-in of the polystore. Tables are
created programmatically with a :class:`TableSchema` (single-column
primary key, per the paper's object-granularity requirement), rows are
validated on every write, and equality indexes accelerate point and IN
lookups. The native language is the SQL subset of
:mod:`repro.stores.relational.parser`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    QueryError,
    SchemaError,
)
from repro.model.objects import DataObject, GlobalKey
from repro.stores.base import Store
from repro.stores.relational.ast import (
    CreateIndex,
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Select,
    Update,
)
from repro.stores.relational.executor import Evaluator, ResultRow, SelectExecutor
from repro.stores.relational.parser import parse_sql
from repro.stores.relational.types import Column, ColumnType, TableSchema


class Table:
    """One table: schema, rows keyed by primary key, equality indexes."""

    def __init__(self, name: str, schema: TableSchema) -> None:
        self.name = name
        self.schema = schema
        self._rows: dict[str, dict[str, Any]] = {}
        self._indexes: dict[str, dict[Any, set[str]]] = {}
        #: Change listener ``(op, table, pk, row)`` installed by the
        #: owning store; ``None`` for standalone tables. Rows reported
        #: are the post-write validated state (``None`` for deletes).
        self.listener: Any = None

    # -- writes ----------------------------------------------------------------

    def insert(self, row: Mapping[str, Any]) -> str:
        validated = self.schema.validate_row(dict(row))
        pk = str(validated[self.schema.primary_key])
        if pk in self._rows:
            raise DuplicateKeyError(f"{self.name}.{pk}")
        self._rows[pk] = validated
        self._index_add(pk, validated)
        if self.listener is not None:
            self.listener("append", self.name, pk, validated)
        return pk

    def update(self, pk: str, changes: Mapping[str, Any]) -> None:
        if pk not in self._rows:
            raise KeyNotFoundError(f"{self.name}.{pk}")
        current = dict(self._rows[pk])
        current.update(changes)
        if str(current[self.schema.primary_key]) != pk:
            raise SchemaError("updating the primary key is not supported")
        validated = self.schema.validate_row(current)
        self._index_remove(pk, self._rows[pk])
        self._rows[pk] = validated
        self._index_add(pk, validated)
        if self.listener is not None:
            self.listener("update", self.name, pk, validated)

    def delete(self, pk: str) -> bool:
        row = self._rows.pop(pk, None)
        if row is None:
            return False
        self._index_remove(pk, row)
        if self.listener is not None:
            self.listener("delete", self.name, pk, None)
        return True

    # -- reads -----------------------------------------------------------------

    def row(self, pk: str) -> dict[str, Any]:
        try:
            return self._rows[pk]
        except KeyError:
            raise KeyNotFoundError(f"{self.name}.{pk}") from None

    def rows(self) -> Iterator[tuple[str, dict[str, Any]]]:
        return iter(self._rows.items())

    def __len__(self) -> int:
        return len(self._rows)

    # -- indexes ----------------------------------------------------------------

    def create_index(self, column: str) -> None:
        self.schema.column(column)  # validates existence
        if column == self.schema.primary_key or column in self._indexes:
            # Idempotent: the column is already covered (by the primary
            # key or an existing index, which writes keep current), so
            # re-creating must not rebuild from scratch.
            return
        index: dict[Any, set[str]] = {}
        for pk, row in self._rows.items():
            index.setdefault(row.get(column), set()).add(pk)
        self._indexes[column] = index

    def get_rows(self, pks: Iterable[str]) -> list[tuple[str, dict[str, Any]]]:
        """Point-probe several primary keys at once (``WHERE pk IN``);
        missing keys are skipped."""
        rows = self._rows
        return [(pk, rows[pk]) for pk in pks if pk in rows]

    def has_index(self, column: str) -> bool:
        return column == self.schema.primary_key or column in self._indexes

    def index_lookup(self, column: str, value: Any) -> list[str]:
        if column == self.schema.primary_key:
            pk = str(value) if value is not None else None
            return [pk] if pk in self._rows else []
        index = self._indexes.get(column)
        if index is None:
            raise QueryError(f"no index on {self.name}.{column}")
        return sorted(index.get(value, ()))

    def _index_add(self, pk: str, row: Mapping[str, Any]) -> None:
        for column, index in self._indexes.items():
            index.setdefault(row.get(column), set()).add(pk)

    def _index_remove(self, pk: str, row: Mapping[str, Any]) -> None:
        for column, index in self._indexes.items():
            bucket = index.get(row.get(column))
            if bucket:
                bucket.discard(pk)


class RelationalStore(Store):
    """An in-memory relational database speaking the SQL subset."""

    engine = "relational"

    def __init__(self) -> None:
        super().__init__()
        self._tables: dict[str, Table] = {}

    # -- DDL -------------------------------------------------------------------

    def create_table(self, name: str, schema: TableSchema) -> Table:
        if name in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, schema)
        table.listener = self._table_change
        self._tables[name] = table
        return table

    def _table_change(
        self, op: str, table: str, pk: str, row: Any
    ) -> None:
        """Forward table-level writes to the CDC outbox, if attached."""
        self._emit_change(op, table, pk, row)

    def drop_table(self, name: str) -> None:
        self._tables.pop(name, None)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise QueryError(f"unknown table {name!r}") from None

    def tables(self) -> list[str]:
        return sorted(self._tables)

    # -- SQL entry points ---------------------------------------------------------

    def sql(self, statement: str) -> list[dict[str, Any]]:
        """Run any SQL statement; SELECTs return plain value dicts."""
        return [row.values for row in self.sql_rows(statement)]

    def sql_rows(self, statement: str) -> list[ResultRow]:
        """Run SQL and return rows with provenance (QUEPA's entry point)."""
        parsed = parse_sql(statement)
        if isinstance(parsed, Select):
            self.stats.queries += 1
            rows = SelectExecutor(self).run(parsed)
            self.stats.objects_returned += len(rows)
            return rows
        if isinstance(parsed, Insert):
            self._run_insert(parsed)
            return []
        if isinstance(parsed, Update):
            self._run_update(parsed)
            return []
        if isinstance(parsed, Delete):
            self._run_delete(parsed)
            return []
        if isinstance(parsed, CreateTable):
            self._run_create_table(parsed)
            return []
        if isinstance(parsed, CreateIndex):
            self.table(parsed.table).create_index(parsed.column)
            return []
        if isinstance(parsed, DropTable):
            if parsed.table not in self._tables and not parsed.if_exists:
                raise QueryError(f"unknown table {parsed.table!r}")
            self.drop_table(parsed.table)
            return []
        raise QueryError(f"unsupported statement: {statement!r}")

    def _run_create_table(self, create: CreateTable) -> None:
        if create.table in self._tables:
            if create.if_not_exists:
                return
            raise SchemaError(f"table {create.table!r} already exists")
        schema = TableSchema(
            columns=[
                Column(c.name, ColumnType(c.type_name), c.nullable)
                for c in create.columns
            ],
            primary_key=create.primary_key,
        )
        self.create_table(create.table, schema)

    def _run_insert(self, insert: Insert) -> None:
        table = self.table(insert.table)
        columns = list(insert.columns) or table.schema.column_names
        evaluator = Evaluator()
        for value_tuple in insert.rows:
            if len(value_tuple) != len(columns):
                raise QueryError(
                    f"INSERT has {len(value_tuple)} values for "
                    f"{len(columns)} columns"
                )
            row = {
                column: evaluator.value(expr, {})
                for column, expr in zip(columns, value_tuple)
            }
            table.insert(row)
            self.stats.writes += 1

    def _run_update(self, update: Update) -> None:
        table = self.table(update.table)
        evaluator = Evaluator()
        targets = []
        for pk, row in table.rows():
            env = {update.table: row}
            if update.where is None or evaluator.value(update.where, env) is True:
                targets.append(pk)
        for pk in targets:
            env = {update.table: table.row(pk)}
            changes = {
                assignment.column: evaluator.value(assignment.value, env)
                for assignment in update.assignments
            }
            table.update(pk, changes)
            self.stats.writes += 1

    def _run_delete(self, delete: Delete) -> None:
        table = self.table(delete.table)
        evaluator = Evaluator()
        targets = []
        for pk, row in table.rows():
            env = {delete.table: row}
            if delete.where is None or evaluator.value(delete.where, env) is True:
                targets.append(pk)
        for pk in targets:
            table.delete(pk)
            self.stats.writes += 1

    # -- Store contract --------------------------------------------------------------

    def execute(self, query: Any) -> list[DataObject]:
        """Native query: a SQL string. Rows with provenance become data
        objects keyed by their base-table primary key; derived rows
        (joins, expressions over multiple tables) get synthetic keys in
        the pseudo-collection ``_result`` and are never augmentable."""
        if not isinstance(query, str):
            raise QueryError(f"relational queries are SQL strings, got {query!r}")
        rows = self.sql_rows(query)
        database = self.database_name or "sql"
        objects: list[DataObject] = []
        for position, row in enumerate(rows):
            if row.pk is not None and row.table is not None:
                key = GlobalKey(database, row.table, row.pk)
            else:
                key = GlobalKey(database, "_result", f"row{position}")
            objects.append(DataObject(key, dict(row.values)))
        return objects

    def _explain_plan(self, query: Any) -> dict[str, Any]:
        """Access path for a SQL SELECT: index probe when the WHERE has
        a usable equality/IN conjunct on an indexed column (the same
        test :class:`SelectExecutor` applies), full table scan
        otherwise. Joins report their strategy (hash vs. nested loop)."""
        from repro.stores.relational.executor import (
            _index_lookup,
            _join_equality,
        )

        if not isinstance(query, str):
            raise QueryError(
                f"relational queries are SQL strings, got {query!r}"
            )
        parsed = parse_sql(query)
        if not isinstance(parsed, Select):
            return {
                "access_path": "statement",
                "index": None,
                "statement": type(parsed).__name__,
                "estimated_rows": 0,
                "estimated_cost": 0.0,
            }
        table = self.table(parsed.table.name)
        lookup = _index_lookup(parsed.where, parsed.table.binding, table)
        if lookup is not None:
            column, values = lookup
            examined = sum(
                len(table.index_lookup(column, value)) for value in values
            )
            plan: dict[str, Any] = {
                "access_path": "index_probe",
                "index": f"{parsed.table.name}.{column}",
                "estimated_rows": examined,
                "estimated_cost": float(examined),
            }
        else:
            examined = len(table)
            plan = {
                "access_path": "full_scan",
                "index": None,
                "estimated_rows": examined,
                "estimated_cost": float(examined),
            }
        plan["table"] = parsed.table.name
        if parsed.joins:
            joins = []
            cost = plan["estimated_cost"]
            for join in parsed.joins:
                right = self.table(join.table.name)
                hashed = _join_equality(join.on, join.table.binding) is not None
                joins.append(
                    {
                        "table": join.table.name,
                        "strategy": "hash_join" if hashed else "nested_loop",
                        "rows": len(right),
                    }
                )
                # A hash join builds once and probes per row; a nested
                # loop re-scans the right side for every left row.
                if hashed:
                    cost += len(right) + plan["estimated_rows"]
                else:
                    cost += plan["estimated_rows"] * len(right)
            plan["joins"] = joins
            plan["estimated_cost"] = float(cost)
        return plan

    def get_value(self, collection: str, key: str) -> Any:
        table = self._tables.get(collection)
        if table is None:
            raise KeyNotFoundError(f"no table {collection!r}")
        return dict(table.row(key))

    def multi_get(self, keys) -> list[DataObject]:  # type: ignore[override]
        """Batch fetch via one logical ``WHERE pk IN (...)`` per table.

        Keys are grouped per table and probed through the primary-key
        map in one pass each; duplicates fetch once and missing keys
        are dropped. Results keep first-occurrence input order.
        """
        self.stats.multi_gets += 1
        unique_keys = list(dict.fromkeys(keys))
        by_table: dict[str, list[GlobalKey]] = {}
        for key in unique_keys:
            by_table.setdefault(key.collection, []).append(key)
        fetched: dict[GlobalKey, DataObject] = {}
        for collection, table_keys in by_table.items():
            table = self._tables.get(collection)
            if table is None:
                continue
            rows = dict(table.get_rows(key.key for key in table_keys))
            for key in table_keys:
                row = rows.get(key.key)
                if row is not None:
                    fetched[key] = DataObject(key, dict(row))
        found = [fetched[key] for key in unique_keys if key in fetched]
        self.stats.objects_returned += len(found)
        return found

    def collections(self) -> list[str]:
        return self.tables()

    def collection_keys(self, collection: str) -> Iterator[str]:
        table = self._tables.get(collection)
        if table is None:
            return iter(())
        return iter([pk for pk, __ in table.rows()])

    # -- convenience -------------------------------------------------------------------

    def insert_row(self, table: str, row: Mapping[str, Any]) -> str:
        """Programmatic insert (used by the workload generator)."""
        pk = self.table(table).insert(row)
        self.stats.writes += 1
        return pk
