"""Evaluation of parsed SQL statements against in-memory tables.

Implements SQL three-valued logic (comparisons with NULL yield NULL;
WHERE keeps rows whose predicate is TRUE), MySQL-style case-insensitive
LIKE, nested-loop joins with an equality fast path, grouping and the
five standard aggregates, ORDER BY with NULLs first, and LIMIT/OFFSET.

Result rows carry *provenance*: for single-table non-aggregate queries
each output row remembers the primary key of the base row it came from,
which is what lets QUEPA map results back to data objects.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import QueryError, UnsupportedQueryError
from repro.stores.relational.ast import (
    AGGREGATE_FUNCTIONS,
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InOp,
    IsNullOp,
    LikeOp,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    UnaryOp,
    contains_aggregate,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stores.relational.engine import RelationalStore, Table

#: A row environment: binding name -> column dict.
Env = dict[str, dict[str, Any]]


class ResultRow:
    """One output row plus the provenance of its base-table row."""

    __slots__ = ("values", "pk", "table")

    def __init__(self, values: dict[str, Any], pk: Optional[str], table: Optional[str]):
        self.values = values
        self.pk = pk
        self.table = table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultRow({self.values!r}, pk={self.pk!r})"


@lru_cache(maxsize=1024)
def _like_regex(pattern: str) -> re.Pattern[str]:
    """Translate a SQL LIKE pattern to a compiled regex.

    ``%`` matches any sequence, ``_`` any single character; everything
    else is literal. Matching is case-insensitive, as in MySQL's default
    collation.
    """
    out: list[str] = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.IGNORECASE | re.DOTALL)


class Evaluator:
    """Expression evaluation against a row environment."""

    def __init__(self, default_binding: Optional[str] = None):
        self.default_binding = default_binding

    def value(self, expr: Expr, env: Env) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            return self._column(expr, env)
        if isinstance(expr, BinaryOp):
            return self._binary(expr, env)
        if isinstance(expr, UnaryOp):
            operand = self.value(expr.operand, env)
            if expr.op == "NOT":
                return None if operand is None else not _truthy(operand)
            if expr.op == "-":
                return None if operand is None else -operand
            raise QueryError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, LikeOp):
            text = self.value(expr.expr, env)
            pattern = self.value(expr.pattern, env)
            if text is None or pattern is None:
                return None
            matched = _like_regex(str(pattern)).match(str(text)) is not None
            return matched != expr.negated
        if isinstance(expr, InOp):
            candidate = self.value(expr.expr, env)
            if candidate is None:
                return None
            values = [self.value(item, env) for item in expr.items]
            found = candidate in [v for v in values if v is not None]
            if not found and None in values:
                return None
            return found != expr.negated
        if isinstance(expr, BetweenOp):
            candidate = self.value(expr.expr, env)
            low = self.value(expr.low, env)
            high = self.value(expr.high, env)
            if candidate is None or low is None or high is None:
                return None
            return (low <= candidate <= high) != expr.negated
        if isinstance(expr, IsNullOp):
            is_null = self.value(expr.expr, env) is None
            return is_null != expr.negated
        if isinstance(expr, FuncCall):
            if expr.name in AGGREGATE_FUNCTIONS:
                raise QueryError(
                    f"aggregate {expr.name} used outside aggregation context"
                )
            return self._scalar_function(expr, env)
        if isinstance(expr, Star):
            raise QueryError("'*' is only valid in a select list or COUNT(*)")
        raise QueryError(f"cannot evaluate expression {expr!r}")

    def _column(self, ref: ColumnRef, env: Env) -> Any:
        if ref.table is not None:
            if ref.table not in env:
                raise QueryError(f"unknown table alias {ref.table!r}")
            row = env[ref.table]
            if ref.name not in row:
                raise QueryError(f"unknown column {ref}")
            return row[ref.name]
        hits = [
            binding
            for binding, row in env.items()
            if not binding.startswith("__") and ref.name in row
        ]
        if not hits:
            raise QueryError(f"unknown column {ref.name!r}")
        if len(hits) > 1:
            raise QueryError(f"ambiguous column {ref.name!r} (in {sorted(hits)})")
        return env[hits[0]][ref.name]

    def _binary(self, expr: BinaryOp, env: Env) -> Any:
        op = expr.op
        if op == "AND":
            left = self.value(expr.left, env)
            if left is not None and not _truthy(left):
                return False
            right = self.value(expr.right, env)
            if right is not None and not _truthy(right):
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.value(expr.left, env)
            if left is not None and _truthy(left):
                return True
            right = self.value(expr.right, env)
            if right is not None and _truthy(right):
                return True
            if left is None or right is None:
                return None
            return False
        left = self.value(expr.left, env)
        right = self.value(expr.right, env)
        if left is None or right is None:
            return None
        try:
            if op == "=":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    return None  # MySQL semantics: division by zero is NULL
                return left / right
        except TypeError as exc:
            raise QueryError(f"type error in {op}: {exc}") from None
        raise QueryError(f"unknown binary operator {op!r}")

    def _scalar_function(self, expr: FuncCall, env: Env) -> Any:
        args = [self.value(arg, env) for arg in expr.args]
        name = expr.name
        if name == "COALESCE":
            for arg in args:
                if arg is not None:
                    return arg
            return None
        if not args or args[0] is None:
            return None
        if name == "UPPER":
            return str(args[0]).upper()
        if name == "LOWER":
            return str(args[0]).lower()
        if name == "LENGTH":
            return len(str(args[0]))
        if name == "ABS":
            return abs(args[0])
        if name == "ROUND":
            digits = int(args[1]) if len(args) > 1 and args[1] is not None else 0
            return round(args[0], digits)
        raise QueryError(f"unknown scalar function {name!r}")


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return bool(value)


class SelectExecutor:
    """Executes a parsed SELECT against a relational store."""

    def __init__(self, store: "RelationalStore") -> None:
        self.store = store
        self.evaluator = Evaluator()

    def run(self, select: Select) -> list[ResultRow]:
        envs = self._scan(select)
        if select.where is not None:
            envs = [
                env for env in envs
                if self.evaluator.value(select.where, env) is True
            ]
        if select.is_aggregate():
            rows = self._aggregate(select, envs)
        else:
            rows = [self._project(select, env) for env in envs]
        if select.distinct:
            rows = _distinct(rows)
        if select.order_by:
            # After DISTINCT or aggregation, ORDER BY may only reference
            # the select list (row alignment with scan envs is lost).
            aligned = envs if not (select.is_aggregate() or select.distinct) else None
            rows = self._order(select.order_by, rows, aligned)
        if select.offset:
            rows = rows[select.offset:]
        if select.limit is not None:
            rows = rows[: select.limit]
        return rows

    # -- scan & join ------------------------------------------------------------

    def _scan(self, select: Select) -> list[Env]:
        base_table = self.store.table(select.table.name)
        binding = select.table.binding
        base_rows = self._base_rows(base_table, binding, select)
        envs: list[Env] = [
            {binding: row, "__pk__": {"pk": pk, "table": select.table.name}}
            for pk, row in base_rows
        ]
        for join in select.joins:
            envs = self._join(envs, join)
        return envs

    def _base_rows(
        self, table: "Table", binding: str, select: Select
    ) -> list[tuple[str, dict[str, Any]]]:
        """Scan the base table, using an index when the WHERE clause has a
        top-level equality/IN conjunct on an indexed column."""
        lookup = _index_lookup(select.where, binding, table)
        if lookup is not None:
            column, values = lookup
            pks: list[str] = []
            seen: set[str] = set()
            for value in values:
                for pk in table.index_lookup(column, value):
                    if pk not in seen:
                        seen.add(pk)
                        pks.append(pk)
            return [(pk, table.row(pk)) for pk in sorted(pks)]
        return list(table.rows())

    def _join(self, envs: list[Env], join: "Join") -> list[Env]:  # type: ignore[name-defined]
        right_table = self.store.table(join.table.name)
        right_binding = join.table.binding
        joined: list[Env] = []
        # Equality fast path: ON a.x = b.y with one side bound to the new table.
        eq = _join_equality(join.on, right_binding)
        right_rows = list(right_table.rows())
        hash_index: dict[Any, list[dict[str, Any]]] | None = None
        if eq is not None:
            right_column = eq[1]
            hash_index = {}
            for __, row in right_rows:
                hash_index.setdefault(row.get(right_column), []).append(row)
        for env in envs:
            matches: list[dict[str, Any]] = []
            if hash_index is not None and eq is not None:
                left_value = self.evaluator.value(eq[0], env)
                candidates = hash_index.get(left_value, [])
            else:
                candidates = [row for __, row in right_rows]
            for row in candidates:
                extended = dict(env)
                extended[right_binding] = row
                if self.evaluator.value(join.on, extended) is True:
                    matches.append(row)
            if matches:
                for row in matches:
                    extended = dict(env)
                    extended[right_binding] = row
                    joined.append(extended)
            elif join.kind == "LEFT":
                extended = dict(env)
                extended[right_binding] = {
                    name: None for name in right_table.schema.column_names
                }
                joined.append(extended)
        return joined

    # -- projection ---------------------------------------------------------------

    def _project(self, select: Select, env: Env) -> ResultRow:
        values: dict[str, Any] = {}
        for item in select.items:
            if isinstance(item.expr, Star):
                for binding, row in env.items():
                    if binding == "__pk__":
                        continue
                    if item.expr.table is not None and binding != item.expr.table:
                        continue
                    for name, value in row.items():
                        values.setdefault(name, value)
            else:
                values[_item_name(item)] = self.evaluator.value(item.expr, env)
        provenance = env.get("__pk__", {})
        multi_table = len([b for b in env if b != "__pk__"]) > 1
        if multi_table:
            return ResultRow(values, None, None)
        return ResultRow(values, provenance.get("pk"), provenance.get("table"))

    # -- aggregation ---------------------------------------------------------------

    def _aggregate(self, select: Select, envs: list[Env]) -> list[ResultRow]:
        groups: dict[tuple, list[Env]] = {}
        if select.group_by:
            for env in envs:
                key = tuple(
                    _group_key(self.evaluator.value(expr, env))
                    for expr in select.group_by
                )
                groups.setdefault(key, []).append(env)
        else:
            groups[()] = envs
        rows: list[ResultRow] = []
        for __, group_envs in sorted(groups.items(), key=lambda kv: kv[0]):
            if select.having is not None:
                if self._agg_value(select.having, group_envs) is not True:
                    continue
            if not group_envs and not select.group_by:
                group_envs = []
            values = {
                _item_name(item): self._agg_value(item.expr, group_envs)
                for item in select.items
                if not isinstance(item.expr, Star)
            }
            rows.append(ResultRow(values, None, None))
        if not select.group_by and not rows and select.having is None:
            # Aggregates over an empty input still return one row.
            values = {
                _item_name(item): self._agg_value(item.expr, [])
                for item in select.items
                if not isinstance(item.expr, Star)
            }
            rows.append(ResultRow(values, None, None))
        return rows

    def _agg_value(self, expr: Expr, group: list[Env]) -> Any:
        if isinstance(expr, FuncCall) and expr.name in AGGREGATE_FUNCTIONS:
            return self._compute_aggregate(expr, group)
        if isinstance(expr, BinaryOp):
            left = self._agg_value(expr.left, group)
            right = self._agg_value(expr.right, group)
            return self.evaluator._binary(
                BinaryOp(expr.op, Literal(left), Literal(right)), {}
            )
        if isinstance(expr, UnaryOp):
            inner = self._agg_value(expr.operand, group)
            return self.evaluator.value(
                UnaryOp(expr.op, Literal(inner)), {}
            )
        if not group:
            return None
        return self.evaluator.value(expr, group[0])

    def _compute_aggregate(self, call: FuncCall, group: list[Env]) -> Any:
        if call.name == "COUNT" and (
            not call.args or isinstance(call.args[0], Star)
        ):
            return len(group)
        if not call.args:
            raise QueryError(f"{call.name} requires an argument")
        values = [self.evaluator.value(call.args[0], env) for env in group]
        values = [value for value in values if value is not None]
        if call.distinct:
            values = list(dict.fromkeys(values))
        if call.name == "COUNT":
            return len(values)
        if not values:
            return None
        if call.name == "SUM":
            return sum(values)
        if call.name == "AVG":
            return sum(values) / len(values)
        if call.name == "MIN":
            return min(values)
        if call.name == "MAX":
            return max(values)
        raise QueryError(f"unknown aggregate {call.name!r}")

    # -- ordering -------------------------------------------------------------------

    def _order(
        self,
        order_by: tuple[OrderItem, ...],
        rows: list[ResultRow],
        envs: Optional[list[Env]],
    ) -> list[ResultRow]:
        def sort_key(indexed: tuple[int, ResultRow]):
            index, row = indexed
            key = []
            for item in order_by:
                if isinstance(item.expr, ColumnRef) and item.expr.name in row.values:
                    value = row.values[item.expr.name]
                elif envs is not None:
                    value = self.evaluator.value(item.expr, envs[index])
                else:
                    raise UnsupportedQueryError(
                        "ORDER BY expression must appear in the select list "
                        "of an aggregate query"
                    )
                key.append(_null_first(value, item.ascending))
            return tuple(key)

        indexed = sorted(enumerate(rows), key=sort_key)
        return [row for __, row in indexed]


def _null_first(value: Any, ascending: bool):
    """Sort helper: NULLs first ascending, last descending (MySQL)."""
    if ascending:
        return (value is not None, _Comparable(value, False))
    return (value is None, _Comparable(value, True))


class _Comparable:
    """Wraps a value so mixed types do not raise during sorting.

    ``__eq__`` is required: multi-key ORDER BY builds tuples of these,
    and tuple comparison only moves to the next key when the current
    elements compare equal.
    """

    __slots__ = ("value", "reverse")

    def __init__(self, value: Any, reverse: bool):
        self.value = value
        self.reverse = reverse

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Comparable):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:  # pragma: no cover - not used as a key
        return hash((self.value, self.reverse))

    def __lt__(self, other: "_Comparable") -> bool:
        a, b = self.value, other.value
        if a is None:
            return False
        if b is None:
            return True
        try:
            result = a < b
        except TypeError:
            result = str(a) < str(b)
        return result != self.reverse


def _item_name(item: SelectItem) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ColumnRef):
        return item.expr.name
    if isinstance(item.expr, FuncCall):
        return item.expr.name.lower()
    return "expr"


def _group_key(value: Any):
    return (value is None, str(type(value).__name__), value if value is not None else 0)


def _distinct(rows: list[ResultRow]) -> list[ResultRow]:
    seen: set[tuple] = set()
    unique: list[ResultRow] = []
    for row in rows:
        signature = tuple(sorted((k, repr(v)) for k, v in row.values.items()))
        if signature not in seen:
            seen.add(signature)
            unique.append(row)
    return unique


def _index_lookup(
    where: Optional[Expr], binding: str, table: "Table"
) -> Optional[tuple[str, list[Any]]]:
    """Find a usable ``column = literal`` / ``column IN (literals)``
    conjunct over an indexed column of the base table."""
    if where is None:
        return None
    for conjunct in _conjuncts(where):
        if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
            sides = [conjunct.left, conjunct.right]
            for expr, other in (sides, sides[::-1]):
                if (
                    isinstance(expr, ColumnRef)
                    and (expr.table in (None, binding))
                    and isinstance(other, Literal)
                    and table.has_index(expr.name)
                ):
                    return expr.name, [other.value]
        if (
            isinstance(conjunct, InOp)
            and not conjunct.negated
            and isinstance(conjunct.expr, ColumnRef)
            and conjunct.expr.table in (None, binding)
            and all(isinstance(item, Literal) for item in conjunct.items)
            and table.has_index(conjunct.expr.name)
        ):
            return conjunct.expr.name, [
                item.value for item in conjunct.items  # type: ignore[union-attr]
            ]
    return None


def _conjuncts(expr: Expr) -> list[Expr]:
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _join_equality(on: Expr, right_binding: str) -> Optional[tuple[Expr, str]]:
    """If ``on`` is ``left_expr = right.column``, return them for hashing."""
    if not (isinstance(on, BinaryOp) and on.op == "="):
        return None
    left, right = on.left, on.right
    if isinstance(right, ColumnRef) and right.table == right_binding:
        if not _references_binding(left, right_binding):
            return left, right.name
    if isinstance(left, ColumnRef) and left.table == right_binding:
        if not _references_binding(right, right_binding):
            return right, left.name
    return None


def _references_binding(expr: Expr, binding: str) -> bool:
    if isinstance(expr, ColumnRef):
        return expr.table == binding
    if isinstance(expr, BinaryOp):
        return _references_binding(expr.left, binding) or _references_binding(
            expr.right, binding
        )
    if isinstance(expr, UnaryOp):
        return _references_binding(expr.operand, binding)
    return False
