"""Tokenizer and recursive-descent parser for the SQL subset.

Grammar (roughly):

.. code-block:: text

    select   := SELECT [DISTINCT] items FROM table_ref join* [WHERE expr]
                [GROUP BY expr_list] [HAVING expr]
                [ORDER BY order_list] [LIMIT n [OFFSET m]]
    insert   := INSERT INTO name ['(' cols ')'] VALUES tuple (',' tuple)*
    update   := UPDATE name SET assign (',' assign)* [WHERE expr]
    delete   := DELETE FROM name [WHERE expr]

    expr     := or_expr
    or_expr  := and_expr (OR and_expr)*
    and_expr := not_expr (AND not_expr)*
    not_expr := [NOT] predicate
    predicate:= additive [comparison | LIKE | IN | BETWEEN | IS [NOT] NULL]
    additive := term (('+'|'-') term)*
    term     := factor (('*'|'/') factor)*
    factor   := literal | column | function '(' args ')' | '(' expr ')' | '-' factor

Strings use single quotes with ``''`` escaping, as in MySQL.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import SqlSyntaxError
from repro.stores.querycache import QueryCache
from repro.stores.relational.ast import (
    AGGREGATE_FUNCTIONS,
    Assignment,
    BetweenOp,
    BinaryOp,
    ColumnDef,
    ColumnRef,
    CreateIndex,
    CreateTable,
    Delete,
    DropTable,
    Expr,
    FuncCall,
    InOp,
    Insert,
    IsNullOp,
    Join,
    LikeOp,
    Literal,
    OrderItem,
    SCALAR_FUNCTIONS,
    Select,
    SelectItem,
    Star,
    Statement,
    TableRef,
    UnaryOp,
    Update,
)

KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "OFFSET", "ASC", "DESC", "AND", "OR", "NOT", "LIKE", "IN",
    "BETWEEN", "IS", "NULL", "TRUE", "FALSE", "AS", "JOIN", "INNER", "LEFT",
    "OUTER", "ON", "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
    "CREATE", "TABLE", "INDEX", "DROP", "PRIMARY", "KEY", "IF", "EXISTS",
    "INTEGER", "INT", "FLOAT", "REAL", "TEXT", "VARCHAR", "BOOLEAN", "BOOL",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|!=|<=|>=|=|<|>|\+|-|\*|/|\(|\)|,|\.|;)
    """,
    re.VERBOSE,
)


class Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind  # number | string | ident | keyword | op | end
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def tokenize(sql: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlSyntaxError(f"unexpected character {sql[pos]!r} at {pos}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        kind = match.lastgroup or "op"
        if kind == "ident" and text.upper() in KEYWORDS:
            tokens.append(Token("keyword", text.upper(), match.start()))
        else:
            tokens.append(Token(kind, text, match.start()))
    tokens.append(Token("end", "", len(sql)))
    return tokens


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def check_keyword(self, *words: str) -> bool:
        return self.current.kind == "keyword" and self.current.text in words

    def accept_keyword(self, *words: str) -> bool:
        if self.check_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise SqlSyntaxError(
                f"expected {word} at position {self.current.pos} "
                f"(got {self.current.text!r})"
            )

    def accept_op(self, op: str) -> bool:
        if self.current.kind == "op" and self.current.text == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SqlSyntaxError(
                f"expected {op!r} at position {self.current.pos} "
                f"(got {self.current.text!r})"
            )

    def expect_ident(self) -> str:
        if self.current.kind != "ident":
            raise SqlSyntaxError(
                f"expected identifier at position {self.current.pos} "
                f"(got {self.current.text!r})"
            )
        return self.advance().text

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self.check_keyword("SELECT"):
            statement: Statement = self.parse_select()
        elif self.check_keyword("INSERT"):
            statement = self.parse_insert()
        elif self.check_keyword("UPDATE"):
            statement = self.parse_update()
        elif self.check_keyword("DELETE"):
            statement = self.parse_delete()
        elif self.check_keyword("CREATE"):
            statement = self.parse_create()
        elif self.check_keyword("DROP"):
            statement = self.parse_drop()
        else:
            raise SqlSyntaxError(
                f"statement must start with SELECT/INSERT/UPDATE/DELETE/"
                f"CREATE/DROP, got {self.current.text!r}"
            )
        self.accept_op(";")
        if self.current.kind != "end":
            raise SqlSyntaxError(
                f"trailing input at position {self.current.pos}: "
                f"{self.current.text!r}"
            )
        return statement

    def parse_select(self) -> Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        items = [self.parse_select_item()]
        while self.accept_op(","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        table = self.parse_table_ref()
        joins: list[Join] = []
        while self.check_keyword("JOIN", "INNER", "LEFT"):
            joins.append(self.parse_join())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        group_by: list[Expr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_expr())
            while self.accept_op(","):
                group_by.append(self.parse_expr())
        having = self.parse_expr() if self.accept_keyword("HAVING") else None
        order_by: list[OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self.parse_order_item())
            while self.accept_op(","):
                order_by.append(self.parse_order_item())
        limit: Optional[int] = None
        offset = 0
        if self.accept_keyword("LIMIT"):
            limit = self.parse_int()
            if self.accept_keyword("OFFSET"):
                offset = self.parse_int()
            elif self.accept_op(","):
                # MySQL's LIMIT offset, count form.
                offset, limit = limit, self.parse_int()
        return Select(
            items=tuple(items),
            table=table,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def parse_select_item(self) -> SelectItem:
        if self.accept_op("*"):
            return SelectItem(Star())
        # alias.* form
        if (
            self.current.kind == "ident"
            and self.tokens[self.index + 1].text == "."
            and self.tokens[self.index + 2].text == "*"
        ):
            table = self.advance().text
            self.advance()  # .
            self.advance()  # *
            return SelectItem(Star(table))
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "ident":
            alias = self.advance().text
        return SelectItem(expr, alias)

    def parse_table_ref(self) -> TableRef:
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident()
        elif self.current.kind == "ident":
            alias = self.advance().text
        return TableRef(name, alias)

    def parse_join(self) -> Join:
        kind = "INNER"
        if self.accept_keyword("LEFT"):
            self.accept_keyword("OUTER")
            kind = "LEFT"
        else:
            self.accept_keyword("INNER")
        self.expect_keyword("JOIN")
        table = self.parse_table_ref()
        self.expect_keyword("ON")
        on = self.parse_expr()
        return Join(table, on, kind)

    def parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return OrderItem(expr, ascending)

    def parse_int(self) -> int:
        token = self.current
        if token.kind != "number" or "." in token.text:
            raise SqlSyntaxError(f"expected integer at position {token.pos}")
        self.advance()
        return int(token.text)

    def parse_insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        columns: list[str] = []
        if self.accept_op("("):
            columns.append(self.expect_ident())
            while self.accept_op(","):
                columns.append(self.expect_ident())
            self.expect_op(")")
        self.expect_keyword("VALUES")
        rows = [self.parse_value_tuple()]
        while self.accept_op(","):
            rows.append(self.parse_value_tuple())
        return Insert(table, tuple(columns), tuple(rows))

    def parse_value_tuple(self) -> tuple[Expr, ...]:
        self.expect_op("(")
        values = [self.parse_expr()]
        while self.accept_op(","):
            values.append(self.parse_expr())
        self.expect_op(")")
        return tuple(values)

    def parse_update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self.parse_assignment()]
        while self.accept_op(","):
            assignments.append(self.parse_assignment())
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return Update(table, tuple(assignments), where)

    def parse_assignment(self) -> Assignment:
        column = self.expect_ident()
        self.expect_op("=")
        return Assignment(column, self.parse_expr())

    def parse_delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        where = self.parse_expr() if self.accept_keyword("WHERE") else None
        return Delete(table, where)

    # -- DDL --------------------------------------------------------------------

    _TYPE_KEYWORDS = {
        "INTEGER": "integer", "INT": "integer",
        "FLOAT": "float", "REAL": "float",
        "TEXT": "text", "VARCHAR": "text",
        "BOOLEAN": "boolean", "BOOL": "boolean",
    }

    def parse_create(self) -> Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self.parse_create_table()
        if self.accept_keyword("INDEX"):
            return self.parse_create_index()
        raise SqlSyntaxError(
            f"CREATE must be followed by TABLE or INDEX, "
            f"got {self.current.text!r}"
        )

    def parse_create_table(self) -> CreateTable:
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        table = self.expect_ident()
        self.expect_op("(")
        columns: list[ColumnDef] = []
        primary_key: str | None = None
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                self.expect_op("(")
                primary_key = self.expect_ident()
                self.expect_op(")")
            else:
                column, is_pk = self.parse_column_def()
                columns.append(column)
                if is_pk:
                    primary_key = column.name
            if not self.accept_op(","):
                break
        self.expect_op(")")
        if not columns:
            raise SqlSyntaxError("CREATE TABLE needs at least one column")
        if primary_key is None:
            raise SqlSyntaxError("CREATE TABLE needs a PRIMARY KEY")
        return CreateTable(table, tuple(columns), primary_key, if_not_exists)

    def parse_column_def(self) -> tuple[ColumnDef, bool]:
        name = self.expect_ident()
        token = self.current
        if token.kind != "keyword" or token.text not in self._TYPE_KEYWORDS:
            raise SqlSyntaxError(
                f"expected a column type at position {token.pos}, "
                f"got {token.text!r}"
            )
        type_name = self._TYPE_KEYWORDS[self.advance().text]
        if self.accept_op("("):
            self.parse_int()  # VARCHAR(n): the size is accepted, unused
            self.expect_op(")")
        nullable = True
        is_pk = False
        while True:
            if self.accept_keyword("NOT"):
                self.expect_keyword("NULL")
                nullable = False
            elif self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                is_pk = True
                nullable = False
            else:
                break
        return ColumnDef(name, type_name, nullable), is_pk

    def parse_create_index(self) -> CreateIndex:
        # Optional index name (accepted, unused).
        if self.current.kind == "ident":
            self.advance()
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_op("(")
        column = self.expect_ident()
        self.expect_op(")")
        return CreateIndex(table, column)

    def parse_drop(self) -> DropTable:
        self.expect_keyword("DROP")
        self.expect_keyword("TABLE")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        return DropTable(self.expect_ident(), if_exists)

    # -- expressions -------------------------------------------------------------

    def parse_expr(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        left = self.parse_and()
        while self.accept_keyword("OR"):
            left = BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expr:
        left = self.parse_not()
        while self.accept_keyword("AND"):
            left = BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expr:
        if self.accept_keyword("NOT"):
            return UnaryOp("NOT", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expr:
        left = self.parse_additive()
        if self.current.kind == "op" and self.current.text in (
            "=", "!=", "<>", "<", "<=", ">", ">=",
        ):
            op = self.advance().text
            if op == "<>":
                op = "!="
            return BinaryOp(op, left, self.parse_additive())
        negated = False
        if self.check_keyword("NOT"):
            following = self.tokens[self.index + 1]
            if following.kind == "keyword" and following.text in (
                "LIKE", "IN", "BETWEEN",
            ):
                self.advance()
                negated = True
        if self.accept_keyword("LIKE"):
            return LikeOp(left, self.parse_additive(), negated)
        if self.accept_keyword("IN"):
            self.expect_op("(")
            items = [self.parse_expr()]
            while self.accept_op(","):
                items.append(self.parse_expr())
            self.expect_op(")")
            return InOp(left, tuple(items), negated)
        if self.accept_keyword("BETWEEN"):
            low = self.parse_additive()
            self.expect_keyword("AND")
            return BetweenOp(left, low, self.parse_additive(), negated)
        if self.accept_keyword("IS"):
            is_negated = self.accept_keyword("NOT")
            self.expect_keyword("NULL")
            return IsNullOp(left, is_negated)
        if negated:
            raise SqlSyntaxError(
                f"dangling NOT at position {self.current.pos}"
            )
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_term()
        while self.current.kind == "op" and self.current.text in ("+", "-"):
            op = self.advance().text
            left = BinaryOp(op, left, self.parse_term())
        return left

    def parse_term(self) -> Expr:
        left = self.parse_factor()
        while self.current.kind == "op" and self.current.text in ("*", "/"):
            op = self.advance().text
            left = BinaryOp(op, left, self.parse_factor())
        return left

    def parse_factor(self) -> Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            if "." in token.text or "e" in token.text or "E" in token.text:
                return Literal(float(token.text))
            return Literal(int(token.text))
        if token.kind == "string":
            self.advance()
            return Literal(token.text[1:-1].replace("''", "'"))
        if self.accept_keyword("NULL"):
            return Literal(None)
        if self.accept_keyword("TRUE"):
            return Literal(True)
        if self.accept_keyword("FALSE"):
            return Literal(False)
        if self.accept_op("-"):
            return UnaryOp("-", self.parse_factor())
        if self.accept_op("("):
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.kind == "ident":
            name = self.advance().text
            if self.accept_op("("):
                return self.parse_function_args(name)
            if self.accept_op("."):
                column = self.expect_ident()
                return ColumnRef(column, table=name)
            return ColumnRef(name)
        raise SqlSyntaxError(
            f"unexpected token {token.text!r} at position {token.pos}"
        )

    def parse_function_args(self, name: str) -> Expr:
        upper = name.upper()
        if upper not in AGGREGATE_FUNCTIONS and upper not in SCALAR_FUNCTIONS:
            raise SqlSyntaxError(f"unknown function {name!r}")
        distinct = False
        args: list[Expr] = []
        if self.accept_op(")"):
            return FuncCall(upper, ())
        if self.accept_op("*"):
            self.expect_op(")")
            return FuncCall(upper, (Star(),))
        if self.accept_keyword("DISTINCT"):
            distinct = True
        args.append(self.parse_expr())
        while self.accept_op(","):
            args.append(self.parse_expr())
        self.expect_op(")")
        return FuncCall(upper, tuple(args), distinct)


#: Statement cache: the AST is frozen dataclasses, so one parsed
#: ``Statement`` is safely shared by every execution of the same text.
_STATEMENT_CACHE = QueryCache("sql_statements")


def parse_sql(sql: str) -> Statement:
    """Parse one SQL statement into its AST (cached by query text)."""
    return _STATEMENT_CACHE.get_or_compute(
        sql, lambda: Parser(sql).parse_statement()
    )
