"""MySQL-like relational store with a native SQL subset."""

from repro.stores.relational.engine import RelationalStore, Table
from repro.stores.relational.parser import parse_sql
from repro.stores.relational.types import Column, ColumnType, TableSchema

__all__ = [
    "Column",
    "ColumnType",
    "RelationalStore",
    "Table",
    "TableSchema",
    "parse_sql",
]
