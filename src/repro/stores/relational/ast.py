"""Abstract syntax tree for the SQL subset.

Expression nodes evaluate against a row environment (see
:mod:`repro.stores.relational.executor`); statement nodes are plain
dataclasses produced by the parser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Marker base class for expression nodes."""


@dataclass(frozen=True)
class Literal(Expr):
    value: Any


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly table-qualified column reference."""

    name: str
    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list / COUNT(*)."""

    table: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # one of = != < <= > >= + - * / AND OR
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # NOT or - (negation)
    operand: Expr


@dataclass(frozen=True)
class LikeOp(Expr):
    expr: Expr
    pattern: Expr
    negated: bool = False


@dataclass(frozen=True)
class InOp(Expr):
    expr: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class BetweenOp(Expr):
    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class IsNullOp(Expr):
    expr: Expr
    negated: bool = False


@dataclass(frozen=True)
class FuncCall(Expr):
    """Aggregate (COUNT/SUM/AVG/MIN/MAX) or scalar (UPPER/LOWER/LENGTH/ABS)."""

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False


AGGREGATE_FUNCTIONS = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})
SCALAR_FUNCTIONS = frozenset({"UPPER", "LOWER", "LENGTH", "ABS", "ROUND", "COALESCE"})


def contains_aggregate(expr: Expr) -> bool:
    """True if ``expr`` contains any aggregate function call."""
    if isinstance(expr, FuncCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, LikeOp):
        return contains_aggregate(expr.expr) or contains_aggregate(expr.pattern)
    if isinstance(expr, InOp):
        return contains_aggregate(expr.expr) or any(
            contains_aggregate(item) for item in expr.items
        )
    if isinstance(expr, BetweenOp):
        return any(
            contains_aggregate(part) for part in (expr.expr, expr.low, expr.high)
        )
    if isinstance(expr, IsNullOp):
        return contains_aggregate(expr.expr)
    return False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class Join:
    table: TableRef
    on: Expr
    kind: str = "INNER"  # INNER or LEFT


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    table: TableRef
    joins: tuple[Join, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: int = 0
    distinct: bool = False

    def is_aggregate(self) -> bool:
        """True if the query groups or aggregates (not augmentable)."""
        if self.group_by or self.having is not None:
            return True
        return any(contains_aggregate(item.expr) for item in self.items)


@dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...]


@dataclass(frozen=True)
class Assignment:
    column: str
    value: Expr


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[Assignment, ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str  # INTEGER | FLOAT | TEXT | BOOLEAN
    nullable: bool = True


@dataclass(frozen=True)
class CreateTable:
    table: str
    columns: tuple[ColumnDef, ...]
    primary_key: str
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateIndex:
    table: str
    column: str


@dataclass(frozen=True)
class DropTable:
    table: str
    if_exists: bool = False


Statement = (
    Select | Insert | Update | Delete | CreateTable | CreateIndex | DropTable
)
