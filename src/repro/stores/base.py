"""The minimal store contract QUEPA requires of every engine.

The paper's only requirement on a participating system is that "every
stored data object can be identified and accessed by means of a key"
(Section II-A). The contract is therefore small:

* ``execute(query)`` — run a query in the *native* language and return
  data objects;
* ``get(global_key)`` / ``multi_get(keys)`` — direct access by key,
  which is what connectors use to materialize augmented objects;
* ``collections()`` / ``count_objects()`` — introspection used by the
  collector and the workload builder.

Engines also keep :class:`StoreStats` counters so tests can assert how
many native operations an augmenter actually issued.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import KeyNotFoundError
from repro.model.objects import DataObject, GlobalKey


@dataclass
class StoreStats:
    """Operation counters for one store instance."""

    queries: int = 0
    gets: int = 0
    multi_gets: int = 0
    objects_returned: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.queries = 0
        self.gets = 0
        self.multi_gets = 0
        self.objects_returned = 0
        self.writes = 0


@dataclass
class StoreCapabilities:
    """What a store engine can do, used by the validator and baselines."""

    name: str
    supports_batch_get: bool = True
    supports_native_query: bool = True
    #: Maximum keys per batch fetch (None = unlimited).
    max_batch_size: int | None = None


class Store(ABC):
    """Abstract base for all storage engines."""

    #: Engine family name, e.g. ``"relational"``; set by subclasses.
    engine: str = "abstract"

    def __init__(self) -> None:
        #: Name under which this store is attached to a polystore.
        self.database_name: str = ""
        self.stats = StoreStats()
        #: Engine-level mutual exclusion. The engines themselves are
        #: plain in-memory dicts with no internal locking (like an
        #: embedded store); concurrent access goes through this lock.
        #: Connectors and the Quepa search path take it around every
        #: read, and writers that mutate a store while a server is
        #: running must take it around every mutation:
        #:
        #:     with store.lock:
        #:         store.insert(...)
        #:
        #: Reentrant, so an engine method may call another locked
        #: method on the same store.
        self.lock = threading.RLock()
        #: Optional change-data-capture outbox
        #: (:class:`repro.cdc.feed.ChangeFeed`). ``None`` until a
        #: consumer attaches one; unattached stores pay one ``None``
        #: check per write.
        self.changes: Any = None

    def _emit_change(
        self, op: str, collection: str, key: str, value: Any = None
    ) -> None:
        """Record one write on the attached CDC feed, if any.

        ``value`` is the post-state payload (``None`` for deletes);
        the feed copies it, so engines may keep mutating in place.
        """
        feed = self.changes
        if feed is not None:
            feed.record(op, collection, key, value)

    # -- native access ------------------------------------------------------

    @abstractmethod
    def execute(self, query: Any) -> list[DataObject]:
        """Run a query in the engine's native language."""

    def explain(self, query: Any, analyze: bool = False) -> dict[str, Any]:
        """EXPLAIN (and with ``analyze=True``, ANALYZE) a native query.

        Plain EXPLAIN inspects the query without executing it and
        reports the chosen access path — index probe vs. scan, which
        index, estimated rows examined and estimated cost (rows the
        engine must touch). ANALYZE additionally runs the query through
        :meth:`execute` (so store stats count it) and appends
        ``actual_rows`` (result rows) and ``actual_time_s`` (wall
        clock). Estimated rows are *examined* rows, like a classic
        EXPLAIN; actual rows are *returned* rows, so estimated >= actual
        for selective queries.
        """
        report: dict[str, Any] = {
            "engine": self.engine,
            "database": self.database_name or None,
            "query": describe_query(query),
        }
        report.update(self._explain_plan(query))
        if analyze:
            started = time.perf_counter()
            results = self.execute(query)
            elapsed = time.perf_counter() - started
            report["actual_rows"] = len(results)
            report["actual_time_s"] = elapsed
        return report

    def _explain_plan(self, query: Any) -> dict[str, Any]:
        """Engine-specific access-path description (no execution).

        The base fallback assumes a full scan of every object; each
        engine overrides this with its real index-selection logic.
        """
        total = self.count_objects()
        return {
            "access_path": "scan",
            "index": None,
            "estimated_rows": total,
            "estimated_cost": float(total),
        }

    # -- key access ----------------------------------------------------------

    @abstractmethod
    def get_value(self, collection: str, key: str) -> Any:
        """Raw payload of one object; raises :class:`KeyNotFoundError`."""

    @abstractmethod
    def collections(self) -> list[str]:
        """Names of the data collections in this store."""

    @abstractmethod
    def collection_keys(self, collection: str) -> Iterator[str]:
        """Iterate the local keys of one collection."""

    def get(self, key: GlobalKey) -> DataObject:
        """Fetch one data object by global key."""
        self.stats.gets += 1
        value = self.get_value(key.collection, key.key)
        self.stats.objects_returned += 1
        return DataObject(key, value)

    def multi_get(self, keys: Iterable[GlobalKey]) -> list[DataObject]:
        """Fetch several objects in one native batch operation.

        Missing keys are dropped, mirroring the lazy-deletion rule: an
        object deleted from the store silently disappears from answers.
        Duplicate keys are fetched once (first occurrence wins the
        ordering), matching the set semantics of the native batch
        operations — ``WHERE pk IN (...)``, ``$in``, MGET — the engine
        subclasses implement. The whole call counts as one
        ``multi_gets`` operation regardless of the number of keys.
        """
        self.stats.multi_gets += 1
        found: list[DataObject] = []
        for key in dict.fromkeys(keys):
            try:
                value = self.get_value(key.collection, key.key)
            except KeyNotFoundError:
                continue
            found.append(DataObject(key, value))
        self.stats.objects_returned += len(found)
        return found

    def exists(self, key: GlobalKey) -> bool:
        try:
            self.get_value(key.collection, key.key)
        except KeyNotFoundError:
            return False
        return True

    def count_objects(self) -> int:
        return sum(
            1 for collection in self.collections()
            for __ in self.collection_keys(collection)
        )

    def collection_stats(self) -> dict[str, int]:
        """Per-collection object counts (the planner's cardinalities).

        The cross-store planner prices full scans and import footprints
        from these counts; callers that need a stable snapshot take the
        store's lock around the call.
        """
        return {
            collection: sum(1 for __ in self.collection_keys(collection))
            for collection in self.collections()
        }

    def estimate_query(self, query: Any) -> dict[str, Any]:
        """The EXPLAIN estimates of a query, never raising.

        Planner-facing wrapper over :meth:`explain`: a query the engine
        cannot explain (malformed for EXPLAIN purposes, unsupported
        feature) degrades to the base full-scan assumption instead of
        failing the estimate pass.
        """
        try:
            return self.explain(query)
        except Exception:
            report: dict[str, Any] = {
                "engine": self.engine,
                "database": self.database_name or None,
                "query": describe_query(query),
            }
            total = self.count_objects()
            report.update(
                {
                    "access_path": "scan",
                    "index": None,
                    "estimated_rows": total,
                    "estimated_cost": float(total),
                }
            )
            return report

    def iter_objects(self) -> Iterator[DataObject]:
        """Iterate every data object in the store (collector input)."""
        if not self.database_name:
            raise ValueError("store must be attached to a polystore first")
        for collection in self.collections():
            for local_key in self.collection_keys(collection):
                key = GlobalKey(self.database_name, collection, local_key)
                yield DataObject(key, self.get_value(collection, local_key))

    def scan_objects(self, chunk_size: int = 512) -> Iterator[DataObject]:
        """Iterate every data object via chunked batch fetches.

        Same objects and order as :meth:`iter_objects`, but routed
        through :meth:`multi_get` so a full-store scan (the collector's
        input) issues one native batch operation per ``chunk_size`` keys
        instead of one point lookup per object.
        """
        if not self.database_name:
            raise ValueError("store must be attached to a polystore first")
        for collection in self.collections():
            chunk: list[GlobalKey] = []
            for local_key in self.collection_keys(collection):
                chunk.append(
                    GlobalKey(self.database_name, collection, local_key)
                )
                if len(chunk) >= chunk_size:
                    yield from self.multi_get(chunk)
                    chunk = []
            if chunk:
                yield from self.multi_get(chunk)

    def capabilities(self) -> StoreCapabilities:
        return StoreCapabilities(name=self.engine)


def describe_query(query: Any, limit: int = 200) -> str:
    """A short printable form of a native query for explain/event output."""
    text = query if isinstance(query, str) else repr(query)
    return text if len(text) <= limit else text[: limit - 3] + "..."
