"""A Redis-like key-value store.

Supports the commands the Polyphony discounts database needs — GET,
SET, DEL, MGET, EXISTS, KEYS with glob patterns, and cursor-based SCAN —
plus the generic :class:`~repro.stores.base.Store` contract. All entries
live in a single logical collection (Redis has one keyspace per
database); its name defaults to ``"main"``.
"""

from __future__ import annotations

import fnmatch
from typing import Any, Iterator

from repro.errors import KeyNotFoundError, QueryError
from repro.model.objects import DataObject, GlobalKey
from repro.stores.base import Store


class KeyValueStore(Store):
    """An in-memory keyspace with glob-pattern queries."""

    engine = "keyvalue"

    def __init__(self, keyspace: str = "main") -> None:
        super().__init__()
        self.keyspace = keyspace
        self._data: dict[str, Any] = {}

    # -- native commands -----------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        self.stats.writes += 1
        op = "update" if key in self._data else "append"
        self._data[key] = value
        self._emit_change(op, self.keyspace, key, value)

    def get_command(self, key: str) -> Any:
        """GET: the value at ``key`` or ``None`` (Redis semantics)."""
        return self._data.get(key)

    def delete(self, key: str) -> bool:
        self.stats.writes += 1
        removed = self._data.pop(key, _MISSING) is not _MISSING
        if removed:
            self._emit_change("delete", self.keyspace, key)
        return removed

    def mget(self, keys: list[str]) -> list[Any]:
        """MGET: values in order, ``None`` for missing keys."""
        return [self._data.get(key) for key in keys]

    def keys(self, pattern: str = "*") -> list[str]:
        """KEYS: all keys matching a glob pattern."""
        return [key for key in self._data if fnmatch.fnmatchcase(key, pattern)]

    def scan(
        self, cursor: int = 0, pattern: str = "*", count: int = 10
    ) -> tuple[int, list[str]]:
        """SCAN: cursor iteration over the keyspace.

        Returns ``(next_cursor, page)``; a next cursor of 0 means the
        iteration is complete. Like Redis, the guarantee is that every
        key present for the whole scan is returned at least once.
        """
        all_keys = sorted(self._data)
        page: list[str] = []
        index = cursor
        while index < len(all_keys) and len(page) < count:
            key = all_keys[index]
            if fnmatch.fnmatchcase(key, pattern):
                page.append(key)
            index += 1
        next_cursor = 0 if index >= len(all_keys) else index
        return next_cursor, page

    def __len__(self) -> int:
        return len(self._data)

    # -- Store contract -------------------------------------------------------

    def execute(self, query: Any) -> list[DataObject]:
        """Native query: a Redis-style command string or a glob pattern.

        Strings starting with a known command verb (``GET``, ``MGET``,
        ``KEYS``, ...) run through the command parser; the read verbs
        produce data objects. A bare glob pattern is shorthand for
        ``KEYS pattern``. Also accepts ``("mget", [keys])`` for the
        connector's explicit batch fetch.
        """
        self.stats.queries += 1
        if isinstance(query, str):
            objects = self._execute_text(query)
        elif (
            isinstance(query, tuple)
            and len(query) == 2
            and query[0] == "mget"
        ):
            objects = [
                self._object(key) for key in query[1] if key in self._data
            ]
        else:
            raise QueryError(f"unsupported key-value query: {query!r}")
        self.stats.objects_returned += len(objects)
        return objects

    def _execute_text(self, query: str) -> list[DataObject]:
        from repro.stores.keyvalue.commands import (
            READ_VERBS,
            execute_command,
            parse_command,
        )

        verb = parse_command(query)[0].upper()
        from repro.stores.keyvalue.commands import _HANDLERS

        if verb not in _HANDLERS:
            # Bare glob pattern: shorthand for KEYS <pattern>.
            pattern = query.strip() or "*"
            return [self._object(key) for key in sorted(self.keys(pattern))]
        if verb not in READ_VERBS:
            raise QueryError(
                f"{verb} is a command, not a query; use "
                f"KeyValueStore.command() for writes"
            )
        parts = parse_command(query)
        if verb == "KEYS":
            keys = execute_command(self, query)
            return [self._object(key) for key in keys]
        if verb == "GET":
            value = execute_command(self, query)
            return [self._object(parts[1])] if value is not None else []
        # MGET
        return [
            self._object(key) for key in parts[1:] if key in self._data
        ]

    def _explain_plan(self, query: Any) -> dict[str, Any]:
        """Access path for a key-value query: direct key probes for
        GET/MGET (and the connector's ``("mget", keys)`` form), full
        keyspace scan for KEYS / bare glob patterns."""
        data = self._data
        if (
            isinstance(query, tuple)
            and len(query) == 2
            and query[0] == "mget"
        ):
            keys = list(query[1])
            return {
                "access_path": "key_probe",
                "index": "keyspace_hash",
                "estimated_rows": len(keys),
                "estimated_cost": float(len(keys)),
            }
        if not isinstance(query, str):
            raise QueryError(f"unsupported key-value query: {query!r}")
        from repro.stores.keyvalue.commands import _HANDLERS, parse_command

        parts = parse_command(query)
        verb = parts[0].upper()
        if verb == "GET":
            return {
                "access_path": "key_probe",
                "index": "keyspace_hash",
                "estimated_rows": 1 if len(parts) > 1 and parts[1] in data else 0,
                "estimated_cost": 1.0,
            }
        if verb == "MGET":
            probes = len(parts) - 1
            return {
                "access_path": "key_probe",
                "index": "keyspace_hash",
                "estimated_rows": probes,
                "estimated_cost": float(probes),
            }
        # KEYS, SCAN, unknown verbs (bare glob patterns) — all walk the
        # whole keyspace and filter.
        return {
            "access_path": "keyspace_scan",
            "index": None,
            "pattern": parts[1] if verb in _HANDLERS and len(parts) > 1
            else query.strip() or "*",
            "estimated_rows": len(data),
            "estimated_cost": float(len(data)),
        }

    def command(self, text: str) -> Any:
        """Run any Redis-style command string (including writes)."""
        from repro.stores.keyvalue.commands import execute_command

        return execute_command(self, text)

    def get_value(self, collection: str, key: str) -> Any:
        if collection != self.keyspace or key not in self._data:
            raise KeyNotFoundError(f"{collection}.{key}")
        return self._data[key]

    def multi_get(self, keys) -> list[DataObject]:  # type: ignore[override]
        """Batch fetch via one MGET over the keyspace.

        Duplicates fetch once and missing keys are dropped (MGET
        returns nil for them), matching the store contract.
        """
        self.stats.multi_gets += 1
        unique_keys = [
            key for key in dict.fromkeys(keys)
            if key.collection == self.keyspace and key.key in self._data
        ]
        found = [
            DataObject(key, value)
            for key, value in zip(
                unique_keys, self.mget([key.key for key in unique_keys])
            )
        ]
        self.stats.objects_returned += len(found)
        return found

    def collections(self) -> list[str]:
        return [self.keyspace]

    def collection_keys(self, collection: str) -> Iterator[str]:
        if collection != self.keyspace:
            return iter(())
        return iter(list(self._data))

    def _object(self, key: str) -> DataObject:
        return DataObject(
            GlobalKey(self.database_name or "kv", self.keyspace, key),
            self._data[key],
        )


class _Missing:
    pass


_MISSING = _Missing()
