"""Redis-like key-value store."""

from repro.stores.keyvalue.store import KeyValueStore

__all__ = ["KeyValueStore"]
