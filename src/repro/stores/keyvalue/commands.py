"""Redis-style command strings for the key-value store.

Gives the KV substrate a native textual language, like SQL for the
relational store and Cypher for the graph store. Supported commands
(case-insensitive verbs, single- or double-quoted arguments with
backslash escapes):

=========  =====================================  =======================
GET        ``GET key``                            value or None
SET        ``SET key value``                      "OK"
DEL        ``DEL key [key ...]``                  number removed
EXISTS     ``EXISTS key [key ...]``               number present
MGET       ``MGET key [key ...]``                 list of values/None
KEYS       ``KEYS pattern``                       matching keys (sorted)
SCAN       ``SCAN cursor [MATCH p] [COUNT n]``    (next_cursor, page)
DBSIZE     ``DBSIZE``                             number of keys
=========  =====================================  =======================
"""

from __future__ import annotations

import shlex
from typing import TYPE_CHECKING, Any

from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stores.keyvalue.store import KeyValueStore


def parse_command(text: str) -> list[str]:
    """Split a command line into verb + arguments (shell-style quoting)."""
    try:
        parts = shlex.split(text)
    except ValueError as exc:
        raise QueryError(f"bad command syntax: {exc}") from exc
    if not parts:
        raise QueryError("empty command")
    return parts


def execute_command(store: "KeyValueStore", text: str) -> Any:
    """Run one command string against ``store``; returns its raw reply."""
    parts = parse_command(text)
    verb = parts[0].upper()
    args = parts[1:]
    handler = _HANDLERS.get(verb)
    if handler is None:
        raise QueryError(f"unknown command {verb!r}")
    return handler(store, args)


def _need(args: list[str], at_least: int, verb: str) -> None:
    if len(args) < at_least:
        raise QueryError(
            f"{verb} needs at least {at_least} argument(s), got {len(args)}"
        )


def _cmd_get(store: "KeyValueStore", args: list[str]) -> Any:
    _need(args, 1, "GET")
    if len(args) != 1:
        raise QueryError("GET takes exactly one key")
    return store.get_command(args[0])


def _cmd_set(store: "KeyValueStore", args: list[str]) -> str:
    if len(args) != 2:
        raise QueryError("SET takes exactly a key and a value")
    store.set(args[0], args[1])
    return "OK"


def _cmd_del(store: "KeyValueStore", args: list[str]) -> int:
    _need(args, 1, "DEL")
    return sum(1 for key in args if store.delete(key))


def _cmd_exists(store: "KeyValueStore", args: list[str]) -> int:
    _need(args, 1, "EXISTS")
    return sum(1 for key in args if store.get_command(key) is not None)


def _cmd_mget(store: "KeyValueStore", args: list[str]) -> list[Any]:
    _need(args, 1, "MGET")
    return store.mget(args)


def _cmd_keys(store: "KeyValueStore", args: list[str]) -> list[str]:
    if len(args) != 1:
        raise QueryError("KEYS takes exactly one pattern")
    return sorted(store.keys(args[0]))


def _cmd_scan(store: "KeyValueStore", args: list[str]) -> tuple[int, list[str]]:
    _need(args, 1, "SCAN")
    try:
        cursor = int(args[0])
    except ValueError:
        raise QueryError(f"SCAN cursor must be an integer: {args[0]!r}") from None
    pattern = "*"
    count = 10
    position = 1
    while position < len(args):
        option = args[position].upper()
        if option == "MATCH" and position + 1 < len(args):
            pattern = args[position + 1]
            position += 2
        elif option == "COUNT" and position + 1 < len(args):
            try:
                count = int(args[position + 1])
            except ValueError:
                raise QueryError(
                    f"SCAN COUNT must be an integer: {args[position + 1]!r}"
                ) from None
            position += 2
        else:
            raise QueryError(f"unknown SCAN option {args[position]!r}")
    return store.scan(cursor, pattern, count)


def _cmd_dbsize(store: "KeyValueStore", args: list[str]) -> int:
    if args:
        raise QueryError("DBSIZE takes no arguments")
    return len(store)


_HANDLERS = {
    "GET": _cmd_get,
    "SET": _cmd_set,
    "DEL": _cmd_del,
    "EXISTS": _cmd_exists,
    "MGET": _cmd_mget,
    "KEYS": _cmd_keys,
    "SCAN": _cmd_scan,
    "DBSIZE": _cmd_dbsize,
}

#: Verbs whose replies can be turned into data objects by ``execute``.
READ_VERBS = frozenset({"GET", "MGET", "KEYS"})
