"""A Cypher-like query language for the graph store.

The paper's marketing department talks to Neo4j in Neo4j's language;
this module gives the graph substrate the same kind of native surface.
Supported grammar (a practical Cypher subset):

.. code-block:: text

    query   := MATCH pattern [WHERE expr] RETURN items
               [ORDER BY order (',' order)*] [LIMIT n]
    pattern := node (edge node)*
    node    := '(' [var] [':' Label] [props] ')'
    edge    := '-[' [var] [':' TYPE] ']->'     outgoing
             | '<-[' [var] [':' TYPE] ']-'     incoming
             | '-[' [var] [':' TYPE] ']-'      undirected
    props   := '{' key ':' literal (',' key ':' literal)* '}'
    expr    := disjunctions/conjunctions/NOT over comparisons
               (var.prop (=|<>|<|<=|>|>=) literal, var.prop IS [NOT] NULL)
    items   := item (',' item)*;  item := var | var.prop [AS name]
    order   := var.prop [ASC|DESC]

Pattern matching is standard backtracking over the adjacency lists,
with distinct-edge semantics (the same relationship is not reused
within one match, as in Cypher). ``RETURN`` of a bare variable yields
whole nodes; mixed item lists yield rows.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Optional

from repro.errors import QueryError
from repro.stores.querycache import QueryCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.stores.graph.store import Edge, GraphStore, Node

# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodePattern:
    variable: Optional[str]
    label: Optional[str]
    properties: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class EdgePattern:
    variable: Optional[str]
    rel_type: Optional[str]
    direction: str  # "out" | "in" | "both"


@dataclass(frozen=True)
class Comparison:
    variable: str
    prop: str
    op: str  # = <> < <= > >= isnull notnull
    literal: Any = None


@dataclass(frozen=True)
class BoolExpr:
    op: str  # AND | OR | NOT | LEAF
    left: "BoolExpr | Comparison | None" = None
    right: "BoolExpr | Comparison | None" = None
    leaf: Comparison | None = None


@dataclass(frozen=True)
class ReturnItem:
    variable: str
    prop: Optional[str] = None
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        if self.alias:
            return self.alias
        if self.prop:
            return f"{self.variable}.{self.prop}"
        return self.variable


@dataclass(frozen=True)
class OrderItem:
    variable: str
    prop: str
    ascending: bool = True


@dataclass(frozen=True)
class CypherQuery:
    nodes: tuple[NodePattern, ...]
    edges: tuple[EdgePattern, ...]
    where: Optional[BoolExpr]
    items: tuple[ReturnItem, ...]
    order: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None


# ---------------------------------------------------------------------------
# Tokenizer / parser
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(\.\d+)?)
  | (?P<string>'(?:[^']|'')*'|"(?:[^"]|"")*")
  | (?P<arrow><-\[|\]->|-\[|\]-)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|=|<|>|\(|\)|\{|\}|:|,|\.|\*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "MATCH", "WHERE", "RETURN", "ORDER", "BY", "LIMIT", "AND", "OR", "NOT",
    "AS", "ASC", "DESC", "IS", "NULL", "TRUE", "FALSE",
}


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str):
        self.kind = kind
        self.text = text


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryError(
                f"cypher: unexpected character {text[position]!r} "
                f"at {position}"
            )
        position = match.end()
        kind = match.lastgroup or "op"
        if kind == "ws":
            continue
        value = match.group()
        if kind == "ident" and value.upper() in _KEYWORDS:
            tokens.append(_Token("keyword", value.upper()))
        else:
            tokens.append(_Token(kind, value))
    tokens.append(_Token("end", ""))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.index = 0

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.current
        if token.kind != "end":
            self.index += 1
        return token

    def accept(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        if token.kind == kind and (text is None or token.text == text):
            self.advance()
            return True
        return False

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            raise QueryError(
                f"cypher: expected {text or kind}, got {token.text!r}"
            )
        return self.advance()

    # -- grammar ------------------------------------------------------------

    def parse(self) -> CypherQuery:
        self.expect("keyword", "MATCH")
        nodes = [self.parse_node()]
        edges: list[EdgePattern] = []
        while self.current.kind == "arrow":
            edges.append(self.parse_edge())
            nodes.append(self.parse_node())
        where = None
        if self.accept("keyword", "WHERE"):
            where = self.parse_or()
        self.expect("keyword", "RETURN")
        items = [self.parse_item()]
        while self.accept("op", ","):
            items.append(self.parse_item())
        order: list[OrderItem] = []
        if self.accept("keyword", "ORDER"):
            self.expect("keyword", "BY")
            order.append(self.parse_order())
            while self.accept("op", ","):
                order.append(self.parse_order())
        limit = None
        if self.accept("keyword", "LIMIT"):
            token = self.expect("number")
            limit = int(float(token.text))
        if self.current.kind != "end":
            raise QueryError(
                f"cypher: trailing input {self.current.text!r}"
            )
        return CypherQuery(
            tuple(nodes), tuple(edges), where, tuple(items),
            tuple(order), limit,
        )

    def parse_node(self) -> NodePattern:
        self.expect("op", "(")
        variable = None
        if self.current.kind == "ident":
            variable = self.advance().text
        label = None
        if self.accept("op", ":"):
            label = self.expect("ident").text
        properties: list[tuple[str, Any]] = []
        if self.accept("op", "{"):
            while True:
                key = self.expect("ident").text
                self.expect("op", ":")
                properties.append((key, self.parse_literal()))
                if not self.accept("op", ","):
                    break
            self.expect("op", "}")
        self.expect("op", ")")
        return NodePattern(variable, label, tuple(properties))

    def parse_edge(self) -> EdgePattern:
        opener = self.expect("arrow").text
        if opener == "<-[":
            direction = "in"
        elif opener == "-[":
            direction = None  # decided by the closer
        else:
            raise QueryError(f"cypher: unexpected {opener!r}")
        variable = None
        if self.current.kind == "ident":
            variable = self.advance().text
        rel_type = None
        if self.accept("op", ":"):
            rel_type = self.expect("ident").text
        closer = self.expect("arrow").text
        if direction == "in":
            if closer != "]-":
                raise QueryError("cypher: incoming edge must close with ]-")
        elif closer == "]->":
            direction = "out"
        elif closer == "]-":
            direction = "both"
        else:
            raise QueryError(f"cypher: unexpected {closer!r}")
        return EdgePattern(variable, rel_type, direction)

    def parse_literal(self) -> Any:
        token = self.current
        if token.kind == "number":
            self.advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            self.advance()
            quote = token.text[0]
            return token.text[1:-1].replace(quote * 2, quote)
        if self.accept("keyword", "TRUE"):
            return True
        if self.accept("keyword", "FALSE"):
            return False
        if self.accept("keyword", "NULL"):
            return None
        raise QueryError(f"cypher: expected a literal, got {token.text!r}")

    def parse_or(self) -> BoolExpr:
        left = self.parse_and()
        while self.accept("keyword", "OR"):
            left = BoolExpr("OR", left, self.parse_and())
        return left

    def parse_and(self) -> BoolExpr:
        left = self.parse_not()
        while self.accept("keyword", "AND"):
            left = BoolExpr("AND", left, self.parse_not())
        return left

    def parse_not(self) -> BoolExpr:
        if self.accept("keyword", "NOT"):
            return BoolExpr("NOT", self.parse_not())
        if self.accept("op", "("):
            inner = self.parse_or()
            self.expect("op", ")")
            return inner
        return BoolExpr("LEAF", leaf=self.parse_comparison())

    def parse_comparison(self) -> Comparison:
        variable = self.expect("ident").text
        self.expect("op", ".")
        prop = self.expect("ident").text
        if self.accept("keyword", "IS"):
            negated = self.accept("keyword", "NOT")
            self.expect("keyword", "NULL")
            return Comparison(variable, prop, "notnull" if negated else "isnull")
        op_token = self.current
        if op_token.kind != "op" or op_token.text not in (
            "=", "<>", "<", "<=", ">", ">=",
        ):
            raise QueryError(
                f"cypher: expected a comparison operator, got "
                f"{op_token.text!r}"
            )
        self.advance()
        return Comparison(variable, prop, op_token.text, self.parse_literal())

    def parse_item(self) -> ReturnItem:
        variable = self.expect("ident").text
        prop = None
        if self.accept("op", "."):
            prop = self.expect("ident").text
        alias = None
        if self.accept("keyword", "AS"):
            alias = self.expect("ident").text
        return ReturnItem(variable, prop, alias)

    def parse_order(self) -> OrderItem:
        variable = self.expect("ident").text
        self.expect("op", ".")
        prop = self.expect("ident").text
        ascending = True
        if self.accept("keyword", "DESC"):
            ascending = False
        else:
            self.accept("keyword", "ASC")
        return OrderItem(variable, prop, ascending)


#: Pattern cache: ``CypherQuery`` and its components are frozen, so one
#: parsed query is safely shared by every execution of the same text.
_PATTERN_CACHE = QueryCache("cypher_patterns")


def parse_cypher(text: str) -> CypherQuery:
    """Parse one Cypher-subset query (cached by query text)."""
    return _PATTERN_CACHE.get_or_compute(text, lambda: _Parser(text).parse())


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class MatchRow:
    """One pattern match: variable bindings to nodes."""

    bindings: dict[str, "Node"] = field(default_factory=dict)


def _node_candidates(store: "GraphStore", pattern: NodePattern):
    if pattern.label is not None:
        return store.match(pattern.label, dict(pattern.properties) or None)
    nodes = store.match(None, dict(pattern.properties) or None)
    return nodes


def _satisfies(node: "Node", pattern: NodePattern) -> bool:
    if pattern.label is not None and pattern.label not in node.labels:
        return False
    for key, value in pattern.properties:
        if node.properties.get(key) != value:
            return False
    return True


def _edges_from(
    store: "GraphStore", node_id: str, pattern: EdgePattern
) -> Iterator[tuple["Edge", str]]:
    """Edges leaving ``node_id`` per the pattern; yields (edge, other)."""
    if pattern.direction in ("out", "both"):
        for edge_id in store._outgoing.get(node_id, ()):
            edge = store._edges[edge_id]
            if pattern.rel_type is None or edge.type == pattern.rel_type:
                yield edge, edge.end
    if pattern.direction in ("in", "both"):
        for edge_id in store._incoming.get(node_id, ()):
            edge = store._edges[edge_id]
            if pattern.rel_type is None or edge.type == pattern.rel_type:
                yield edge, edge.start


def _match_pattern(store: "GraphStore", query: CypherQuery) -> list[MatchRow]:
    rows: list[MatchRow] = []
    first = query.nodes[0]

    def bind(row: dict[str, "Node"], pattern: NodePattern, node: "Node") -> bool:
        if pattern.variable is None:
            return True
        bound = row.get(pattern.variable)
        if bound is not None:
            return bound.id == node.id
        row[pattern.variable] = node
        return True

    def backtrack(
        position: int,
        current: "Node",
        row: dict[str, "Node"],
        used_edges: set[str],
    ) -> None:
        if position == len(query.edges):
            rows.append(MatchRow(dict(row)))
            return
        edge_pattern = query.edges[position]
        next_pattern = query.nodes[position + 1]
        for edge, other_id in _edges_from(store, current.id, edge_pattern):
            if edge.id in used_edges:
                continue  # distinct-edge semantics, as in Cypher
            other = store._nodes[other_id]
            if not _satisfies(other, next_pattern):
                continue
            snapshot = dict(row)
            if not bind(row, next_pattern, other):
                row = snapshot
                continue
            used_edges.add(edge.id)
            backtrack(position + 1, other, row, used_edges)
            used_edges.discard(edge.id)
            row.clear()
            row.update(snapshot)

    for start in _node_candidates(store, first):
        row: dict[str, "Node"] = {}
        if bind(row, first, start):
            backtrack(0, start, row, set())
    return rows


def _eval_where(expr: BoolExpr, row: MatchRow) -> bool:
    if expr.op == "LEAF":
        assert expr.leaf is not None
        return _eval_comparison(expr.leaf, row)
    if expr.op == "NOT":
        assert isinstance(expr.left, BoolExpr)
        return not _eval_where(expr.left, row)
    assert isinstance(expr.left, BoolExpr)
    assert isinstance(expr.right, BoolExpr)
    if expr.op == "AND":
        return _eval_where(expr.left, row) and _eval_where(expr.right, row)
    if expr.op == "OR":
        return _eval_where(expr.left, row) or _eval_where(expr.right, row)
    raise QueryError(f"cypher: unknown boolean operator {expr.op!r}")


def _eval_comparison(comparison: Comparison, row: MatchRow) -> bool:
    node = row.bindings.get(comparison.variable)
    if node is None:
        raise QueryError(
            f"cypher: unbound variable {comparison.variable!r} in WHERE"
        )
    value = node.properties.get(comparison.prop)
    if comparison.op == "isnull":
        return value is None
    if comparison.op == "notnull":
        return value is not None
    if value is None:
        return False
    literal = comparison.literal
    try:
        if comparison.op == "=":
            return value == literal
        if comparison.op == "<>":
            return value != literal
        if comparison.op == "<":
            return value < literal
        if comparison.op == "<=":
            return value <= literal
        if comparison.op == ">":
            return value > literal
        if comparison.op == ">=":
            return value >= literal
    except TypeError:
        return False
    raise QueryError(f"cypher: unknown comparison {comparison.op!r}")


@dataclass
class CypherResult:
    """Rows plus, for whole-node items, the returned nodes."""

    columns: list[str]
    rows: list[dict[str, Any]]
    #: Nodes returned by bare-variable items, aligned with rows; used by
    #: the store to produce data objects.
    nodes: list["Node"]


def execute_cypher(store: "GraphStore", text: str) -> CypherResult:
    """Parse and run a Cypher-subset query against ``store``."""
    query = parse_cypher(text)
    matches = _match_pattern(store, query)
    if query.where is not None:
        matches = [row for row in matches if _eval_where(query.where, row)]

    # Deduplicate identical binding combinations (same nodes bound to
    # the same variables through different edges).
    seen: set[tuple] = set()
    unique: list[MatchRow] = []
    for row in matches:
        signature = tuple(
            (name, node.id) for name, node in sorted(row.bindings.items())
        )
        if signature not in seen:
            seen.add(signature)
            unique.append(row)
    matches = unique

    if query.order:
        def sort_key(row: MatchRow):
            key = []
            for order in query.order:
                node = row.bindings.get(order.variable)
                value = node.properties.get(order.prop) if node else None
                key.append(_sortable(value, order.ascending))
            return tuple(key)

        matches.sort(key=sort_key)
    if query.limit is not None:
        matches = matches[: query.limit]

    columns = [item.name for item in query.items]
    rows: list[dict[str, Any]] = []
    nodes: list["Node"] = []
    node_item = next(
        (item for item in query.items if item.prop is None), None
    )
    for row in matches:
        output: dict[str, Any] = {}
        for item in query.items:
            node = row.bindings.get(item.variable)
            if node is None:
                raise QueryError(
                    f"cypher: unbound variable {item.variable!r} in RETURN"
                )
            if item.prop is None:
                output[item.name] = node.payload()
            else:
                output[item.name] = node.properties.get(item.prop)
        rows.append(output)
        if node_item is not None:
            node = row.bindings[node_item.variable]
            nodes.append(node)
    return CypherResult(columns, rows, nodes)


class _Sortable:
    """Mixed-type sort key; ``__eq__`` makes multi-key ORDER BY work
    (tuple comparison advances only past equal elements)."""

    __slots__ = ("value", "reverse")

    def __init__(self, value: Any, reverse: bool):
        self.value = value
        self.reverse = reverse

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _Sortable):
            return NotImplemented
        return self.value == other.value

    def __hash__(self) -> int:  # pragma: no cover - not used as a key
        return hash(self.value)

    def __lt__(self, other: "_Sortable") -> bool:
        a, b = self.value, other.value
        if a is None:
            return not self.reverse
        if b is None:
            return self.reverse
        try:
            result = a < b
        except TypeError:
            result = str(a) < str(b)
        return result != self.reverse


def _sortable(value: Any, ascending: bool) -> _Sortable:
    return _Sortable(value, not ascending)
