"""A Neo4j-like property graph.

Nodes carry labels and property maps; relationships are typed, directed
and may carry properties. The native query API covers what the
similar-items workload needs: label/property match, neighbourhood
expansion, k-hop traversal, and shortest paths. Every node is a data
object whose collection is its primary label.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import KeyNotFoundError, QueryError
from repro.model.objects import DataObject, GlobalKey
from repro.stores.base import Store


@dataclass
class Node:
    """A labelled node with a property map."""

    id: str
    labels: tuple[str, ...]
    properties: dict[str, Any] = field(default_factory=dict)

    @property
    def primary_label(self) -> str:
        return self.labels[0] if self.labels else "Node"

    def payload(self) -> dict[str, Any]:
        data = dict(self.properties)
        data["_id"] = self.id
        data["_labels"] = list(self.labels)
        return data


@dataclass
class Edge:
    """A directed, typed relationship."""

    id: str
    type: str
    start: str
    end: str
    properties: dict[str, Any] = field(default_factory=dict)


class GraphStore(Store):
    """An in-memory property graph with adjacency indexes."""

    engine = "graph"

    def __init__(self) -> None:
        super().__init__()
        self._nodes: dict[str, Node] = {}
        self._edges: dict[str, Edge] = {}
        self._outgoing: dict[str, list[str]] = {}
        self._incoming: dict[str, list[str]] = {}
        self._by_label: dict[str, set[str]] = {}
        self._edge_counter = itertools.count(1)
        self._node_counter = itertools.count(1)

    # -- writes -----------------------------------------------------------------

    def create_node(
        self,
        labels: tuple[str, ...] | str,
        properties: Mapping[str, Any] | None = None,
        node_id: str | None = None,
    ) -> Node:
        if isinstance(labels, str):
            labels = (labels,)
        node_id = node_id or f"n{next(self._node_counter)}"
        if node_id in self._nodes:
            raise QueryError(f"node id {node_id!r} already exists")
        node = Node(node_id, tuple(labels), dict(properties or {}))
        self._nodes[node_id] = node
        self._outgoing[node_id] = []
        self._incoming[node_id] = []
        for label in labels:
            self._by_label.setdefault(label, set()).add(node_id)
        self.stats.writes += 1
        self._emit_change(
            "append", node.primary_label, node_id, node.payload()
        )
        return node

    def update_node(
        self,
        node_id: str,
        properties: Mapping[str, Any],
        replace: bool = False,
    ) -> Node:
        """SET properties on an existing node.

        With ``replace=False`` (the Cypher ``SET n.k = v`` shape) the
        given properties are merged into the current map; with
        ``replace=True`` (``SET n = {..}``) they replace it entirely —
        which is what WAL replay uses, since CDC captures post-state.
        Labels are immutable (they define the node's collection).
        """
        node = self._nodes.get(node_id)
        if node is None:
            raise KeyNotFoundError(f"node {node_id!r}")
        if replace:
            node.properties = dict(properties)
        else:
            node.properties.update(properties)
        self.stats.writes += 1
        self._emit_change(
            "update", node.primary_label, node_id, node.payload()
        )
        return node

    def create_edge(
        self,
        start: str,
        rel_type: str,
        end: str,
        properties: Mapping[str, Any] | None = None,
    ) -> Edge:
        if start not in self._nodes:
            raise KeyNotFoundError(f"node {start!r}")
        if end not in self._nodes:
            raise KeyNotFoundError(f"node {end!r}")
        edge_id = f"e{next(self._edge_counter)}"
        edge = Edge(edge_id, rel_type, start, end, dict(properties or {}))
        self._edges[edge_id] = edge
        self._outgoing[start].append(edge_id)
        self._incoming[end].append(edge_id)
        self.stats.writes += 1
        # Edges are not data objects (no collection of their own); the
        # underscore collection marks the event as infrastructure so A'
        # maintenance skips it, while WAL replay still restores it.
        self._emit_change(
            "append",
            "_edge",
            edge_id,
            {
                "type": rel_type,
                "start": start,
                "end": end,
                "properties": dict(properties or {}),
            },
        )
        return edge

    def delete_node(self, node_id: str) -> bool:
        node = self._nodes.pop(node_id, None)
        if node is None:
            return False
        for edge_id in list(self._outgoing.pop(node_id, ())):
            edge = self._edges.pop(edge_id, None)
            if edge:
                self._incoming.get(edge.end, []).remove(edge_id)
        for edge_id in list(self._incoming.pop(node_id, ())):
            edge = self._edges.pop(edge_id, None)
            if edge:
                self._outgoing.get(edge.start, []).remove(edge_id)
        for label in node.labels:
            self._by_label.get(label, set()).discard(node_id)
        self.stats.writes += 1
        self._emit_change("delete", node.primary_label, node_id)
        return True

    # -- reads ------------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise KeyNotFoundError(f"node {node_id!r}") from None

    def match(
        self,
        label: str | None = None,
        properties: Mapping[str, Any] | None = None,
        limit: int | None = None,
    ) -> list[Node]:
        """MATCH (n:label {properties}) RETURN n."""
        self.stats.queries += 1
        if label is not None:
            candidate_ids: Iterator[str] = iter(sorted(self._by_label.get(label, ())))
        else:
            candidate_ids = iter(self._nodes)
        results: list[Node] = []
        for node_id in candidate_ids:
            node = self._nodes[node_id]
            if properties and any(
                node.properties.get(key) != value
                for key, value in properties.items()
            ):
                continue
            results.append(node)
            if limit is not None and len(results) >= limit:
                break
        self.stats.objects_returned += len(results)
        return results

    def neighbors(
        self,
        node_id: str,
        rel_type: str | None = None,
        direction: str = "both",
    ) -> list[Node]:
        """Adjacent nodes, optionally filtered by relationship type."""
        if node_id not in self._nodes:
            raise KeyNotFoundError(f"node {node_id!r}")
        found: list[Node] = []
        seen: set[str] = set()
        if direction in ("out", "both"):
            for edge_id in self._outgoing[node_id]:
                edge = self._edges[edge_id]
                if rel_type is None or edge.type == rel_type:
                    if edge.end not in seen:
                        seen.add(edge.end)
                        found.append(self._nodes[edge.end])
        if direction in ("in", "both"):
            for edge_id in self._incoming[node_id]:
                edge = self._edges[edge_id]
                if rel_type is None or edge.type == rel_type:
                    if edge.start not in seen:
                        seen.add(edge.start)
                        found.append(self._nodes[edge.start])
        return found

    def traverse(
        self,
        start: str,
        depth: int,
        rel_type: str | None = None,
    ) -> list[Node]:
        """All nodes within ``depth`` hops of ``start`` (excluded)."""
        if start not in self._nodes:
            raise KeyNotFoundError(f"node {start!r}")
        visited = {start}
        frontier = deque([(start, 0)])
        found: list[Node] = []
        while frontier:
            node_id, level = frontier.popleft()
            if level >= depth:
                continue
            for neighbor in self.neighbors(node_id, rel_type, direction="out"):
                if neighbor.id not in visited:
                    visited.add(neighbor.id)
                    found.append(neighbor)
                    frontier.append((neighbor.id, level + 1))
        return found

    def shortest_path(self, start: str, end: str) -> list[str] | None:
        """Node ids along a shortest undirected path, or ``None``."""
        if start not in self._nodes or end not in self._nodes:
            raise KeyNotFoundError(f"node {start!r} or {end!r}")
        if start == end:
            return [start]
        parents: dict[str, str] = {start: start}
        frontier = deque([start])
        while frontier:
            node_id = frontier.popleft()
            for neighbor in self.neighbors(node_id, direction="both"):
                if neighbor.id in parents:
                    continue
                parents[neighbor.id] = node_id
                if neighbor.id == end:
                    path = [end]
                    while path[-1] != start:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                frontier.append(neighbor.id)
        return None

    def node_count(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return len(self._edges)

    # -- Store contract ------------------------------------------------------------

    def execute(self, query: Any) -> list[DataObject]:
        """Native query: Cypher text or a dict with an ``op`` key.

        Strings are parsed as the Cypher subset of
        :mod:`repro.stores.graph.cypher`; results are the nodes bound by
        the first bare-variable RETURN item (property-only returns yield
        derived ``_result`` rows, which are not augmentable). Dict form:

        ``{"op": "match", "label": ..., "properties": ..., "limit": ...}``
        ``{"op": "neighbors", "node": ..., "rel_type": ...}``
        ``{"op": "traverse", "node": ..., "depth": ..., "rel_type": ...}``
        """
        if isinstance(query, str):
            return self._execute_cypher(query)
        if not isinstance(query, Mapping) or "op" not in query:
            raise QueryError(f"unsupported graph query: {query!r}")
        op = query["op"]
        if op == "match":
            nodes = self.match(
                query.get("label"), query.get("properties"), query.get("limit")
            )
        elif op == "neighbors":
            self.stats.queries += 1
            nodes = self.neighbors(
                query["node"], query.get("rel_type"), query.get("direction", "both")
            )
            self.stats.objects_returned += len(nodes)
        elif op == "traverse":
            self.stats.queries += 1
            nodes = self.traverse(
                query["node"], query.get("depth", 1), query.get("rel_type")
            )
            self.stats.objects_returned += len(nodes)
        else:
            raise QueryError(f"unknown graph op {op!r}")
        return [self._to_object(node) for node in nodes]

    def _execute_cypher(self, text: str) -> list[DataObject]:
        from repro.stores.graph.cypher import execute_cypher

        self.stats.queries += 1
        result = execute_cypher(self, text)
        if result.nodes:
            objects = [self._to_object(node) for node in result.nodes]
        else:
            database = self.database_name or "graph"
            objects = [
                DataObject(GlobalKey(database, "_result", f"row{i}"), row)
                for i, row in enumerate(result.rows)
            ]
        self.stats.objects_returned += len(objects)
        return objects

    def _explain_plan(self, query: Any) -> dict[str, Any]:
        """Access path for a graph query: label-index scan when the
        (first) node pattern has a label, adjacency probe for
        ``neighbors``, bounded BFS for ``traverse``, full node scan
        otherwise."""
        if isinstance(query, str):
            from repro.stores.graph.cypher import parse_cypher

            parsed = parse_cypher(query)
            label = parsed.nodes[0].label if parsed.nodes else None
            plan = self._match_plan(label)
            plan["hops"] = len(parsed.edges)
            if parsed.edges:
                # Each hop expands the frontier through adjacency lists.
                plan["estimated_cost"] = float(
                    plan["estimated_rows"]
                    + len(parsed.edges) * self.edge_count()
                )
            return plan
        if not isinstance(query, Mapping) or "op" not in query:
            raise QueryError(f"unsupported graph query: {query!r}")
        op = query["op"]
        if op == "match":
            return self._match_plan(query.get("label"))
        if op == "neighbors":
            node_id = query["node"]
            degree = len(self._outgoing.get(node_id, ())) + len(
                self._incoming.get(node_id, ())
            )
            return {
                "access_path": "adjacency_probe",
                "index": "adjacency",
                "estimated_rows": degree,
                "estimated_cost": float(degree),
            }
        if op == "traverse":
            # Upper bound: a BFS can touch every node and edge once.
            nodes, edges = self.node_count(), self.edge_count()
            return {
                "access_path": "bfs_traversal",
                "index": "adjacency",
                "depth": query.get("depth", 1),
                "estimated_rows": nodes,
                "estimated_cost": float(nodes + edges),
            }
        raise QueryError(f"unknown graph op {op!r}")

    def _match_plan(self, label: str | None) -> dict[str, Any]:
        if label is not None:
            examined = len(self._by_label.get(label, ()))
            return {
                "access_path": "label_index",
                "index": f"label:{label}",
                "estimated_rows": examined,
                "estimated_cost": float(examined),
            }
        return {
            "access_path": "node_scan",
            "index": None,
            "estimated_rows": self.node_count(),
            "estimated_cost": float(self.node_count()),
        }

    def cypher(self, text: str) -> list[dict[str, Any]]:
        """Run a Cypher-subset query and return plain value rows."""
        from repro.stores.graph.cypher import execute_cypher

        self.stats.queries += 1
        result = execute_cypher(self, text)
        self.stats.objects_returned += len(result.rows)
        return result.rows

    def get_value(self, collection: str, key: str) -> Any:
        node = self._nodes.get(key)
        if node is None or collection not in node.labels:
            raise KeyNotFoundError(f"{collection}.{key}")
        return node.payload()

    def multi_get(self, keys) -> list[DataObject]:  # type: ignore[override]
        """Batch fetch via one node-id lookup per unique key.

        Probes the node map directly (the engine's internal-id batch
        lookup), checking each node carries the requested label;
        duplicates fetch once and missing keys are dropped.
        """
        self.stats.multi_gets += 1
        found: list[DataObject] = []
        nodes = self._nodes
        for key in dict.fromkeys(keys):
            node = nodes.get(key.key)
            if node is None or key.collection not in node.labels:
                continue
            found.append(DataObject(key, node.payload()))
        self.stats.objects_returned += len(found)
        return found

    def collections(self) -> list[str]:
        return sorted(self._by_label)

    def collection_keys(self, collection: str) -> Iterator[str]:
        return iter(sorted(self._by_label.get(collection, ())))

    def _to_object(self, node: Node) -> DataObject:
        return DataObject(
            GlobalKey(
                self.database_name or "graph", node.primary_label, node.id
            ),
            node.payload(),
        )
