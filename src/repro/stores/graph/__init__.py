"""Neo4j-like property-graph store."""

from repro.stores.graph.store import Edge, GraphStore, Node

__all__ = ["Edge", "GraphStore", "Node"]
