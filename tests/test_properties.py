"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collector.comparators import (
    JaroWinklerComparator,
    LevenshteinComparator,
    NumericComparator,
    jaro_similarity,
    levenshtein_distance,
)
from repro.core.aindex import AIndex
from repro.core.augmentation import Augmentation
from repro.core.cache import LruCache
from repro.core.search import SearchStats, assemble_answer
from repro.core.validator import sql_to_string
from repro.model.objects import AugmentedObject, DataObject, GlobalKey
from repro.model.prelations import PRelation, RelationType
from repro.stores.document.query import matches_filter
from repro.stores.relational.parser import parse_sql

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
words = st.text(alphabet=string.ascii_letters + " '", min_size=0, max_size=20)


@st.composite
def global_keys(draw, pool: int = 12) -> GlobalKey:
    index = draw(st.integers(min_value=0, max_value=pool - 1))
    return GlobalKey(f"db{index % 4}", "c", f"k{index}")


@st.composite
def prelations(draw) -> PRelation:
    left = draw(global_keys())
    right = draw(global_keys().filter(lambda k: True))
    if left == right:
        right = GlobalKey(left.database, left.collection, left.key + "x")
    rel_type = draw(st.sampled_from(list(RelationType)))
    probability = draw(
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
    )
    return PRelation(left, right, rel_type, probability)


# ---------------------------------------------------------------------------
# String metrics
# ---------------------------------------------------------------------------


class TestStringMetricProperties:
    @given(words, words)
    def test_levenshtein_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(words)
    def test_levenshtein_identity(self, a):
        assert levenshtein_distance(a, a) == 0

    @given(words, words, words)
    @settings(max_examples=50)
    def test_levenshtein_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(words, words)
    def test_levenshtein_bounded_by_longer_string(self, a, b):
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(words, words)
    def test_jaro_range_and_symmetry(self, a, b):
        similarity = jaro_similarity(a, b)
        assert 0.0 <= similarity <= 1.0
        assert similarity == jaro_similarity(b, a)

    @given(words, words)
    def test_jaro_winkler_at_least_jaro(self, a, b):
        a, b = a.lower(), b.lower()
        assert JaroWinklerComparator().compare(a, b) >= jaro_similarity(
            a.strip(), b.strip()
        ) - 1e-9 if a.strip() and b.strip() else True

    @given(words, words)
    def test_comparator_outputs_are_probabilities(self, a, b):
        for comparator in (
            LevenshteinComparator(),
            JaroWinklerComparator(),
        ):
            assert 0.0 <= comparator.compare(a, b) <= 1.0 + 1e-9

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    )
    def test_numeric_comparator_range_and_symmetry(self, a, b):
        comparator = NumericComparator(0.5)
        score = comparator.compare(a, b)
        assert 0.0 <= score <= 1.0
        assert score == comparator.compare(b, a)


# ---------------------------------------------------------------------------
# LRU cache model check
# ---------------------------------------------------------------------------


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from("gp"), st.integers(0, 20)),
            max_size=200,
        ),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60)
    def test_against_reference_model(self, operations, capacity):
        """The cache behaves exactly like a dict-based LRU model."""
        cache = LruCache(capacity)
        model: dict[str, int] = {}
        for op, index in operations:
            key = GlobalKey("db", "c", f"k{index}")
            if op == "p":
                model.pop(str(key), None)
                model[str(key)] = index
                while len(model) > capacity:
                    model.pop(next(iter(model)))
                cache.put(DataObject(key, index))
            else:
                expected = str(key) in model
                if expected:
                    value = model.pop(str(key))
                    model[str(key)] = value
                got = cache.get(key)
                assert (got is not None) == expected
        assert len(cache) == len(model)

    @given(st.lists(st.integers(0, 50), max_size=100),
           st.integers(min_value=0, max_value=10))
    def test_never_exceeds_capacity(self, inserts, capacity):
        cache = LruCache(capacity)
        for index in inserts:
            cache.put(DataObject(GlobalKey("db", "c", f"k{index}"), index))
            assert len(cache) <= capacity


# ---------------------------------------------------------------------------
# A' index invariants
# ---------------------------------------------------------------------------


class TestAIndexProperties:
    @given(st.lists(prelations(), max_size=25))
    @settings(max_examples=60)
    def test_adjacency_is_symmetric(self, relations):
        index = AIndex()
        index.add_all(relations)
        for node in list(index.nodes()):
            for neighbor in index.neighbors(node):
                back = index.relation(neighbor.key, node)
                assert back is not None
                assert back.probability == neighbor.probability
                assert back.type is neighbor.type

    @given(st.lists(prelations(), max_size=25))
    @settings(max_examples=60)
    def test_consistency_condition_holds(self, relations):
        """After arbitrary inserts: x = b and b ~ a implies x = a."""
        index = AIndex()
        index.add_all(relations)
        for node in list(index.nodes()):
            identities = [
                n for n in index.neighbors(node, RelationType.IDENTITY)
            ]
            matchings = [
                n for n in index.neighbors(node, RelationType.MATCHING)
            ]
            for identity in identities:
                for matching in matchings:
                    if identity.key == matching.key:
                        continue
                    assert index.relation(identity.key, matching.key) is not None

    @given(st.lists(prelations(), max_size=25))
    @settings(max_examples=60)
    def test_probabilities_stay_valid(self, relations):
        index = AIndex()
        index.add_all(relations)
        for node in list(index.nodes()):
            for neighbor in index.neighbors(node):
                assert 0.0 < neighbor.probability <= 1.0

    @given(st.lists(prelations(), max_size=20), global_keys())
    @settings(max_examples=60)
    def test_remove_object_removes_all_traces(self, relations, victim):
        index = AIndex()
        index.add_all(relations)
        index.remove_object(victim)
        assert victim not in index
        for node in list(index.nodes()):
            assert all(n.key != victim for n in index.neighbors(node))


# ---------------------------------------------------------------------------
# Augmentation planning invariants
# ---------------------------------------------------------------------------


class TestAugmentationProperties:
    @given(st.lists(prelations(), min_size=1, max_size=25),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=60)
    def test_plan_probabilities_monotone_with_level(self, relations, level):
        index = AIndex()
        index.add_all(relations)
        seed = relations[0].left
        plan = Augmentation(index).plan([seed], level)
        fetches = plan.fetches_by_seed[seed]
        # Ordered by decreasing probability, no seed, no duplicates.
        probabilities = [f.probability for f in fetches]
        assert probabilities == sorted(probabilities, reverse=True)
        keys = [f.key for f in fetches]
        assert len(keys) == len(set(keys))
        assert seed not in keys

    @given(st.lists(prelations(), min_size=1, max_size=25))
    @settings(max_examples=60)
    def test_higher_level_reaches_superset(self, relations):
        index = AIndex()
        index.add_all(relations)
        seed = relations[0].left
        augmentation = Augmentation(index)
        level0 = {
            f.key for f in augmentation.plan([seed], 0).fetches_by_seed[seed]
        }
        level2 = {
            f.key for f in augmentation.plan([seed], 2).fetches_by_seed[seed]
        }
        assert level0 <= level2

    @given(st.lists(prelations(), min_size=1, max_size=25))
    @settings(max_examples=60)
    def test_path_products_match_probability(self, relations):
        index = AIndex()
        index.add_all(relations)
        seed = relations[0].left
        plan = Augmentation(index).plan([seed], 2)
        for fetch in plan.fetches_by_seed[seed]:
            product = 1.0
            previous = seed
            for hop in fetch.path:
                relation = index.relation(previous, hop)
                assert relation is not None
                product *= relation.probability
                previous = hop
            assert abs(product - fetch.probability) < 1e-9


# ---------------------------------------------------------------------------
# Answer assembly invariants
# ---------------------------------------------------------------------------


class TestAnswerProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 8),   # target key index
                st.integers(0, 3),   # source key index
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=80)
    def test_dedup_keeps_global_maximum(self, entries):
        originals = [DataObject(GlobalKey("db", "s", f"s{i}")) for i in range(4)]
        raw = [
            AugmentedObject(
                DataObject(
                    GlobalKey("other", "c", f"t{target}"), None, probability=p
                ),
                source=GlobalKey("db", "s", f"s{source}"),
            )
            for target, source, p in entries
        ]
        answer = assemble_answer(originals, raw, SearchStats())
        best: dict[str, float] = {}
        for target, __, p in entries:
            key = f"other.c.t{target}"
            best[key] = max(best.get(key, 0.0), p)
        assert {str(e.key): e.probability for e in answer.augmented} == best


# ---------------------------------------------------------------------------
# SQL printer fixpoint
# ---------------------------------------------------------------------------


class TestSqlPrinterProperties:
    @given(
        st.integers(0, 3),
        st.sampled_from(["=", "!=", "<", ">", "<=", ">="]),
        st.integers(-100, 100),
        st.booleans(),
    )
    def test_print_parse_fixpoint(self, column, op, literal, order):
        sql = (
            f"SELECT c{column}, c9 FROM t WHERE c{column} {op} {literal}"
            + (" ORDER BY c9 DESC" if order else "")
        )
        printed = sql_to_string(parse_sql(sql))
        assert sql_to_string(parse_sql(printed)) == printed


# ---------------------------------------------------------------------------
# Document filters
# ---------------------------------------------------------------------------


class TestFilterProperties:
    @given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
    def test_range_filter_equals_python_semantics(self, value, low, high):
        document = {"_id": "x", "v": value}
        query = {"v": {"$gte": low, "$lt": high}}
        assert matches_filter(document, query) == (low <= value < high)

    @given(st.lists(st.integers(0, 9), max_size=6), st.integers(0, 9))
    def test_membership_filter(self, members, candidate):
        document = {"_id": "x", "tags": members}
        assert matches_filter(document, {"tags": candidate}) == (
            candidate in members
        )
