"""Tests for the REST-shaped API and the renderers."""

import json

import pytest

from repro.obs import parse_prometheus_text
from repro.ui import AnsiRenderer, ApiError, QuepaApi, TextRenderer, probability_band
from repro.ui.api import TextResponse

QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"


@pytest.fixture
def api(mini_quepa) -> QuepaApi:
    return QuepaApi(mini_quepa)


class TestQueryEndpoint:
    def test_augmented_query(self, api):
        response = api.handle(
            "POST", "/query",
            {"database": "transactions", "query": QUERY, "level": 0},
        )
        assert len(response["originals"]) == 1
        assert len(response["augmented"]) == 3
        assert response["stats"]["augmenter"] == "sequential"
        top = response["augmented"][0]
        assert top["key"] == "catalogue.albums.d1"
        assert top["band"] == "strong"
        assert top["source"] == "transactions.inventory.a32"

    def test_query_without_augmentation(self, api):
        response = api.handle(
            "POST", "/query",
            {"database": "transactions", "query": QUERY, "augment": False},
        )
        assert response["augmented"] == []

    def test_query_with_config(self, api):
        response = api.handle(
            "POST", "/query",
            {
                "database": "transactions",
                "query": QUERY,
                "config": {"augmenter": "batch", "batch_size": 4},
            },
        )
        assert response["stats"]["augmenter"] == "batch"

    def test_missing_field_is_400(self, api):
        with pytest.raises(ApiError) as err:
            api.handle("POST", "/query", {"database": "transactions"})
        assert err.value.status == 400

    def test_unknown_database_is_404(self, api):
        with pytest.raises(ApiError) as err:
            api.handle("POST", "/query", {"database": "zz", "query": QUERY})
        assert err.value.status == 404

    def test_aggregate_query_is_422(self, api):
        with pytest.raises(ApiError) as err:
            api.handle(
                "POST", "/query",
                {"database": "transactions",
                 "query": "SELECT COUNT(*) FROM inventory"},
            )
        assert err.value.status == 422

    def test_bad_config_field_is_400(self, api):
        with pytest.raises(ApiError) as err:
            api.handle(
                "POST", "/query",
                {"database": "transactions", "query": QUERY,
                 "config": {"warp": 9}},
            )
        assert err.value.status == 400

    def test_negative_level_is_400(self, api):
        with pytest.raises(ApiError) as err:
            api.handle(
                "POST", "/query",
                {"database": "transactions", "query": QUERY, "level": -1},
            )
        assert err.value.status == 400

    def test_unknown_augmenter_is_400(self, api):
        with pytest.raises(ApiError) as err:
            api.handle(
                "POST", "/query",
                {"database": "transactions", "query": QUERY,
                 "config": {"augmenter": "teleport"}},
            )
        assert err.value.status == 400


class TestExplorationEndpoints:
    def open(self, api):
        return api.handle(
            "POST", "/explore",
            {"database": "transactions", "query": QUERY},
        )

    def test_open_returns_results(self, api):
        response = self.open(api)
        assert response["session"] == "s1"
        assert response["results"][0]["key"] == "transactions.inventory.a32"

    def test_select_returns_ranked_links(self, api):
        sid = self.open(api)["session"]
        response = api.handle(
            "POST", f"/explore/{sid}/select",
            {"key": "transactions.inventory.a32"},
        )
        probabilities = [l["probability"] for l in response["links"]]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_select_off_path_is_409(self, api):
        sid = self.open(api)["session"]
        with pytest.raises(ApiError) as err:
            api.handle(
                "POST", f"/explore/{sid}/select",
                {"key": "transactions.inventory.a33"},
            )
        assert err.value.status == 409

    def test_state_reflects_walk(self, api):
        sid = self.open(api)["session"]
        api.handle("POST", f"/explore/{sid}/select",
                   {"key": "transactions.inventory.a32"})
        state = api.handle("GET", f"/explore/{sid}")
        assert state["path"] == ["transactions.inventory.a32"]
        assert len(state["steps"]) == 1

    def test_close_records_path(self, api, mini_quepa):
        sid = self.open(api)["session"]
        api.handle("POST", f"/explore/{sid}/select",
                   {"key": "transactions.inventory.a32"})
        api.handle("POST", f"/explore/{sid}/select",
                   {"key": "catalogue.albums.d1"})
        api.handle("POST", f"/explore/{sid}/select",
                   {"key": "similar.Item.i1"})
        response = api.handle("POST", f"/explore/{sid}/close")
        assert response["closed"] is True
        assert len(response["path"]) == 3
        assert mini_quepa.paths.visits(tuple(
            parse_keys_helper(response["path"])
        )) == 1

    def test_closed_session_is_gone(self, api):
        sid = self.open(api)["session"]
        api.handle("POST", f"/explore/{sid}/close")
        with pytest.raises(ApiError) as err:
            api.handle("GET", f"/explore/{sid}")
        assert err.value.status == 404

    def test_sessions_are_independent(self, api):
        first = self.open(api)["session"]
        second = self.open(api)["session"]
        assert first != second
        api.handle("POST", f"/explore/{first}/select",
                   {"key": "transactions.inventory.a32"})
        state = api.handle("GET", f"/explore/{second}")
        assert state["steps"] == []

    def test_bad_key_is_400(self, api):
        sid = self.open(api)["session"]
        with pytest.raises(ApiError) as err:
            api.handle("POST", f"/explore/{sid}/select", {"key": "junk"})
        assert err.value.status == 400


def parse_keys_helper(texts):
    from repro.model.objects import GlobalKey

    return [GlobalKey.parse(text) for text in texts]


class TestOtherEndpoints:
    def test_get_object(self, api):
        response = api.handle("GET", "/object/catalogue.albums.d1")
        assert response["value"]["title"] == "Wish"
        assert response["collection"] == "albums"

    def test_get_object_missing_is_404(self, api):
        with pytest.raises(ApiError) as err:
            api.handle("GET", "/object/catalogue.albums.nope")
        assert err.value.status == 404

    def test_databases(self, api):
        response = api.handle("GET", "/databases")
        engines = {d["name"]: d["engine"] for d in response["databases"]}
        assert engines["transactions"] == "relational"
        assert engines["discount"] == "keyvalue"

    def test_stats_before_any_run(self, api):
        assert api.handle("GET", "/stats") == {"last_run": None}

    def test_stats_after_run(self, api):
        api.handle("POST", "/query",
                   {"database": "transactions", "query": QUERY})
        response = api.handle("GET", "/stats")
        assert response["last_run"]["features"]["engine"] == "relational"

    def test_stats_carries_observability_fields(self, api):
        api.handle("POST", "/query",
                   {"database": "transactions", "query": QUERY, "level": 1})
        last = api.handle("GET", "/stats")["last_run"]
        assert last["queries_by_database"]["transactions"] >= 1
        assert last["span_summary"]["store_call"]["count"] >= 1
        assert last["skipped_flushes"] == 0

    def test_metrics_endpoint(self, api):
        api.handle("POST", "/query",
                   {"database": "transactions", "query": QUERY, "level": 1})
        metrics = api.handle("GET", "/metrics")["metrics"]
        by_name = {}
        for entry in metrics:
            by_name.setdefault(entry["name"], []).append(entry)
        latencies = by_name["store_call_seconds"]
        databases = {entry["labels"]["database"] for entry in latencies}
        assert "transactions" in databases
        assert len(databases) >= 2  # level 1 touched other stores
        assert all(entry["type"] == "histogram" for entry in latencies)
        assert by_name["cache_probes_total"][0]["value"] > 0

    def test_metrics_accumulate_across_queries(self, api):
        def issued():
            metrics = api.handle("GET", "/metrics")["metrics"]
            return sum(
                entry["value"] for entry in metrics
                if entry["name"] == "store_queries_total"
            )

        api.handle("POST", "/query",
                   {"database": "transactions", "query": QUERY})
        first = issued()
        api.handle("POST", "/query",
                   {"database": "transactions", "query": QUERY})
        assert issued() > first

    def test_trace_endpoint(self, api):
        api.handle("POST", "/query",
                   {"database": "transactions", "query": QUERY, "level": 1})
        trace = api.handle("GET", "/trace")["trace"]
        kinds = set(trace["summary"]["by_kind"])
        assert {"plan", "store_call"} <= kinds
        assert len(kinds) >= 3
        assert trace["summary"]["spans"] == len(trace["spans"])
        names = {span["name"] for span in trace["spans"]}
        assert "store_call" in names

    def test_trace_resets_per_run(self, api):
        api.handle("POST", "/query",
                   {"database": "transactions", "query": QUERY, "level": 1})
        deep = api.handle("GET", "/trace")["trace"]["summary"]["spans"]
        api.handle("POST", "/query",
                   {"database": "transactions", "query": QUERY,
                    "augment": False})
        shallow = api.handle("GET", "/trace")["trace"]["summary"]["spans"]
        assert shallow < deep  # the tracer only holds the last run

    def test_unknown_route_is_404(self, api):
        with pytest.raises(ApiError) as err:
            api.handle("GET", "/teapot")
        assert err.value.status == 404

    def test_error_payload_shape(self, api):
        try:
            api.handle("GET", "/teapot")
        except ApiError as err:
            assert err.to_response() == {
                "error": err.message, "status": 404,
            }


class TestObservabilityEndpoints:
    def test_metrics_prometheus_format(self, api):
        api.handle("POST", "/query",
                   {"database": "transactions", "query": QUERY, "level": 1})
        response = api.handle("GET", "/metrics?format=prometheus")
        assert isinstance(response, TextResponse)
        assert response.content_type.startswith("text/plain")
        assert "# TYPE" in response.body
        rows = parse_prometheus_text(response.body)
        names = {row["name"] for row in rows}
        assert "store_queries_total" in names
        assert "store_call_seconds_bucket" in names

    def test_metrics_unknown_format_is_400(self, api):
        with pytest.raises(ApiError) as err:
            api.handle("GET", "/metrics?format=xml")
        assert err.value.status == 400

    def test_trace_chrome_format(self, api):
        api.handle("POST", "/query",
                   {"database": "transactions", "query": QUERY, "level": 1})
        payload = api.handle("GET", "/trace?format=chrome")
        events = payload["traceEvents"]
        assert events and all(event["ph"] == "X" for event in events)
        json.dumps(payload)

    def test_events_endpoint_with_filters(self, api):
        api.handle("POST", "/query",
                   {"database": "transactions", "query": QUERY, "level": 1})
        response = api.handle("GET", "/events")
        kinds = {event["kind"] for event in response["events"]}
        assert "augmentation_completed" in kinds
        assert response["stats"]["emitted"] >= 1
        filtered = api.handle(
            "GET", "/events?kind=augmentation_completed&limit=1"
        )
        assert len(filtered["events"]) == 1

    def test_events_bad_params_are_400(self, api):
        with pytest.raises(ApiError) as err:
            api.handle("GET", "/events?limit=soon")
        assert err.value.status == 400
        with pytest.raises(ApiError) as err:
            api.handle("GET", "/events?min_severity=loud")
        assert err.value.status == 400

    def test_explain_endpoint(self, api):
        response = api.handle(
            "POST", "/explain",
            {"database": "transactions", "query": QUERY, "level": 1},
        )
        report = response["explain"]
        assert report["query"]["store"]["access_path"] == "full_scan"
        assert report["plan"]["planned_fetches"] > 0
        assert report["execution"]["estimated_queries"] >= 1
        assert "actual" not in report

    def test_explain_analyze_with_config(self, api):
        response = api.handle(
            "POST", "/explain",
            {"database": "transactions", "query": QUERY, "level": 1,
             "analyze": True, "config": {"augmenter": "batch"}},
        )
        report = response["explain"]
        assert report["config"]["source"] == "explicit"
        assert report["execution"]["batching"] is True
        assert report["actual"]["queries_issued"] >= 1

    def test_explain_missing_field_is_400(self, api):
        with pytest.raises(ApiError) as err:
            api.handle("POST", "/explain", {"database": "transactions"})
        assert err.value.status == 400

    def test_query_string_ignored_on_other_routes(self, api):
        response = api.handle("GET", "/databases?whatever=1")
        assert len(response["databases"]) == 4


class TestRenderers:
    def test_probability_bands(self):
        assert probability_band(0.95) == "strong"
        assert probability_band(0.9) == "strong"
        assert probability_band(0.7) == "likely"
        assert probability_band(0.4) == "weak"
        assert probability_band(0.1) == "tenuous"

    def test_text_renderer_groups_links(self, mini_quepa):
        answer = mini_quepa.augmented_search("transactions", QUERY)
        text = TextRenderer().render_answer(answer)
        assert "transactions.inventory.a32" in text
        assert "[strong 0.90] catalogue.albums.d1" in text

    def test_text_renderer_truncates_values(self, mini_quepa):
        answer = mini_quepa.augmented_search("transactions", QUERY)
        text = TextRenderer(value_width=10).render_answer(answer)
        assert "..." in text

    def test_ranked_links(self, mini_quepa):
        from repro.model.objects import GlobalKey

        links = mini_quepa.augment_object(
            GlobalKey.parse("transactions.inventory.a32")
        )
        text = TextRenderer().render_links(links)
        assert text.startswith("1. =>")

    def test_ansi_renderer_colors(self, mini_quepa):
        answer = mini_quepa.augmented_search("transactions", QUERY)
        text = AnsiRenderer().render_answer(answer)
        assert "\x1b[32m" in text  # a strong (green) link
        assert "\x1b[0m" in text
