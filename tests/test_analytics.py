"""Tests for the augmented-analytics extension (paper future work)."""

import pytest

from repro.analytics import (
    augmented_aggregate,
    augmented_profile,
    enrich_table,
)
from repro.analytics.aggregate import by_collection, GroupStats, _as_number

QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"


class TestGroupStats:
    def test_weighted_accumulation(self):
        stats = GroupStats()
        stats.add(0.5, 10)
        stats.add(1.0, 20)
        assert stats.expected_count == 1.5
        assert stats.raw_count == 2
        assert stats.weighted_sum == 25.0
        assert stats.expected_mean == pytest.approx(25.0 / 1.5)
        assert stats.minimum == 10 and stats.maximum == 20

    def test_non_numeric_values_only_count(self):
        stats = GroupStats()
        stats.add(0.8, "not-a-number")
        assert stats.expected_count == 0.8
        assert stats.expected_mean is None

    def test_percentage_strings_parse(self):
        assert _as_number("40%") == 40.0
        assert _as_number(" 12.5 ") == 12.5
        assert _as_number("n/a") is None
        assert _as_number(True) is None


class TestAggregate:
    def test_expected_counts_by_database(self, mini_quepa):
        report = augmented_aggregate(mini_quepa, "transactions", QUERY)
        # Links: catalogue 0.9, discount 0.72, similar 0.63.
        assert report.groups["catalogue"].expected_count == pytest.approx(0.9)
        assert report.groups["discount"].expected_count == pytest.approx(0.72)
        assert report.groups["similar"].expected_count == pytest.approx(0.63)
        assert report.total_expected() == pytest.approx(2.25)

    def test_metric_field_weighted_sum(self, mini_quepa):
        report = augmented_aggregate(
            mini_quepa, "transactions", QUERY, metric_field="year"
        )
        catalogue = report.groups["catalogue"]
        assert catalogue.weighted_sum == pytest.approx(0.9 * 1992)
        assert catalogue.expected_mean == pytest.approx(1992)

    def test_scalar_payload_metric(self, mini_quepa):
        """Key-value discounts: '40%' parses as 40.0 under 'value'."""
        report = augmented_aggregate(
            mini_quepa, "transactions", QUERY, metric_field="value"
        )
        discount = report.groups["discount"]
        assert discount.weighted_sum == pytest.approx(0.72 * 40.0)

    def test_group_by_collection(self, mini_quepa):
        report = augmented_aggregate(
            mini_quepa, "transactions", QUERY, group_by=by_collection
        )
        assert "catalogue.albums" in report.groups
        assert "similar.Item" in report.groups

    def test_profile_shape(self, mini_quepa):
        profile = augmented_profile(mini_quepa, "transactions", QUERY)
        assert profile["catalogue"]["objects"] == 1.0
        assert profile["catalogue"]["mean_probability"] == pytest.approx(0.9)
        assert set(profile) == {"catalogue", "discount", "similar"}

    def test_level_1_profile_reaches_further(self, mini_quepa):
        level0 = augmented_profile(mini_quepa, "transactions", QUERY, level=0)
        level1 = augmented_profile(mini_quepa, "transactions", QUERY, level=1)
        total0 = sum(entry["objects"] for entry in level0.values())
        total1 = sum(entry["objects"] for entry in level1.values())
        assert total1 >= total0


class TestEnrichTable:
    def test_one_row_per_result_with_remote_columns(self, mini_quepa):
        rows = enrich_table(mini_quepa, "transactions",
                            "SELECT * FROM inventory")
        assert len(rows) == 3
        wish = next(r for r in rows if r["_key"].endswith("a32"))
        assert wish["catalogue"]["value"]["title"] == "Wish"
        assert wish["discount"]["value"] == "40%"
        assert wish["catalogue"]["probability"] == pytest.approx(0.9)

    def test_results_without_relations_have_no_remote_columns(
        self, mini_quepa
    ):
        rows = enrich_table(mini_quepa, "transactions",
                            "SELECT * FROM inventory")
        a33 = next(r for r in rows if r["_key"].endswith("a33"))
        assert set(a33) == {"_key", "_local"}

    def test_min_probability_filters(self, mini_quepa):
        rows = enrich_table(
            mini_quepa, "transactions", QUERY, min_probability=0.8
        )
        wish = rows[0]
        assert "catalogue" in wish       # p = 0.90
        assert "discount" not in wish    # p = 0.72
        assert "similar" not in wish     # p = 0.63

    def test_shared_objects_appear_on_every_related_row(self, mini_quepa):
        """Unlike the ranked answer, enrichment does not deduplicate
        across rows."""
        from repro.model.prelations import PRelation
        from repro.model.objects import GlobalKey

        mini_quepa.aindex.add(
            PRelation.matching(
                GlobalKey.parse("transactions.inventory.a33"),
                GlobalKey.parse("catalogue.albums.d1"),
                0.65,
            )
        )
        rows = enrich_table(mini_quepa, "transactions",
                            "SELECT * FROM inventory")
        a32 = next(r for r in rows if r["_key"].endswith("a32"))
        a33 = next(r for r in rows if r["_key"].endswith("a33"))
        assert a32["catalogue"]["key"] == "catalogue.albums.d1"
        assert a33["catalogue"]["key"] == "catalogue.albums.d1"

    def test_most_probable_object_wins_per_database(self, mini_quepa):
        from repro.model.prelations import PRelation
        from repro.model.objects import GlobalKey

        mini_quepa.aindex.add(
            PRelation.matching(
                GlobalKey.parse("transactions.inventory.a32"),
                GlobalKey.parse("catalogue.albums.d2"),
                0.61,
            )
        )
        rows = enrich_table(mini_quepa, "transactions", QUERY)
        wish = rows[0]
        assert wish["catalogue"]["key"] == "catalogue.albums.d1"  # 0.9 > 0.61

    def test_enrichment_at_level_1(self, mini_quepa):
        rows = enrich_table(mini_quepa, "transactions", QUERY, level=1)
        wish = rows[0]
        # Level 1 reaches similar.Item.i2 through i1; i1 stays the most
        # probable similar-db object.
        assert wish["similar"]["key"] == "similar.Item.i1"
