"""Unit tests for the sharding layer: schemes, stores, index, wiring."""

from __future__ import annotations

from zlib import crc32

import pytest

from repro.core import AIndex, Quepa
from repro.core.connectors import Connector
from repro.errors import ConfigurationError, KeyNotFoundError, QueryError
from repro.model import GlobalKey, PRelation
from repro.serving import LoadGenerator
from repro.sharding import (
    HashScheme,
    RangeScheme,
    ShardConnector,
    ShardedAIndex,
    ShardedStore,
    hash_shard,
    make_scheme,
    partition_store,
    query_interval,
    shard_aindex,
    shard_polystore,
)

from tests.conftest import make_mini_aindex, make_mini_polystore

K = GlobalKey.parse


# -- placement schemes -------------------------------------------------------


class TestHashScheme:
    def test_hash_shard_is_crc32(self):
        assert hash_shard("a32", 4) == crc32(b"a32") % 4
        # Stable across calls (no per-process salt).
        assert hash_shard("a32", 4) == hash_shard("a32", 4)

    def test_key_and_object_placement_agree(self):
        scheme = HashScheme(4)
        for key in ("a32", "d1", "disc:17", "i3"):
            assert scheme.shard_of_key(key) == scheme.shard_of_object(
                "any", key, {"seq": 3}
            )

    def test_scans_cannot_prune(self):
        assert HashScheme(3).scan_candidates((0.0, 10.0)) == [0, 1, 2]

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError):
            HashScheme(0)


class TestRangeScheme:
    def test_fit_produces_sorted_cuts(self):
        scheme = RangeScheme(4)
        scheme.fit(list(range(100)))
        assert scheme.boundaries == sorted(scheme.boundaries)
        assert len(scheme.boundaries) == 3

    def test_boundary_count_validated(self):
        with pytest.raises(ConfigurationError):
            RangeScheme(4, boundaries=[10.0])

    def test_point_lookups_cannot_route(self):
        scheme = RangeScheme(2, boundaries=[50.0])
        assert scheme.shard_of_key("a32") is None

    def test_tokened_objects_place_by_boundary(self):
        scheme = RangeScheme(2, boundaries=[50.0])
        assert scheme.shard_of_object("t", "x", {"seq": 10}) == 0
        assert scheme.shard_of_object("t", "y", {"seq": 99}) == 1

    def test_untokened_objects_fall_back_to_shard_zero(self):
        scheme = RangeScheme(2, boundaries=[50.0])
        assert scheme.shard_of_object("t", "x", {"name": "Wish"}) == 0
        assert scheme.has_untokened
        # ...and shard 0 can no longer be pruned away.
        assert 0 in scheme.scan_candidates((60.0, 70.0))

    def test_scan_prunes_non_overlapping_shards(self):
        scheme = RangeScheme(4, boundaries=[25.0, 50.0, 75.0])
        assert scheme.scan_candidates((0.0, 10.0)) == [0]
        assert scheme.scan_candidates((30.0, 60.0)) == [1, 2]
        assert scheme.scan_candidates(None) == [0, 1, 2, 3]


class TestQueryInterval:
    def test_sql_window(self):
        assert query_interval(
            "relational", "SELECT * FROM inventory WHERE seq >= 10 AND seq < 20"
        ) == (10.0, 20.0)

    def test_sql_without_window(self):
        query = "SELECT * FROM inventory WHERE name LIKE '%wish%'"
        assert query_interval("relational", query) is None

    def test_document_window(self):
        query = {"collection": "albums", "filter": {"seq": {"$gte": 5, "$lt": 9}}}
        assert query_interval("document", query) == (5.0, 9.0)

    def test_document_closed_bounds(self):
        query = {"collection": "albums", "filter": {"seq": {"$gt": 4, "$lte": 8}}}
        assert query_interval("document", query) == (5.0, 9.0)

    def test_graph_queries_never_prove_a_window(self):
        assert query_interval("graph", {"op": "match", "label": "Item"}) is None

    def test_make_scheme_rejects_unknown_placement(self):
        with pytest.raises(ConfigurationError):
            make_scheme("round_robin", 2)


# -- sharded stores ----------------------------------------------------------


@pytest.fixture
def polystore():
    return make_mini_polystore()


class TestShardedStore:
    def test_partitioning_preserves_every_object(self, polystore):
        for name, store in polystore.databases.items():
            sharded = partition_store(store, HashScheme(3))
            assert sharded.count_objects() == store.count_objects()
            assert sharded.collections() == store.collections()
            assert sorted(sharded.collection_keys(store.collections()[0])) == \
                sorted(store.collection_keys(store.collections()[0]))

    def test_multi_get_matches_unsharded(self, polystore):
        store = polystore.database("transactions")
        sharded = partition_store(store, HashScheme(3))
        keys = [
            K("transactions.inventory.a32"),
            K("transactions.inventory.a34"),
            K("transactions.inventory.a33"),
        ]
        plain = {obj.key: obj.value for obj in store.multi_get(keys)}
        routed = sharded.multi_get(keys)
        assert [obj.key for obj in routed] == keys  # first-occurrence order
        assert {obj.key: obj.value for obj in routed} == plain
        assert sharded.stats.multi_gets == 1

    def test_get_value_routes_under_hash(self, polystore):
        store = polystore.database("catalogue")
        sharded = partition_store(store, HashScheme(4))
        assert sharded.get_value("albums", "d1")["title"] == "Wish"
        with pytest.raises(KeyNotFoundError):
            sharded.get_value("albums", "nope")

    def test_get_value_probes_under_range(self, polystore):
        store = polystore.database("catalogue")
        sharded = partition_store(store, RangeScheme(2, token_field="year"))
        assert sharded.get_value("albums", "d2")["title"] == "Doolittle"
        with pytest.raises(KeyNotFoundError):
            sharded.get_value("albums", "nope")

    def test_kv_mget_splits_exactly_under_hash(self, polystore):
        store = polystore.database("discount")
        sharded = partition_store(store, HashScheme(2))
        query = ("mget", ["k1:cure:wish", "k2:pixies:doolittle"])
        plain = {obj.key for obj in store.execute(query)}
        assert {obj.key for obj in sharded.execute(query)} == plain
        targets, pruned = sharded.route_scan(("mget", ["k1:cure:wish"]))
        assert len(targets) == 1
        assert len(pruned) == 1

    def test_execute_counts_scanned_and_pruned(self, polystore):
        store = polystore.database("transactions")
        sharded = partition_store(
            store, RangeScheme(2, token_field="price")
        )
        # Window (1, 2) sits below every boundary: only shard 0 can
        # answer, shard 1 is provably prunable.
        sharded.execute("SELECT * FROM inventory WHERE price >= 1 AND price < 2")
        assert sharded.partitions_scanned_total == 1
        assert sharded.partitions_pruned_total == 1

    def test_range_scan_prunes_partitions(self):
        polystore = make_mini_polystore()
        store = polystore.database("catalogue")
        sharded = partition_store(store, RangeScheme(2, token_field="year"))
        query = {
            "collection": "albums",
            "filter": {"year": {"$gte": 1900, "$lt": 1991}},
        }
        results = sharded.execute(query)
        assert {obj.value["title"] for obj in results} == {"Doolittle"}
        assert sharded.partitions_pruned_total >= 1

    def test_sql_writes_rejected(self, polystore):
        store = polystore.database("transactions")
        sharded = partition_store(store, HashScheme(2))
        with pytest.raises(QueryError):
            sharded.execute("DELETE FROM inventory")

    def test_scan_results_match_unsharded(self, polystore):
        store = polystore.database("transactions")
        sharded = partition_store(store, HashScheme(3))
        query = "SELECT * FROM inventory WHERE name LIKE '%i%'"
        assert {obj.key for obj in sharded.execute(query)} == {
            obj.key for obj in store.execute(query)
        }

    def test_graph_split_keeps_colocated_edges_and_counts_cut(self, polystore):
        store = polystore.database("similar")
        sharded = partition_store(store, HashScheme(2))
        per_shard_edges = sum(
            len(shard._edges) for shard in sharded.shards
        )
        assert per_shard_edges + sharded.cut_edges == len(store._edges)
        report = sharded.describe_sharding()
        assert report["engine"] == "graph"
        assert sum(report["objects_per_shard"]) == store.count_objects()

    def test_explain_plan_reports_fanout(self, polystore):
        store = polystore.database("transactions")
        sharded = partition_store(store, HashScheme(2))
        plan = sharded._explain_plan("SELECT * FROM inventory")
        assert plan["access_path"] == "sharded_fanout"
        assert plan["scanned_partitions"] == [0, 1]
        assert len(plan["per_shard"]) == 2

    def test_shard_count_must_match_scheme(self, polystore):
        store = polystore.database("discount")
        shards = partition_store(store, HashScheme(2)).shards
        with pytest.raises(ConfigurationError):
            ShardedStore(shards, HashScheme(3))

    def test_shard_polystore_covers_every_database(self, polystore):
        sharded = shard_polystore(polystore, shards=2, placement="hash")
        assert set(sharded.databases) == set(polystore.databases)
        for name, store in sharded.databases.items():
            assert store.sharded
            assert store.database_name == name
            assert store.count_objects() == (
                polystore.database(name).count_objects()
            )


class TestRouting:
    def test_hash_routes_each_key_to_one_shard(self, polystore):
        sharded = partition_store(
            polystore.database("transactions"), HashScheme(4)
        )
        keys = [K("transactions.inventory.a32"), K("transactions.inventory.a33")]
        routing = sharded.route_keys(keys)
        assert routing.placement == "hash"
        assert routing.per_key_fanout == 1.0
        assert sorted(routing.scanned + routing.pruned) == [0, 1, 2, 3]

    def test_range_routes_probe_every_shard(self, polystore):
        sharded = partition_store(
            polystore.database("transactions"),
            RangeScheme(2, token_field="price"),
        )
        routing = sharded.route_keys([K("transactions.inventory.a32")])
        assert routing.fanout == 2
        assert routing.pruned == []
        assert routing.per_key_fanout == 2.0

    def test_empty_key_list_prunes_everything(self, polystore):
        sharded = partition_store(
            polystore.database("transactions"), HashScheme(2)
        )
        routing = sharded.route_keys([])
        assert routing.fanout == 0
        assert routing.pruned == [0, 1]


# -- sharded A' index --------------------------------------------------------


def _neighbor_sets(index, keys):
    return {
        key: {
            (n.key, n.type, round(n.probability, 12))
            for n in index.neighbors(key)
        }
        for key in keys
    }


class TestShardedAIndex:
    def test_insertion_matches_plain_aindex(self):
        plain = AIndex()
        sharded = ShardedAIndex(shards=3)
        for relation in (
            PRelation.identity(K("a.c.1"), K("b.c.2"), 0.9),
            PRelation.identity(K("b.c.2"), K("c.c.3"), 0.8),
            PRelation.matching(K("a.c.1"), K("d.c.4"), 0.7),
            PRelation.matching(K("c.c.3"), K("e.c.5"), 0.6),
        ):
            plain.add(relation)
            sharded.add(relation)
        keys = set(plain.nodes())
        assert set(sharded.nodes()) == keys
        assert _neighbor_sets(sharded, keys) == _neighbor_sets(plain, keys)
        assert sharded.edge_count() == plain.edge_count()
        assert sharded.node_count() == plain.node_count()

    def test_shard_aindex_copies_existing_index(self):
        plain = make_mini_aindex()
        sharded = shard_aindex(plain, shards=4)
        keys = set(plain.nodes())
        assert set(sharded.nodes()) == keys
        assert _neighbor_sets(sharded, keys) == _neighbor_sets(plain, keys)
        assert sharded.edge_count() == plain.edge_count()

    def test_cross_edges_record_both_owners(self):
        sharded = shard_aindex(make_mini_aindex(), shards=4)
        for (a, b), (shard_a, shard_b) in sharded.cross_edges().items():
            assert sharded.shard_of(a) == shard_a
            assert sharded.shard_of(b) == shard_b
            assert shard_a != shard_b
        partition_total = sum(sharded.partition_node_counts())
        assert partition_total == sharded.node_count()

    def test_owning_shards_cover_home_and_stubs(self):
        sharded = shard_aindex(make_mini_aindex(), shards=4)
        key = K("catalogue.albums.d1")
        owners = sharded.owning_shards(key)
        assert sharded.shard_of(key) in owners
        for neighbor in sharded.neighbors(key):
            assert sharded.shard_of(neighbor.key) in owners

    def test_remove_object_clears_stubs_and_cross_entries(self):
        sharded = shard_aindex(make_mini_aindex(), shards=4)
        key = K("catalogue.albums.d1")
        neighbors = [n.key for n in sharded.neighbors(key)]
        removed = sharded.remove_object(key)
        assert removed == len(neighbors)
        assert key not in sharded
        for other in neighbors:
            assert key not in {n.key for n in sharded.neighbors(other)}
        for pair in sharded.cross_edges():
            assert key not in pair

    def test_frozen_routes_like_live_index(self):
        sharded = shard_aindex(make_mini_aindex(), shards=3)
        frozen = sharded.frozen()
        assert frozen is sharded.frozen()  # cached per generation
        for key in sharded.nodes():
            assert {
                (n.key, n.type, n.probability) for n in frozen.neighbors(key)
            } == {(n.key, n.type, n.probability) for n in sharded.neighbors(key)}
            assert frozen.degree(key) == sharded.degree(key)
        assert frozen.node_count() == sharded.node_count()
        assert frozen.edge_count() == sharded.edge_count()
        assert set(frozen.nodes()) == set(sharded.nodes())

    def test_frozen_is_immutable(self):
        frozen = shard_aindex(make_mini_aindex(), shards=2).frozen()
        with pytest.raises(TypeError):
            frozen.add(PRelation.identity(K("a.b.c"), K("d.e.f"), 0.5))
        with pytest.raises(TypeError):
            frozen.remove_object(K("a.b.c"))

    def test_copy_is_independent(self):
        sharded = shard_aindex(make_mini_aindex(), shards=2)
        replica = sharded.copy()
        replica.remove_object(K("catalogue.albums.d1"))
        assert K("catalogue.albums.d1") in sharded


# -- wiring ------------------------------------------------------------------


class TestWiring:
    def test_registry_picks_shard_connector(self):
        polystore = shard_polystore(make_mini_polystore(), shards=2)
        quepa = Quepa(polystore, shard_aindex(make_mini_aindex(), shards=2))
        connector = quepa.registry.connector("transactions")
        assert isinstance(connector, ShardConnector)

    def test_plain_store_keeps_plain_connector(self, polystore):
        quepa = Quepa(polystore, make_mini_aindex())
        connector = quepa.registry.connector("transactions")
        assert type(connector) is Connector

    def test_explain_reports_shard_routing(self):
        polystore = shard_polystore(make_mini_polystore(), shards=2)
        quepa = Quepa(polystore, shard_aindex(make_mini_aindex(), shards=2))
        report = quepa.explain(
            "transactions",
            "SELECT * FROM inventory WHERE name LIKE '%wish%'",
            level=1,
        )
        shardings = [
            entry["sharding"]
            for entry in report["execution"]["per_database"].values()
            if "sharding" in entry
        ]
        assert shardings, "no sharded fetch surfaced in EXPLAIN"
        for sharding in shardings:
            assert sharding["placement"] == "hash"
            assert sharding["shards"] == 2
            assert sharding["fanout"] >= 1


# -- zipfian load skew -------------------------------------------------------


class _StubServer:
    def search(self, *args, **kwargs):  # pragma: no cover - never driven
        raise AssertionError("planning must not touch the server")


class _StubWorkload:
    class bundle:
        databases = [("transactions", None)]

    def query(self, database, size, variant=0):
        class Q:
            pass

        q = Q()
        q.query = ("variant", variant)
        return q


class TestZipfSkew:
    def test_zero_skew_keeps_legacy_scripts(self):
        legacy = LoadGenerator(
            _StubServer(), _StubWorkload(), databases=["transactions"], seed=7
        )
        skewless = LoadGenerator(
            _StubServer(), _StubWorkload(), databases=["transactions"],
            seed=7, zipf_s=0.0,
        )
        assert legacy.plan_for_client(0, 50) == skewless.plan_for_client(0, 50)

    def test_skew_concentrates_on_low_ranks(self):
        generator = LoadGenerator(
            _StubServer(), _StubWorkload(), databases=["transactions"],
            seed=7, zipf_s=1.5, zipf_variants=16,
        )
        script = generator.plan_for_client(0, 400)
        variants = [planned.query[1] for planned in script]
        assert all(0 <= v < 16 for v in variants)
        hottest = sum(1 for v in variants if v == 0)
        # Zipf(1.5) over 16 ranks gives rank 0 ~59% of the mass.
        assert hottest > len(variants) * 0.4
        assert len(set(variants)) > 1

    def test_deterministic_per_seed(self):
        def plan():
            return LoadGenerator(
                _StubServer(), _StubWorkload(), databases=["transactions"],
                seed=11, zipf_s=1.1,
            ).plan_for_client(2, 64)

        assert plan() == plan()

    def test_validation(self):
        with pytest.raises(ValueError):
            LoadGenerator(
                _StubServer(), _StubWorkload(), databases=["transactions"],
                zipf_s=-0.1,
            )
        with pytest.raises(ValueError):
            LoadGenerator(
                _StubServer(), _StubWorkload(), databases=["transactions"],
                zipf_variants=0,
            )
