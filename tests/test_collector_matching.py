"""Tests for pairwise matching, thresholds and the local-dedup rule."""

import pytest

from repro.collector.comparators import ExactComparator, JaroWinklerComparator
from repro.collector.matching import (
    AttributeRule,
    PairwiseMatcher,
    enforce_local_dedup,
)
from repro.model.objects import DataObject, GlobalKey
from repro.model.prelations import PRelation, RelationType


def obj(db: str, key: str, **fields) -> DataObject:
    return DataObject(GlobalKey(db, "c", key), fields)


def simple_matcher(identity=0.9, matching=0.6) -> PairwiseMatcher:
    return PairwiseMatcher(
        [AttributeRule("title", "title", JaroWinklerComparator())],
        identity_threshold=identity,
        matching_threshold=matching,
    )


class TestScoring:
    def test_identical_titles_score_one(self):
        matcher = simple_matcher()
        assert matcher.score(
            obj("a", "1", title="Wish"), obj("b", "2", title="Wish")
        ) == pytest.approx(1.0)

    def test_weighted_mean(self):
        matcher = PairwiseMatcher(
            [
                AttributeRule("x", "x", ExactComparator(), weight=3.0),
                AttributeRule("y", "y", ExactComparator(), weight=1.0),
            ]
        )
        score = matcher.score(obj("a", "1", x=1, y=1), obj("b", "2", x=1, y=2))
        assert score == pytest.approx(0.75)

    def test_rules_with_absent_fields_skipped(self):
        matcher = PairwiseMatcher(
            [
                AttributeRule("title", "title", ExactComparator()),
                AttributeRule("price", "price", ExactComparator()),
            ]
        )
        score = matcher.score(
            obj("a", "1", title="Wish"), obj("b", "2", title="Wish")
        )
        assert score == 1.0  # price rule skipped on both-absent

    def test_no_shared_evidence_scores_zero(self):
        matcher = simple_matcher()
        assert matcher.score(obj("a", "1", other=1), obj("b", "2", price=2)) == 0.0

    def test_requires_rules(self):
        with pytest.raises(ValueError):
            PairwiseMatcher([])

    def test_threshold_ordering_validated(self):
        with pytest.raises(ValueError):
            simple_matcher(identity=0.5, matching=0.8)


class TestDecisions:
    def test_identity_above_high_threshold(self):
        decision = simple_matcher().decide(
            obj("a", "1", title="Wish"), obj("b", "2", title="Wish")
        )
        assert decision.relation.type is RelationType.IDENTITY

    def test_matching_between_thresholds(self):
        decision = simple_matcher().decide(
            obj("a", "1", title="Queen Dead"),
            obj("b", "2", title="Queen Bees Live"),
        )
        assert decision.relation is not None
        assert decision.relation.type is RelationType.MATCHING

    def test_nothing_below_low_threshold(self):
        decision = simple_matcher().decide(
            obj("a", "1", title="Wish"), obj("b", "2", title="Zanzibar!")
        )
        assert decision.relation is None

    def test_scalar_objects_compared_by_value(self):
        matcher = PairwiseMatcher(
            [AttributeRule("value", "value", ExactComparator())]
        )
        left = DataObject(GlobalKey("a", "c", "1"), "40%")
        right = DataObject(GlobalKey("b", "c", "2"), "40%")
        assert matcher.decide(left, right).relation.type is RelationType.IDENTITY


class TestLocalDedup:
    def key(self, db, name):
        return GlobalKey(db, "c", name)

    def test_conflicting_identities_keep_strongest(self):
        """Two same-db objects cannot both be identical to one target."""
        target = self.key("dbB", "t")
        strong = PRelation.identity(self.key("dbA", "x"), target, 0.95)
        weak = PRelation.identity(self.key("dbA", "y"), target, 0.91)
        kept = enforce_local_dedup([strong, weak])
        assert strong in kept
        assert weak not in kept

    def test_identities_to_different_targets_all_kept(self):
        one = PRelation.identity(self.key("dbA", "x"), self.key("dbB", "t1"), 0.95)
        two = PRelation.identity(self.key("dbA", "y"), self.key("dbB", "t2"), 0.91)
        assert set(enforce_local_dedup([one, two])) == {one, two}

    def test_matchings_unaffected(self):
        target = self.key("dbB", "t")
        m1 = PRelation.matching(self.key("dbA", "x"), target, 0.7)
        m2 = PRelation.matching(self.key("dbA", "y"), target, 0.8)
        assert set(enforce_local_dedup([m1, m2])) == {m1, m2}

    def test_match_pairs_applies_dedup(self):
        matcher = simple_matcher()
        target = obj("dbB", "t", title="Wish")
        clone1 = obj("dbA", "x", title="Wish")
        clone2 = obj("dbA", "y", title="Wish!")
        relations = matcher.match_pairs([(clone1, target), (clone2, target)])
        identities = [
            r for r in relations if r.type is RelationType.IDENTITY
        ]
        assert len(identities) == 1
