"""Tests for the C4.5-style classifier."""

import random

import pytest

from repro.errors import NotTrainedError, TrainingError
from repro.ml import C45Tree, Example


def and_examples() -> list[Example]:
    """Label 'yes' iff a AND b — needs a two-level tree.

    (XOR is deliberately not used: its single-feature information gain
    is exactly zero, so greedy C4.5 — ours and Weka's — cannot split it.)
    """
    data = []
    for a in (0, 1):
        for b in (0, 1):
            for __ in range(6):
                data.append(
                    Example({"a": a, "b": b}, "yes" if a and b else "no")
                )
    return data


def categorical_examples() -> list[Example]:
    data = []
    for deployment in ("centralized", "distributed"):
        for size in (10, 100, 1000, 10000):
            label = "batch" if deployment == "distributed" else (
                "sequential" if size <= 100 else "outer"
            )
            for __ in range(3):
                data.append(
                    Example({"deployment": deployment, "size": size}, label)
                )
    return data


class TestTraining:
    def test_learns_conjunction(self):
        tree = C45Tree(min_leaf=1).fit(and_examples())
        assert tree.predict({"a": 1, "b": 1}) == "yes"
        assert tree.predict({"a": 0, "b": 1}) == "no"
        assert tree.accuracy(and_examples()) == 1.0

    def test_learns_mixed_categorical_numeric(self):
        tree = C45Tree(min_leaf=1).fit(categorical_examples())
        assert tree.predict({"deployment": "distributed", "size": 500}) == "batch"
        assert tree.predict({"deployment": "centralized", "size": 50}) == "sequential"
        assert tree.predict({"deployment": "centralized", "size": 5000}) == "outer"

    def test_pure_training_set_is_single_leaf(self):
        examples = [Example({"x": i}, "same") for i in range(10)]
        tree = C45Tree().fit(examples)
        assert tree.depth() == 0
        assert tree.predict({"x": 99}) == "same"

    def test_max_depth_respected(self):
        rng = random.Random(0)
        examples = [
            Example({"x": rng.random(), "y": rng.random()},
                    rng.choice(["a", "b"]))
            for __ in range(200)
        ]
        tree = C45Tree(max_depth=2, prune=False).fit(examples)
        assert tree.depth() <= 2

    def test_non_string_targets_rejected(self):
        with pytest.raises(TrainingError):
            C45Tree().fit([Example({"x": 1}, 42)])

    def test_empty_training_set_rejected(self):
        with pytest.raises(TrainingError):
            C45Tree().fit([])


class TestPrediction:
    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            C45Tree().predict({"x": 1})

    def test_unseen_category_falls_to_majority(self):
        tree = C45Tree(min_leaf=1).fit(categorical_examples())
        prediction = tree.predict({"deployment": "lunar", "size": 10})
        assert prediction in {"batch", "sequential", "outer"}

    def test_missing_feature_falls_to_majority(self):
        tree = C45Tree(min_leaf=1).fit(and_examples())
        assert tree.predict({}) in {"yes", "no"}

    def test_predict_many(self):
        tree = C45Tree(min_leaf=1).fit(and_examples())
        rows = [{"a": 0, "b": 0}, {"a": 1, "b": 1}]
        assert tree.predict_many(rows) == ["no", "yes"]


class TestPruning:
    def test_pruning_shrinks_noise_fit(self):
        """Pure-noise labels should prune toward a trivial tree."""
        rng = random.Random(7)
        examples = [
            Example({"x": rng.random()}, rng.choice(["a", "b"]))
            for __ in range(100)
        ]
        unpruned = C45Tree(prune=False, min_leaf=1).fit(examples)
        pruned = C45Tree(prune=True, min_leaf=1).fit(examples)
        assert pruned.depth() <= unpruned.depth()

    def test_pruning_preserves_real_signal(self):
        tree = C45Tree(prune=True, min_leaf=1).fit(and_examples())
        assert tree.accuracy(and_examples()) == 1.0


class TestInspection:
    def test_to_text_renders_splits(self):
        tree = C45Tree(min_leaf=1).fit(categorical_examples())
        text = tree.to_text()
        assert "deployment" in text or "size" in text
        assert "->" in text

    def test_to_text_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            C45Tree().to_text()

    def test_accuracy_empty_is_zero(self):
        tree = C45Tree(min_leaf=1).fit(and_examples())
        assert tree.accuracy([]) == 0.0
