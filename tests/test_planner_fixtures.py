"""Planner regression table: picks and cost orderings stay pinned.

tests/fixtures/planner/cases.json records, for a canonical bundle, which
strategy the planner must choose for each query and the full ascending
cost ordering of the admissible candidates. Everything in the stack is
deterministic — generator, A' index, analytic cost formulas — so any
drift here is a real behaviour change of the planner, not noise. After
an *intentional* cost-model change, regenerate the table by re-running
each case through ``FederatedEngine.candidates`` and reviewing the diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.planner import FederatedEngine, LogicalQuery
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony

FIXTURE = Path(__file__).parent / "fixtures" / "planner" / "cases.json"

TABLE = json.loads(FIXTURE.read_text())
CASES = TABLE["cases"]


@pytest.fixture(scope="module")
def fixture_bundle():
    spec = TABLE["bundle"]
    return build_polyphony(
        stores=spec["stores"],
        scale=PolystoreScale(n_albums=spec["n_albums"]),
        seed=spec["seed"],
    )


def run_case(bundle, case):
    engine = FederatedEngine(
        bundle.polystore,
        bundle.aindex,
        memory_budget=case["memory_budget"],
    )
    query = QueryWorkload(bundle).query(
        case["database"], case["size"], variant=case["variant"]
    )
    targets = case["targets"]
    logical = LogicalQuery(
        database=query.database,
        query=query.query,
        level=case["level"],
        targets=tuple(targets) if targets else None,
    )
    return engine.candidates(logical)


@pytest.mark.parametrize("case", CASES, ids=[c["name"] for c in CASES])
def test_chosen_strategy_pinned(fixture_bundle, case):
    ranked, __ = run_case(fixture_bundle, case)
    assert ranked[0][1].strategy == case["chosen"]


@pytest.mark.parametrize("case", CASES, ids=[c["name"] for c in CASES])
def test_cost_ordering_pinned(fixture_bundle, case):
    ranked, rejected = run_case(fixture_bundle, case)
    assert [e.strategy for __, e in ranked] == case["cost_order"]
    assert sorted(r["strategy"] for r in rejected) == case["inadmissible"]


@pytest.mark.parametrize("case", CASES, ids=[c["name"] for c in CASES])
def test_estimates_strictly_ordered(fixture_bundle, case):
    """The recorded ordering reflects genuinely ascending totals."""
    ranked, __ = run_case(fixture_bundle, case)
    totals = [e.total for __, e in ranked]
    assert totals == sorted(totals)
    assert all(total > 0 for total in totals)


def test_table_covers_every_store_kind(fixture_bundle):
    """The mix exercises a seed query on all four engine kinds."""
    covered = {case["database"] for case in CASES}
    assert covered >= {"catalogue", "transactions", "similar", "discount"}


def test_table_has_an_inadmissible_case():
    assert any(case["inadmissible"] for case in CASES)
