"""Tests for the three middleware baselines (Fig 13 systems)."""

import pytest

from repro.middleware import EtlWorkflow, FederatedMiddleware, MultiModelStore
from repro.network import centralized_profile
from repro.workloads import QueryWorkload


@pytest.fixture
def env(seven_store_bundle):
    bundle = seven_store_bundle
    profile = centralized_profile(bundle.database_names())
    workload = QueryWorkload(bundle)
    return bundle, profile, workload


BIG_BUDGET = 10_000_000


class TestFederated:
    def test_mode_validated(self, env):
        bundle, profile, __ = env
        with pytest.raises(ValueError):
            FederatedMiddleware(bundle, profile, mode="quantum")

    def test_aug_answers_reachable_objects(self, env):
        bundle, profile, workload = env
        system = FederatedMiddleware(
            bundle, profile, mode="augmented", memory_budget=BIG_BUDGET
        )
        result = system.run(workload.query("catalogue", 20), level=0)
        assert not result.out_of_memory
        assert result.answer_size > 20
        assert result.elapsed > 0

    def test_redis_objects_unreachable_through_meta(self, env):
        """The paper: Metamodel does not support Redis."""
        bundle, profile, workload = env
        system = FederatedMiddleware(
            bundle, profile, mode="augmented", memory_budget=BIG_BUDGET
        )
        query = workload.query("catalogue", 20)
        result = system.run(query, level=0)
        # QUEPA reaches one discount object per seed; META cannot.
        from repro.core import Quepa

        quepa = Quepa(bundle.polystore, bundle.aindex, profile=profile)
        answer = quepa.augmented_search(query.database, query.query, level=0)
        assert result.answer_size < len(answer)

    def test_kv_target_query_rejected(self, env):
        bundle, profile, workload = env
        system = FederatedMiddleware(bundle, profile, memory_budget=BIG_BUDGET)
        with pytest.raises(ValueError):
            system.run(workload.query("discount", 10))

    def test_native_slower_than_augmented(self, env):
        """META-NAT pulls collections; META-AUG uses the index."""
        bundle, profile, workload = env
        query = workload.query("catalogue", 20)
        nat = FederatedMiddleware(
            bundle, profile, mode="native", memory_budget=BIG_BUDGET
        ).run(query)
        aug = FederatedMiddleware(
            bundle, profile, mode="augmented", memory_budget=BIG_BUDGET
        ).run(query)
        assert nat.elapsed > aug.elapsed

    def test_native_ooms_on_small_budget(self, env):
        bundle, profile, workload = env
        system = FederatedMiddleware(
            bundle, profile, mode="native", memory_budget=500
        )
        result = system.run(workload.query("catalogue", 100))
        assert result.out_of_memory
        assert result.marker == "X"
        assert result.footprint > 500


class TestEtl:
    def test_startup_dominates_small_queries(self, env):
        bundle, profile, workload = env
        system = EtlWorkflow(bundle, profile, memory_budget=BIG_BUDGET)
        result = system.run(workload.query("catalogue", 10))
        from repro.middleware.etl import STARTUP_COST

        assert result.elapsed >= STARTUP_COST

    def test_per_record_cost_gives_steep_slope(self, env):
        bundle, profile, workload = env
        system = EtlWorkflow(bundle, profile, memory_budget=BIG_BUDGET)
        small = system.run(workload.query("catalogue", 10))
        large = system.run(workload.query("catalogue", 100))
        assert large.elapsed > small.elapsed

    def test_streams_instead_of_ooming(self, env):
        bundle, profile, workload = env
        system = EtlWorkflow(bundle, profile, memory_budget=100)
        result = system.run(workload.query("catalogue", 50))
        assert not result.out_of_memory


class TestMultiModel:
    def test_cold_run_pays_warmup(self, env):
        bundle, profile, workload = env
        system = MultiModelStore(
            bundle, profile, mode="native", memory_budget=BIG_BUDGET
        )
        query = workload.query("catalogue", 20)
        cold = system.run(query)
        warm = system.run(query)
        assert cold.elapsed > warm.elapsed * 2

    def test_reset_cache_returns_to_cold(self, env):
        bundle, profile, workload = env
        system = MultiModelStore(
            bundle, profile, mode="augmented", memory_budget=BIG_BUDGET
        )
        query = workload.query("catalogue", 20)
        cold = system.run(query)
        system.reset_cache()
        again = system.run(query)
        assert again.elapsed == pytest.approx(cold.elapsed, rel=0.2)

    def test_ooms_when_polystore_exceeds_budget(self, env):
        bundle, profile, workload = env
        system = MultiModelStore(bundle, profile, memory_budget=1000)
        result = system.run(workload.query("catalogue", 20))
        assert result.out_of_memory

    def test_relational_target_rejected(self, env):
        """The paper: ArangoDB import does not cover relational DBs."""
        bundle, profile, workload = env
        system = MultiModelStore(bundle, profile, memory_budget=BIG_BUDGET)
        with pytest.raises(ValueError):
            system.run(workload.query("transactions", 10))

    def test_relational_objects_not_in_answer(self, env):
        bundle, profile, workload = env
        system = MultiModelStore(bundle, profile, memory_budget=BIG_BUDGET)
        query = workload.query("catalogue", 20)
        result = system.run(query)
        from repro.core import Quepa

        quepa = Quepa(bundle.polystore, bundle.aindex, profile=profile)
        full = quepa.augmented_search(query.database, query.query, level=0)
        assert result.answer_size < len(full)

    def test_memory_pressure_slows_warm_queries(self, env):
        bundle, profile, workload = env
        query = workload.query("catalogue", 50)
        roomy = MultiModelStore(
            bundle, profile, mode="native", memory_budget=BIG_BUDGET
        )
        tight = MultiModelStore(
            bundle, profile, mode="native",
            memory_budget=int(BIG_BUDGET / 2000),
        )
        roomy.run(query)
        tight.run(query)
        warm_roomy = roomy.run(query)
        warm_tight = tight.run(query)
        if not warm_tight.out_of_memory:
            assert warm_tight.elapsed > warm_roomy.elapsed
