"""Tests for GlobalKey, DataObject and AugmentedObject."""

import pytest

from repro.errors import InvalidGlobalKeyError
from repro.model.objects import AugmentedObject, DataObject, GlobalKey


class TestGlobalKey:
    def test_parse_three_parts(self):
        key = GlobalKey.parse("transactions.sales.s8")
        assert key.database == "transactions"
        assert key.collection == "sales"
        assert key.key == "s8"

    def test_parse_key_with_dots(self):
        """Local keys may contain dots (Redis-style keys)."""
        key = GlobalKey.parse("discount.drop.k1.cure.wish")
        assert key.database == "discount"
        assert key.collection == "drop"
        assert key.key == "k1.cure.wish"

    def test_str_round_trip(self):
        key = GlobalKey("db", "coll", "object:1")
        assert GlobalKey.parse(str(key)) == key

    def test_parse_too_few_parts(self):
        with pytest.raises(InvalidGlobalKeyError):
            GlobalKey.parse("db.only")

    def test_empty_database_rejected(self):
        with pytest.raises(InvalidGlobalKeyError):
            GlobalKey("", "c", "k")

    def test_empty_collection_rejected(self):
        with pytest.raises(InvalidGlobalKeyError):
            GlobalKey("d", "", "k")

    def test_empty_key_rejected(self):
        with pytest.raises(InvalidGlobalKeyError):
            GlobalKey("d", "c", "")

    def test_database_with_separator_rejected(self):
        with pytest.raises(InvalidGlobalKeyError):
            GlobalKey("d.b", "c", "k")

    def test_hashable_and_equal(self):
        a = GlobalKey("d", "c", "k")
        b = GlobalKey.parse("d.c.k")
        assert a == b
        assert len({a, b}) == 1


class TestDataObject:
    def test_equality_is_by_key(self):
        key = GlobalKey("d", "c", "k")
        assert DataObject(key, {"x": 1}) == DataObject(key, {"x": 2})

    def test_hash_is_by_key(self):
        key = GlobalKey("d", "c", "k")
        objects = {DataObject(key, 1), DataObject(key, 2)}
        assert len(objects) == 1

    def test_not_equal_to_other_types(self):
        assert DataObject(GlobalKey("d", "c", "k")) != "d.c.k"

    def test_with_probability_returns_copy(self):
        obj = DataObject(GlobalKey("d", "c", "k"), {"x": 1})
        weighted = obj.with_probability(0.5)
        assert weighted.probability == 0.5
        assert obj.probability == 1.0
        assert weighted.value == obj.value

    def test_fields_of_mapping_value(self):
        obj = DataObject(GlobalKey("d", "c", "k"), {"a": 1, "b": "two"})
        assert dict(obj.fields()) == {"a": 1, "b": "two"}

    def test_fields_of_scalar_value(self):
        obj = DataObject(GlobalKey("d", "c", "k"), "40%")
        assert dict(obj.fields()) == {"value": "40%"}


class TestAugmentedObject:
    def test_probability_delegates_to_object(self):
        key = GlobalKey("d", "c", "k")
        entry = AugmentedObject(DataObject(key, None, probability=0.42))
        assert entry.probability == 0.42
        assert entry.key == key

    def test_path_defaults_empty(self):
        entry = AugmentedObject(DataObject(GlobalKey("d", "c", "k")))
        assert entry.path == ()
        assert entry.source is None
