"""Cross-module integration scenarios."""

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.core.promotion import PromotionPolicy
from repro.network import (
    RealRuntime,
    centralized_profile,
    distributed_profile,
)
from repro.optimizer import AdaptiveOptimizer, RunLogRepository
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony


class TestFullPipeline:
    def test_every_engine_round_trip(self, seven_store_bundle):
        """Native query -> augment -> fetch across all four engines."""
        bundle = seven_store_bundle
        quepa = Quepa(bundle.polystore, bundle.aindex)
        workload = QueryWorkload(bundle)
        for query in workload.base_queries(15):
            answer = quepa.augmented_search(query.database, query.query)
            assert len(answer.originals) == 15
            # Level 0 reaches the identity clique + matchings.
            assert len(answer.augmented) >= 15 * (bundle.store_count - 1)
            touched = {k.database for k in answer.augmented_keys()}
            assert len(touched) == bundle.store_count - 1 or (
                query.database in touched
            )

    def test_augmenters_agree_end_to_end(self, seven_store_bundle):
        bundle = seven_store_bundle
        workload = QueryWorkload(bundle)
        query = workload.query("catalogue", 25)
        reference = None
        for augmenter in (
            "sequential", "batch", "inner", "outer", "outer_batch",
            "outer_inner",
        ):
            quepa = Quepa(bundle.polystore, bundle.aindex)
            config = AugmentationConfig(
                augmenter=augmenter, batch_size=16, threads_size=4,
                cache_size=0,
            )
            answer = quepa.augmented_search(
                query.database, query.query, level=1, config=config
            )
            signature = sorted(
                (str(e.key), round(e.probability, 9))
                for e in answer.augmented
            )
            if reference is None:
                reference = signature
            assert signature == reference, augmenter

    def test_virtual_and_real_runtimes_agree_on_answers(
        self, seven_store_bundle
    ):
        bundle = seven_store_bundle
        workload = QueryWorkload(bundle)
        query = workload.query("transactions", 20)
        profile = centralized_profile(bundle.database_names())
        config = AugmentationConfig(
            augmenter="outer_batch", batch_size=8, threads_size=8
        )
        virtual = Quepa(bundle.polystore, bundle.aindex, profile=profile)
        real = Quepa(
            bundle.polystore, bundle.aindex, profile=profile,
            runtime=RealRuntime(profile),
        )
        one = virtual.augmented_search(query.database, query.query,
                                       config=config)
        two = real.augmented_search(query.database, query.query,
                                    config=config)
        assert {str(k) for k in one.augmented_keys()} == {
            str(k) for k in two.augmented_keys()
        }

    def test_exploration_promotion_shortcut_end_to_end(self):
        bundle = build_polyphony(4, PolystoreScale(n_albums=30), seed=6)
        quepa = Quepa(
            bundle.polystore,
            bundle.aindex,
            promotion_policy=PromotionPolicy(base=4, min_visits=2),
        )
        workload = QueryWorkload(bundle)
        query = workload.query("transactions", 5)

        def one_walk():
            with quepa.explore(query.database, query.query) as session:
                start = session.results[0].key
                step1 = session.select(start)
                step2 = session.select(step1.links[0].key)
                target = next(
                    link.key
                    for link in step2.links
                    if quepa.aindex.relation(start, link.key) is None
                    and link.key != start
                )
                session.select(target)
                return session.path

        path = one_walk()
        threshold = quepa.paths.policy.threshold(len(path) - 1)
        for __ in range(threshold):
            quepa.record_exploration(path)
        shortcut = quepa.aindex.relation(path[0], path[-1])
        assert shortcut is not None
        # The shortcut now appears in a single augmentation step.
        links = {str(l.key) for l in quepa.augment_object(path[0])}
        assert str(path[-1]) in links

    def test_adaptive_beats_static_sequential_on_big_queries(self):
        bundle = build_polyphony(7, PolystoreScale(n_albums=300), seed=8)
        names = bundle.database_names()
        profile = distributed_profile(names)
        workload = QueryWorkload(bundle)
        logs = RunLogRepository()
        trainer = Quepa(bundle.polystore, bundle.aindex, profile=profile)
        trainer.run_listeners.append(logs)
        configs = [
            AugmentationConfig("sequential", 1, 1, 512),
            AugmentationConfig("batch", 128, 1, 512),
            AugmentationConfig("outer_batch", 128, 8, 512),
        ]
        for size in (10, 80, 250):
            query = workload.query("transactions", size)
            for config in configs:
                trainer.augmented_search(
                    query.database, query.query, config=config
                )
        optimizer = AdaptiveOptimizer(logs)
        optimizer.train()

        tuned = Quepa(
            bundle.polystore, bundle.aindex, profile=profile,
            optimizer=optimizer,
        )
        static = Quepa(bundle.polystore, bundle.aindex, profile=profile)
        unseen = workload.query("transactions", 200, variant=1)
        fast = tuned.augmented_search(unseen.database, unseen.query)
        slow = static.augmented_search(unseen.database, unseen.query)
        assert fast.stats.elapsed < slow.stats.elapsed
        assert fast.stats.augmenter in ("batch", "outer_batch")

    def test_lazy_deletion_propagates_through_search(self):
        bundle = build_polyphony(4, PolystoreScale(n_albums=30), seed=7)
        quepa = Quepa(bundle.polystore, bundle.aindex)
        # Delete a catalogue document behind QUEPA's back.
        victim = bundle.entity_key("catalogue", 0)
        bundle.polystore.database("catalogue").delete_one("albums", victim.key)
        workload = QueryWorkload(bundle)
        query = workload.query("transactions", 5)
        first = quepa.augmented_search(query.database, query.query)
        assert str(victim) not in {str(k) for k in first.augmented_keys()}
        assert victim not in quepa.aindex
        second = quepa.augmented_search(query.database, query.query)
        assert second.stats.missing_objects == 0

    def test_cache_carries_over_between_queries(self, seven_store_bundle):
        bundle = seven_store_bundle
        quepa = Quepa(bundle.polystore, bundle.aindex)
        workload = QueryWorkload(bundle)
        query = workload.query("catalogue", 40)
        config = AugmentationConfig(
            augmenter="sequential", cache_size=100_000
        )
        cold = quepa.augmented_search(query.database, query.query,
                                      config=config)
        warm = quepa.augmented_search(query.database, query.query,
                                      config=config)
        # Even the cold run hits on intra-run overlaps (Section IV-C:
        # "augmented results of the same answer can overlap"); the warm
        # run hits on every planned fetch.
        assert cold.stats.cache_hits < cold.stats.planned_fetches
        assert warm.stats.cache_hits == warm.stats.planned_fetches
        assert warm.stats.elapsed < cold.stats.elapsed
