"""Tests for the cost-based optimizer baseline and SN blocking."""

import pytest

from repro.collector.blocking import SortedNeighborhoodBlocker, TokenBlocker
from repro.core.runlog import QueryFeatures
from repro.model.objects import DataObject, GlobalKey
from repro.optimizer.costbased import AssumedCosts, CostBasedOptimizer


def features(planned=1000, original=100, stores=7, deployment="centralized"):
    return QueryFeatures(
        engine="relational",
        database="transactions",
        level=0,
        original_count=original,
        planned_fetches=planned,
        store_count=stores,
        deployment=deployment,
    )


class TestCostBased:
    def test_picks_batching_for_large_remote_answers(self):
        optimizer = CostBasedOptimizer(
            AssumedCosts(roundtrip_latency=0.2)
        )
        config = optimizer.configure(features(planned=5000), 1024)
        assert config.augmenter in ("batch", "outer_batch")
        assert config.batch_size >= 64

    def test_picks_cheap_strategy_for_tiny_answers(self):
        optimizer = CostBasedOptimizer()
        config = optimizer.configure(features(planned=3, original=1), 1024)
        # Anything lightweight is acceptable for three fetches; the
        # heavyweight strategies must not be picked.
        assert config.augmenter in ("sequential", "batch", "inner")

    def test_estimate_monotone_in_fetches(self):
        optimizer = CostBasedOptimizer()
        from repro.core.augmentation import AugmentationConfig

        config = AugmentationConfig(augmenter="sequential")
        small = optimizer.estimate(features(planned=10), config)
        large = optimizer.estimate(features(planned=1000), config)
        assert large > small

    def test_sequential_estimate_formula(self):
        assumed = AssumedCosts(
            roundtrip_latency=0.1, per_query_overhead=0.0,
            per_object_service=0.0,
        )
        optimizer = CostBasedOptimizer(assumed)
        from repro.core.augmentation import AugmentationConfig

        cost = optimizer.estimate(
            features(planned=10), AugmentationConfig(augmenter="sequential")
        )
        assert cost == pytest.approx(1.0)

    def test_cache_size_passes_through(self):
        optimizer = CostBasedOptimizer()
        config = optimizer.configure(features(), 4321)
        assert config.cache_size == 4321

    def test_quepa_accepts_it_as_optimizer(self, mini_polystore, mini_aindex):
        from repro.core import Quepa

        quepa = Quepa(
            mini_polystore, mini_aindex, optimizer=CostBasedOptimizer()
        )
        answer = quepa.augmented_search(
            "transactions", "SELECT * FROM inventory WHERE name LIKE '%wish%'"
        )
        assert len(answer.augmented) == 3

    def test_wrong_assumptions_change_choices(self):
        """The paper's point: the cost model is only as good as its
        knowledge of each store."""
        believes_fast_network = CostBasedOptimizer(
            AssumedCosts(roundtrip_latency=0.00001, thread_spawn_overhead=0.01)
        )
        believes_slow_network = CostBasedOptimizer(
            AssumedCosts(roundtrip_latency=0.5)
        )
        f = features(planned=2000)
        fast_choice = believes_fast_network.configure(f, 0)
        slow_choice = believes_slow_network.configure(f, 0)
        assert (fast_choice.augmenter, fast_choice.batch_size) != (
            slow_choice.augmenter, slow_choice.batch_size
        )


def make_objects():
    titles = [
        "black dreams", "black dreams deluxe", "quiet rivers",
        "quiet rivers live", "zanzibar nights", "aardvark morning",
    ]
    objects = []
    for index, title in enumerate(titles):
        database = "dbA" if index % 2 == 0 else "dbB"
        objects.append(
            DataObject(GlobalKey(database, "c", f"k{index}"), {"title": title})
        )
    return objects


class TestSortedNeighborhood:
    def test_adjacent_keys_become_candidates(self):
        blocker = SortedNeighborhoodBlocker(window=3)
        pairs = list(blocker.candidate_pairs(make_objects()))
        pair_titles = {
            tuple(sorted((a.value["title"], b.value["title"])))
            for a, b in pairs
        }
        assert ("black dreams", "black dreams deluxe") in pair_titles
        assert ("quiet rivers", "quiet rivers live") in pair_titles

    def test_same_database_pairs_excluded(self):
        blocker = SortedNeighborhoodBlocker(window=6)
        for a, b in blocker.candidate_pairs(make_objects()):
            assert a.key.database != b.key.database

    def test_linear_candidates_vs_quadratic_token_blocks(self):
        """SN's candidate count is linear in n (n x window); token
        blocking is quadratic inside a popular block."""
        objects = [
            DataObject(
                GlobalKey("dbA" if i % 2 == 0 else "dbB", "c", f"k{i}"),
                {"title": f"common tune variation{i:03d}"},
            )
            for i in range(30)
        ]
        sn = len(list(
            SortedNeighborhoodBlocker(window=3).candidate_pairs(objects)
        ))
        token = len(list(
            TokenBlocker(max_block_size=50).candidate_pairs(objects)
        ))
        assert sn <= len(objects) * 2
        assert token > sn

    def test_window_validation(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocker(window=1)

    def test_blocking_key_is_deterministic(self):
        blocker = SortedNeighborhoodBlocker()
        obj = DataObject(
            GlobalKey("dbA", "c", "k"), {"b": "two words", "a": "one"}
        )
        assert blocker.blocking_key(obj) == blocker.blocking_key(obj)
        assert "one" in blocker.blocking_key(obj)
