"""Unit tests of the serving layer: scheduler, server, loadgen, wiring.

Deterministic by construction: tests that need a busy server block the
worker pool on an Event via a stubbed ``serve_search``, so admission
and shedding behaviour does not depend on timing.
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.request

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.errors import (
    RequestDeadlineExceeded,
    ServerBusy,
    TimeoutExceeded,
)
from repro.model import GlobalKey
from repro.network import RealRuntime, centralized_profile
from repro.serving import (
    LoadGenerator,
    QuepaServer,
    ServingConfig,
)
from repro.workloads import PolystoreScale, build_polyphony
from repro.workloads.queries import QueryWorkload

from tests.conftest import make_mini_aindex, make_mini_polystore

DOC_QUERY = {"collection": "albums", "filter": {}}


def make_real_quepa() -> Quepa:
    polystore = make_mini_polystore()
    profile = centralized_profile(list(polystore))
    return Quepa(
        polystore,
        make_mini_aindex(),
        profile=profile,
        runtime=RealRuntime(profile),
    )


class GatedQuepa:
    """Fixture helper: a server whose executions block on an Event."""

    def __init__(self, quepa: Quepa) -> None:
        self.quepa = quepa
        self.gate = threading.Event()
        self.started = threading.Semaphore(0)
        self.calls = 0
        self._lock = threading.Lock()
        self._real = quepa.serve_search
        # Instance attribute shadows the bound method for this Quepa.
        quepa.serve_search = self._gated  # type: ignore[method-assign]

    def _gated(self, *args, **kwargs):
        with self._lock:
            self.calls += 1
        self.started.release()
        assert self.gate.wait(10), "test gate never opened"
        return self._real(*args, **kwargs)


# -- config validation -------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"workers": 0},
        {"queue_capacity": 0},
        {"max_inflight_per_session": 0},
        {"default_deadline": 0.0},
        {"default_deadline": -1.0},
        {"priority_weights": ()},
        {"priority_weights": (("batch", 1),)},
        {"priority_weights": (("interactive", 3), ("interactive", 1))},
        {"priority_weights": (("interactive", 0),)},
        {"admission_deadline_floor": -1.0},
        {"hedge_quantile": 1.5},
        {"hedge_min_observations": 0},
        {"hedge_min_delay": -0.1},
    ],
)
def test_serving_config_rejects_bad_knobs(kwargs):
    with pytest.raises(ValueError):
        ServingConfig(**kwargs)


# -- basic serving -----------------------------------------------------------


def test_search_returns_same_answer_as_direct_call():
    quepa = make_real_quepa()
    with QuepaServer(quepa, ServingConfig(workers=2)) as server:
        served = server.search("alice", "catalogue", DOC_QUERY, level=1)
    direct = quepa.serve_search("catalogue", DOC_QUERY, level=1)
    assert {o.key for o in served.originals} == {
        o.key for o in direct.originals
    }
    assert {a.object.key for a in served.augmented} == {
        a.object.key for a in direct.augmented
    }
    assert not served.stats.degraded


def test_submit_returns_ticket_and_result_blocks():
    quepa = make_real_quepa()
    with QuepaServer(quepa) as server:
        ticket = server.submit_search("s1", "catalogue", DOC_QUERY, level=1)
        answer = ticket.result(timeout=10)
        assert ticket.done()
        assert ticket.status == "completed"
        assert answer.originals


def test_submit_before_start_is_server_busy():
    server = QuepaServer(make_real_quepa())
    with pytest.raises(ServerBusy):
        server.submit_search("s1", "catalogue", DOC_QUERY)


def test_augment_request_kind():
    quepa = make_real_quepa()

    with QuepaServer(quepa) as server:
        links = server.augment("s1", GlobalKey.parse("catalogue.albums.d1"))
    assert links, "d1 has p-relations in the mini index"


# -- admission control / shedding -------------------------------------------


def test_queue_full_sheds_with_server_busy():
    quepa = make_real_quepa()
    gated = GatedQuepa(quepa)
    config = ServingConfig(
        workers=1, queue_capacity=2, max_inflight_per_session=1
    )
    with QuepaServer(quepa, config) as server:
        # One request occupies the worker...
        running = server.submit_search("s1", "catalogue", DOC_QUERY)
        assert gated.started.acquire(timeout=10)
        # ...two fill the queue; the third is shed.
        queued = [
            server.submit_search("s1", "catalogue", DOC_QUERY)
            for _ in range(2)
        ]
        with pytest.raises(ServerBusy):
            server.submit_search("s1", "catalogue", DOC_QUERY)
        gated.gate.set()
        for ticket in [running, *queued]:
            ticket.result(timeout=10)
    totals = server.status()["totals"]
    assert totals["submitted"] == 4
    assert totals["admitted"] == 3
    assert totals["shed"]["queue_full"] == 1
    assert totals["completed"] == 3


def test_deadline_expired_in_queue_is_shed():
    quepa = make_real_quepa()
    gated = GatedQuepa(quepa)
    config = ServingConfig(workers=1, max_inflight_per_session=1)
    with QuepaServer(quepa, config) as server:
        blocker = server.submit_search("s1", "catalogue", DOC_QUERY)
        assert gated.started.acquire(timeout=10)
        # Above the admission floor, so the request is admitted; it
        # then expires while the single worker is still blocked.
        doomed = server.submit_search(
            "s1", "catalogue", DOC_QUERY, deadline=0.05
        )
        time.sleep(0.1)
        gated.gate.set()
        blocker.result(timeout=10)
        with pytest.raises(RequestDeadlineExceeded):
            doomed.result(timeout=10)
        assert doomed.status == "shed"
    totals = server.status()["totals"]
    assert totals["shed"]["deadline"] == 1
    assert totals["completed"] == 1


def test_hopeless_deadline_is_shed_at_admission():
    """A deadline at/under the floor with all workers busy is shed at
    submit time, before consuming a queue slot — and metered as its own
    shed class so the admission ledger still reconciles."""
    quepa = make_real_quepa()
    gated = GatedQuepa(quepa)
    config = ServingConfig(workers=1, max_inflight_per_session=1)
    with QuepaServer(quepa, config) as server:
        blocker = server.submit_search("s1", "catalogue", DOC_QUERY)
        assert gated.started.acquire(timeout=10)
        with pytest.raises(RequestDeadlineExceeded):
            server.submit_search(
                "s1", "catalogue", DOC_QUERY, deadline=1e-9
            )
        gated.gate.set()
        blocker.result(timeout=10)
    totals = server.status()["totals"]
    assert totals["shed"]["deadline_at_admission"] == 1
    assert totals["shed"]["deadline"] == 0
    assert totals["submitted"] == (
        totals["admitted"]
        + totals["shed"]["queue_full"]
        + totals["shed"]["deadline_at_admission"]
    )
    metrics = quepa.obs.metrics
    assert (
        metrics.counter(
            "serving_shed_total", reason="deadline_at_admission"
        ).value
        == 1
    )


def test_default_deadline_applies_to_requests_without_one():
    quepa = make_real_quepa()
    config = ServingConfig(workers=1, default_deadline=1e-9)
    with QuepaServer(quepa, config) as server:
        # Any wall time in the queue exceeds a nanosecond deadline, so
        # the configured default sheds a request that carried none.
        doomed = server.submit_search("s1", "catalogue", DOC_QUERY)
        with pytest.raises(RequestDeadlineExceeded):
            doomed.result(timeout=10)
        assert doomed.status == "shed"
    assert server.status()["totals"]["shed"]["deadline"] == 1


def test_stop_without_drain_sheds_queued_requests_as_stopped():
    """Non-drain stop() meters still-queued requests as shed(stopped):
    their clients get ServerBusy, and the prometheus counter + journal
    carry the distinct reason so the export reconciles."""
    quepa = make_real_quepa()
    gated = GatedQuepa(quepa)
    config = ServingConfig(workers=1, max_inflight_per_session=1)
    server = QuepaServer(quepa, config).start()
    blocker = server.submit_search("s1", "catalogue", DOC_QUERY)
    assert gated.started.acquire(timeout=10)
    queued = server.submit_search("s1", "catalogue", DOC_QUERY)
    # Stop from another thread: it sheds the queued request at once,
    # then blocks joining the worker until the gate opens — so the
    # shed is observed deterministically, before any pickup race.
    stopper = threading.Thread(target=lambda: server.stop(drain=False))
    stopper.start()
    with pytest.raises(ServerBusy):
        queued.result(timeout=10)
    assert queued.status == "shed"
    gated.gate.set()
    stopper.join(timeout=30)
    assert not stopper.is_alive()
    blocker.result(timeout=10)
    totals = server.status()["totals"]
    assert totals["shed"]["stopped"] == 1
    assert totals["failed"] == 0
    assert totals["admitted"] == (
        totals["completed"] + totals["shed"]["stopped"]
    )
    metrics = quepa.obs.metrics
    assert (
        metrics.counter("serving_shed_total", reason="stopped").value == 1
    )
    shed_events = quepa.obs.events.events(kind="request_shed")
    assert any(
        event.attrs.get("reason") == "stopped" for event in shed_events
    )


# -- fairness ----------------------------------------------------------------


def test_inflight_cap_leaves_room_for_other_sessions():
    """A chatty session cannot monopolize the pool: with 2 workers and a
    per-session cap of 1, a second session's request runs while the
    first session still has queued work."""
    quepa = make_real_quepa()
    gated = GatedQuepa(quepa)
    config = ServingConfig(
        workers=2, queue_capacity=16, max_inflight_per_session=1
    )
    with QuepaServer(quepa, config) as server:
        hog_tickets = [
            server.submit_search("hog", "catalogue", DOC_QUERY)
            for _ in range(4)
        ]
        # Only one hog request may start (cap), leaving a free worker.
        assert gated.started.acquire(timeout=10)
        assert not gated.started.acquire(timeout=0.2)
        polite = server.submit_search("polite", "catalogue", DOC_QUERY)
        assert gated.started.acquire(timeout=10), (
            "second session should get the idle worker despite the "
            "hog's queue"
        )
        gated.gate.set()
        polite.result(timeout=10)
        for ticket in hog_tickets:
            ticket.result(timeout=10)
    sessions = server.status()["sessions"]
    assert sessions["hog"]["completed"] == 4
    assert sessions["polite"]["completed"] == 1


# -- observability -----------------------------------------------------------


def test_metrics_and_events_record_admission_and_shedding():
    quepa = make_real_quepa()
    gated = GatedQuepa(quepa)
    config = ServingConfig(
        workers=1, queue_capacity=1, max_inflight_per_session=1
    )
    with QuepaServer(quepa, config) as server:
        blocker = server.submit_search("s1", "catalogue", DOC_QUERY)
        assert gated.started.acquire(timeout=10)
        server.submit_search("s1", "catalogue", DOC_QUERY)
        with pytest.raises(ServerBusy):
            server.submit_search("s1", "catalogue", DOC_QUERY)
        gated.gate.set()
        blocker.result(timeout=10)
        metrics = quepa.obs.metrics
        assert (
            metrics.counter(
                "serving_requests_total", outcome="admitted"
            ).value
            == 2
        )
        assert (
            metrics.counter("serving_shed_total", reason="queue_full").value
            == 1
        )
        kinds = [event.kind for event in quepa.obs.events.events()]
        assert "request_shed" in kinds
    # Latency histogram fed by completions.
    report = server.status()
    assert report["latency_s"]["count"] == report["totals"]["completed"]


def test_status_report_shape():
    quepa = make_real_quepa()
    with QuepaServer(quepa, ServingConfig(workers=2)) as server:
        server.search("s1", "catalogue", DOC_QUERY, level=1)
        report = server.status()
        assert report["running"] is True
        assert report["workers"] == 2
        totals = report["totals"]
        shed = totals["shed"]
        assert totals["submitted"] == (
            totals["admitted"]
            + shed["queue_full"]
            + shed["deadline_at_admission"]
        )
        assert totals["admitted"] == (
            totals["completed"]
            + totals["failed"]
            + shed["deadline"]
            + shed["stopped"]
        )
        assert report["priorities"]["interactive"]["weight"] == 3
        assert report["priorities"]["batch"]["weight"] == 1
        # Real runtime + default coalesce=True: accelerator attached.
        assert report["accelerator"] is not None
        assert "coalesce" in report["accelerator"]
        session = report["sessions"]["s1"]
        assert session["completed"] == 1
        assert session["qps"] >= 0.0
        assert json.dumps(report)  # JSON-ready


def test_failed_request_reports_error_and_counts():
    quepa = make_real_quepa()
    with QuepaServer(quepa) as server:
        ticket = server.submit_search("s1", "nosuchdb", DOC_QUERY)
        with pytest.raises(Exception):
            ticket.result(timeout=10)
        assert ticket.status == "failed"
    assert server.status()["totals"]["failed"] == 1


def test_failed_ticket_result_raises_a_fresh_clone_each_time():
    """``result()`` must never re-raise the stored exception object:
    raising mutates ``__traceback__`` in place, so a second call (or a
    second client sharing the ticket) would see a stale, ever-growing
    traceback. Each call raises a clone chained to the original."""
    quepa = make_real_quepa()
    with QuepaServer(quepa) as server:
        ticket = server.submit_search("s1", "nosuchdb", DOC_QUERY)
        with pytest.raises(Exception) as first:
            ticket.result(timeout=10)
        with pytest.raises(Exception) as second:
            ticket.result(timeout=10)
    stored = ticket._request.error
    assert stored is not None
    assert first.value is not stored
    assert second.value is not stored
    assert first.value is not second.value
    assert type(first.value) is type(stored)
    assert first.value.args == stored.args
    # The clone is chained to the original for debuggability...
    assert first.value.__cause__ is stored
    # ...and raising it never rewrote the stored traceback.
    assert stored.__traceback__ is not first.value.__traceback__


# -- priorities --------------------------------------------------------------


def test_submit_rejects_unknown_priority_class():
    quepa = make_real_quepa()
    with QuepaServer(quepa) as server:
        with pytest.raises(ValueError, match="priority"):
            server.submit_search(
                "s1", "catalogue", DOC_QUERY, priority="bulk"
            )


def test_priority_classes_share_workers_by_weighted_round_robin():
    """With the default 3:1 weights and one worker, queued interactive
    and batch requests are picked in a 3-interactive-then-1-batch
    pattern — batch shares the pool but never starves interactive."""
    quepa = make_real_quepa()
    order: list[str] = []
    lock = threading.Lock()
    gate = threading.Event()
    started = threading.Semaphore(0)
    real = quepa.serve_search

    def tracking(database, query, **kwargs):
        with lock:
            order.append(
                query.get("tag", "blocker")
                if isinstance(query, dict)
                else "?"
            )
        started.release()
        assert gate.wait(10), "test gate never opened"
        return real(database, DOC_QUERY, **kwargs)

    quepa.serve_search = tracking  # type: ignore[method-assign]
    config = ServingConfig(workers=1, max_inflight_per_session=16)
    with QuepaServer(quepa, config) as server:
        blocker = server.submit_search("s1", "catalogue", DOC_QUERY)
        assert started.acquire(timeout=10)
        tickets = []
        for i in range(1, 5):
            tickets.append(
                server.submit_search(
                    "s1", "catalogue",
                    {**DOC_QUERY, "tag": f"i{i}"},
                    priority="interactive",
                )
            )
        for i in range(1, 5):
            tickets.append(
                server.submit_search(
                    "s1", "catalogue",
                    {**DOC_QUERY, "tag": f"b{i}"},
                    priority="batch",
                )
            )
        gate.set()
        blocker.result(timeout=10)
        for ticket in tickets:
            ticket.result(timeout=10)
    assert order[0] == "blocker"
    picked = order[1:]
    # Weighted sweep: 3 interactive turns, then 1 batch turn, until the
    # interactive queue drains, after which batch gets every turn.
    assert picked == ["i1", "i2", "b1", "i3", "i4", "b2", "b3", "b4"]


# -- per-request config on the augment path ----------------------------------


def test_augment_honours_per_request_config():
    """Regression: the scheduler used to drop the computed effective
    config on the augment path, silently ignoring per-request configs
    and deadlines for exploration steps."""
    quepa = make_real_quepa()
    config = AugmentationConfig(timeout_budget=1e-12)
    with QuepaServer(quepa) as server:
        # skip_unavailable defaults to False (strict): an exhausted
        # budget must surface as TimeoutExceeded, not complete happily.
        with pytest.raises(TimeoutExceeded):
            server.augment(
                "s1",
                GlobalKey.parse("catalogue.albums.d1"),
                config=config,
            )


def test_augment_run_passes_effective_config():
    """The deadline folded into the timeout budget reaches
    serve_augment_object (regression: it was computed then dropped)."""
    quepa = make_real_quepa()
    captured = {}

    def fake_augment(key, level=0, config=None, **kwargs):
        captured["config"] = config
        return []

    quepa.serve_augment_object = fake_augment  # type: ignore[method-assign]
    server = QuepaServer(quepa)
    from repro.serving import Request

    request = Request(
        1,
        "s1",
        "augment",
        key=GlobalKey.parse("catalogue.albums.d1"),
        deadline=5.0,
    )
    server.scheduler._run(request, waited=1.0)
    assert captured["config"] is not None
    assert captured["config"].timeout_budget == pytest.approx(4.0)


# -- load generator ----------------------------------------------------------


@pytest.fixture(scope="module")
def loadgen_bundle():
    return build_polyphony(
        stores=4, scale=PolystoreScale(n_albums=40), seed=11
    )


def test_loadgen_scripts_are_deterministic(loadgen_bundle):
    workload = QueryWorkload(loadgen_bundle)
    polystore = loadgen_bundle.polystore
    profile = centralized_profile(list(polystore))
    quepa = Quepa(
        polystore,
        loadgen_bundle.aindex,
        profile=profile,
        runtime=RealRuntime(profile),
    )
    server = QuepaServer(quepa)
    gen_a = LoadGenerator(server, workload, seed=5)
    gen_b = LoadGenerator(server, workload, seed=5)
    gen_c = LoadGenerator(server, workload, seed=6)
    assert gen_a.plan_for_client(0, 8) == gen_b.plan_for_client(0, 8)
    assert gen_a.plan_for_client(0, 8) != gen_a.plan_for_client(1, 8)
    assert gen_a.plan_for_client(0, 8) != gen_c.plan_for_client(0, 8)


def test_loadgen_run_reconciles(loadgen_bundle):
    workload = QueryWorkload(loadgen_bundle)
    polystore = loadgen_bundle.polystore
    profile = centralized_profile(list(polystore))
    quepa = Quepa(
        polystore,
        loadgen_bundle.aindex,
        profile=profile,
        runtime=RealRuntime(profile),
    )
    with QuepaServer(quepa, ServingConfig(workers=4)) as server:
        generator = LoadGenerator(server, workload, seed=5)
        report = generator.run(clients=3, requests_per_client=4)
        status = server.status()
    assert report.completed + report.shed + report.failed == 12
    assert report.failed == 0
    totals = status["totals"]
    assert totals["submitted"] == 12
    assert (
        totals["completed"]
        == report.completed
        == status["latency_s"]["count"]
    )
    assert report.qps > 0
    assert report.latency_p50 <= report.latency_p95 <= report.latency_p99
    payload = report.as_dict()
    assert payload["clients"] == 3 and payload["completed"] == 12


# -- HTTP / UI wiring --------------------------------------------------------


def test_http_query_routes_through_scheduler_and_serving_endpoint():
    from repro.ui.server import serve

    quepa = make_real_quepa()
    with QuepaServer(quepa, ServingConfig(workers=2)) as server:
        endpoint = serve(quepa, port=0, server=server)
        try:
            body = json.dumps(
                {
                    "database": "catalogue",
                    "query": DOC_QUERY,
                    "level": 1,
                    "session": "web",
                }
            ).encode()
            request = urllib.request.Request(
                endpoint.url + "/query",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            payload = json.load(urllib.request.urlopen(request))
            assert payload["originals"]
            status = json.load(
                urllib.request.urlopen(endpoint.url + "/serving")
            )
            assert status["enabled"] is True
            assert status["serving"]["totals"]["completed"] == 1
            assert "web" in status["serving"]["sessions"]
        finally:
            endpoint.shutdown()


def test_http_serving_endpoint_without_server():
    from repro.ui.server import serve

    quepa = make_real_quepa()
    endpoint = serve(quepa, port=0)
    try:
        status = json.load(
            urllib.request.urlopen(endpoint.url + "/serving")
        )
        assert status == {"serving": None, "enabled": False}
    finally:
        endpoint.shutdown()


def test_api_maps_server_busy_to_503():
    from repro.ui.api import ApiError, QuepaApi

    quepa = make_real_quepa()
    server = QuepaServer(quepa)  # never started: submissions are busy
    api = QuepaApi(quepa, server=server)
    with pytest.raises(ApiError) as excinfo:
        api.handle(
            "POST",
            "/query",
            {"database": "catalogue", "query": DOC_QUERY},
        )
    assert excinfo.value.status == 503


# -- CLI ---------------------------------------------------------------------


def test_cli_loadgen_runs_and_prints_report():
    from repro.cli import main

    out = io.StringIO()
    code = main(
        [
            "loadgen",
            "--stores", "4",
            "--albums", "30",
            "--clients", "2",
            "--requests", "3",
            "--workers", "2",
        ],
        out=out,
    )
    text = out.getvalue()
    assert code == 0
    assert "loadgen: 2 clients x 3 requests" in text
    assert "QPS" in text and "server:" in text


def test_cli_loadgen_hedge_flag_arms_accelerator():
    from repro.cli import main

    out = io.StringIO()
    code = main(
        [
            "loadgen",
            "--stores", "4",
            "--albums", "30",
            "--clients", "2",
            "--requests", "3",
            "--workers", "2",
            "--hedge",
        ],
        out=out,
    )
    text = out.getvalue()
    assert code == 0
    assert "coalesce:" in text
    assert "hedge:" in text and "win rate" in text


def test_cli_loadgen_json_report():
    from repro.cli import main

    out = io.StringIO()
    code = main(
        [
            "loadgen",
            "--stores", "4",
            "--albums", "30",
            "--clients", "2",
            "--requests", "2",
            "--json",
        ],
        out=out,
    )
    assert code == 0
    payload = json.loads(out.getvalue())
    assert payload["load"]["completed"] + payload["load"]["shed"] == 4
    assert payload["serving"]["totals"]["submitted"] == 4


def test_cli_serve_binds_and_reports(tmp_path):
    from repro.cli import main

    out = io.StringIO()
    snapshot = tmp_path / "snap"
    assert (
        main(
            [
                "generate",
                "--stores", "4",
                "--albums", "20",
                "--out", str(snapshot),
            ],
            out=io.StringIO(),
        )
        == 0
    )
    code = main(
        [
            "serve",
            "--snapshot", str(snapshot),
            "--port", "0",
            "--duration", "0.05",
        ],
        out=out,
    )
    text = out.getvalue()
    assert code == 0
    assert "serving" in text and "GET /serving" in text
    assert "served 0 requests" in text
