"""Tests for the A' index: insertion, consistency, deletion, lineage."""

import pytest

from repro.core.aindex import AIndex
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation, RelationType


def key(name: str) -> GlobalKey:
    return GlobalKey("db" + name, "c", name)


A, B, C, D = key("a"), key("b"), key("c"), key("d")


class TestBasics:
    def test_empty(self):
        index = AIndex()
        assert index.node_count() == 0
        assert index.edge_count() == 0
        assert index.neighbors(A) == []

    def test_add_and_neighbors(self):
        index = AIndex()
        index.add(PRelation.identity(A, B, 0.9))
        assert index.node_count() == 2
        assert index.edge_count() == 1
        neighbors = index.neighbors(A)
        assert neighbors[0].key == B
        assert neighbors[0].probability == 0.9
        assert neighbors[0].type is RelationType.IDENTITY

    def test_neighbors_filtered_by_type(self):
        index = AIndex()
        index.add(PRelation.identity(A, B, 0.9))
        index.add(PRelation.matching(A, C, 0.7))
        assert len(index.neighbors(A, RelationType.IDENTITY)) == 1
        assert len(index.neighbors(A, RelationType.MATCHING)) == 1

    def test_relation_lookup_both_directions(self):
        index = AIndex()
        index.add(PRelation.matching(A, B, 0.6))
        assert index.relation(A, B).probability == 0.6
        assert index.relation(B, A).probability == 0.6
        assert index.relation(A, C) is None

    def test_contains_and_degree(self):
        index = AIndex()
        index.add(PRelation.identity(A, B, 0.9))
        assert A in index and B in index and C not in index
        assert index.degree(A) == 1
        assert index.degree(C) == 0

    def test_reinsert_keeps_higher_probability(self):
        index = AIndex()
        index.add(PRelation.matching(A, B, 0.6))
        index.add(PRelation.matching(A, B, 0.8))
        assert index.relation(A, B).probability == 0.8
        index.add(PRelation.matching(A, B, 0.3))
        assert index.relation(A, B).probability == 0.8

    def test_identity_supersedes_matching(self):
        index = AIndex()
        index.add(PRelation.matching(A, B, 0.8))
        index.add(PRelation.identity(A, B, 0.92))
        assert index.relation(A, B).type is RelationType.IDENTITY
        # And matching cannot demote an identity.
        index.add(PRelation.matching(A, B, 0.99))
        assert index.relation(A, B).type is RelationType.IDENTITY


class TestConsistencyCondition:
    def test_identity_transitivity_materialized(self):
        """Example 7: probabilities multiply along the inferring path."""
        index = AIndex()
        index.add(PRelation.identity(A, B, 0.85))
        index.add(PRelation.identity(B, C, 0.8))
        inferred = index.relation(A, C)
        assert inferred is not None
        assert inferred.type is RelationType.IDENTITY
        assert inferred.probability == pytest.approx(0.68)

    def test_identity_clique_forms(self):
        index = AIndex()
        index.add(PRelation.identity(A, B, 0.9))
        index.add(PRelation.identity(B, C, 0.9))
        index.add(PRelation.identity(C, D, 0.9))
        # All six pairs of the 4-clique exist.
        assert index.edge_count() == 6

    def test_matching_propagates_over_new_identity(self):
        """o1 = o2 and o2 ~ o3 implies o1 = o3."""
        index = AIndex()
        index.add(PRelation.matching(A, B, 0.7))
        index.add(PRelation.identity(B, C, 0.9))
        propagated = index.relation(A, C)
        assert propagated is not None
        assert propagated.type is RelationType.MATCHING
        assert propagated.probability == pytest.approx(0.63)

    def test_new_matching_propagates_over_existing_identity(self):
        index = AIndex()
        index.add(PRelation.identity(B, C, 0.9))
        index.add(PRelation.matching(A, B, 0.7))
        propagated = index.relation(A, C)
        assert propagated is not None
        assert propagated.type is RelationType.MATCHING

    def test_matching_reaches_whole_identity_class(self):
        index = AIndex()
        index.add(PRelation.identity(B, C, 0.9))
        index.add(PRelation.identity(C, D, 0.9))
        index.add(PRelation.matching(A, B, 0.7))
        assert index.relation(A, C) is not None
        assert index.relation(A, D) is not None

    def test_enforcement_can_be_disabled(self):
        index = AIndex(enforce_consistency=False)
        index.add(PRelation.identity(A, B, 0.9))
        index.add(PRelation.identity(B, C, 0.9))
        assert index.relation(A, C) is None

    def test_inferred_edges_marked(self):
        index = AIndex()
        index.add(PRelation.identity(A, B, 0.9))
        index.add(PRelation.identity(B, C, 0.9))
        assert index.is_inferred(A, C)
        assert not index.is_inferred(A, B)


class TestDeletion:
    def build(self) -> AIndex:
        index = AIndex()
        index.add(PRelation.identity(A, B, 0.9))
        index.add(PRelation.identity(B, C, 0.8))
        index.add(PRelation.matching(C, D, 0.6))
        return index

    def test_remove_object_drops_incident_edges(self):
        index = self.build()
        # B is connected to A and C (identities) and to D (the matching
        # propagated over the identity class by the Consistency Condition).
        removed = index.remove_object(B)
        assert removed == 3
        assert B not in index
        assert index.neighbors(A) != []  # A -- C inferred edge survives
        assert index.relation(A, B) is None

    def test_remove_object_keeps_inferred_edges(self):
        """The paper's strategy: relations inferred via x survive x."""
        index = self.build()
        assert index.relation(A, C) is not None
        index.remove_object(B)
        assert index.relation(A, C) is not None

    def test_remove_missing_object_is_noop(self):
        index = self.build()
        assert index.remove_object(key("zz")) == 0

    def test_remove_relation(self):
        index = self.build()
        assert index.remove_relation(C, D) == 1
        assert index.relation(C, D) is None
        assert index.remove_relation(C, D) == 0

    def test_cascading_delete_follows_lineage(self):
        """The 'data oblivion' extension: cascade inferred relations."""
        index = self.build()
        removed = index.remove_relation(A, B, cascade=True)
        # A--B itself plus the A--C (and possibly A--D) edges inferred
        # through it.
        assert removed >= 2
        assert index.relation(A, C) is None

    def test_non_cascading_delete_keeps_inferred(self):
        index = self.build()
        index.remove_relation(A, B, cascade=False)
        assert index.relation(A, C) is not None
