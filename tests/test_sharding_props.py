"""Property suite: a sharded deployment answers exactly like an
unsharded one.

The tentpole invariant of the sharding layer: partitioning is a
*physical* change — placement scheme, shard count and scatter-gather
routing must never alter the answer set. Originals are compared as key
sets; augmented objects as ``(key, probability)`` pairs (rounded, since
float summation order across shards is not fixed).

Graph ``match``/``limit`` queries are deliberately absent: LIMIT over a
fanned-out scan is not set-equivalent by construction (each shard
truncates locally), so the suite uses the predicate-exact workload
shapes (SQL windows, document filters, KV MGETs).
"""

from __future__ import annotations

import pytest

from repro.core import Quepa
from repro.sharding import shard_aindex, shard_polystore
from repro.workloads import QueryWorkload

PLACEMENTS = ("hash", "range")
SHARD_COUNTS = (1, 2, 4)

#: Predicate-exact queries per database family (see module docstring on
#: why the graph store is exercised through augmentation fetches only).
def _queries(workload):
    return [
        ("transactions", workload.query("transactions", 40, variant=1).query),
        ("catalogue", workload.query("catalogue", 40, variant=2).query),
        ("discount", workload.query("discount", 40, variant=0).query),
    ]


def _signature(answer):
    return (
        sorted(str(obj.key) for obj in answer.originals),
        sorted(
            (str(obj.key), round(obj.probability, 12))
            for obj in answer.augmented
        ),
    )


@pytest.fixture(scope="module")
def baseline(small_bundle):
    """Unsharded answers for every (query, level) the suite replays."""
    quepa = Quepa(small_bundle.polystore, small_bundle.aindex)
    workload = QueryWorkload(small_bundle)
    answers = {}
    for database, query in _queries(workload):
        for level in (0, 1):
            answer = quepa.augmented_search(database, query, level=level)
            answers[(database, str(query), level)] = _signature(answer)
    return answers


@pytest.mark.parametrize("placement", PLACEMENTS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_answers_match_unsharded(
    small_bundle, baseline, placement, shards
):
    polystore = shard_polystore(
        small_bundle.polystore, shards=shards, placement=placement
    )
    aindex = shard_aindex(small_bundle.aindex, shards=shards)
    quepa = Quepa(polystore, aindex)
    workload = QueryWorkload(small_bundle)
    for database, query in _queries(workload):
        for level in (0, 1):
            answer = quepa.augmented_search(database, query, level=level)
            assert _signature(answer) == baseline[
                (database, str(query), level)
            ], (
                f"{placement}/{shards}-shard answer diverged on "
                f"{database} at level {level}"
            )


@pytest.mark.parametrize("placement", PLACEMENTS)
def test_single_shard_matches_unsharded_virtual_time(
    small_bundle, placement
):
    """One shard is pass-through: not just the same answers, the same
    virtual elapsed time (the fig09-guard property, asserted directly)."""
    plain = Quepa(small_bundle.polystore, small_bundle.aindex)
    workload = QueryWorkload(small_bundle)
    query = workload.query("transactions", 40, variant=1).query
    expected = plain.augmented_search("transactions", query, level=1)

    polystore = shard_polystore(
        small_bundle.polystore, shards=1, placement=placement
    )
    quepa = Quepa(polystore, shard_aindex(small_bundle.aindex, shards=1))
    answer = quepa.augmented_search("transactions", query, level=1)
    assert _signature(answer) == _signature(expected)
    assert answer.stats.elapsed == expected.stats.elapsed
    assert answer.stats.queries_issued == expected.stats.queries_issued


@pytest.mark.parametrize("shards", (2, 4))
def test_hash_point_routing_prunes_partitions(small_bundle, shards):
    """Level-1 augmentation over hash placement scatters with per-key
    fan-out 1 — every non-owning partition is pruned, and the metrics
    registry records it."""
    polystore = shard_polystore(
        small_bundle.polystore, shards=shards, placement="hash"
    )
    quepa = Quepa(polystore, shard_aindex(small_bundle.aindex, shards=shards))
    workload = QueryWorkload(small_bundle)
    query = workload.query("transactions", 40, variant=1).query
    quepa.augmented_search("transactions", query, level=1)
    scanned = pruned = 0.0
    for entry in quepa.obs.metrics.snapshot():
        if entry["name"] == "shard_partitions_scanned_total":
            scanned += entry["value"]
        elif entry["name"] == "shard_partitions_pruned_total":
            pruned += entry["value"]
    assert scanned > 0
    assert pruned > 0


def test_range_point_routing_cannot_prune(small_bundle):
    """Range placement probes every shard on key fetches (the documented
    cost side of the trade-off) — nothing is pruned."""
    polystore = shard_polystore(
        small_bundle.polystore, shards=2, placement="range"
    )
    quepa = Quepa(polystore, shard_aindex(small_bundle.aindex, shards=2))
    workload = QueryWorkload(small_bundle)
    query = workload.query("transactions", 40, variant=1).query
    quepa.augmented_search("transactions", query, level=1)
    for entry in quepa.obs.metrics.snapshot():
        if entry["name"] == "shard_partitions_pruned_total":
            assert entry["value"] == 0.0
