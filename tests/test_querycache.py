"""Parse/compile caches of the native query languages."""

from __future__ import annotations

import pytest

from repro.errors import QueryError, SqlSyntaxError
from repro.stores.document.query import compile_filter, matches_filter
from repro.stores.graph.cypher import parse_cypher
from repro.stores.querycache import (
    QueryCache,
    clear_parse_caches,
    parse_cache_stats,
)
from repro.stores.relational.parser import parse_sql


def test_query_cache_hit_miss_and_eviction():
    cache = QueryCache("test_hits", capacity=2)
    assert cache.get_or_compute("a", lambda: 1) == 1
    assert cache.get_or_compute("a", lambda: 2) == 1  # cached, not recomputed
    assert cache.get_or_compute("b", lambda: 2) == 2
    cache.get_or_compute("c", lambda: 3)  # evicts "a" (LRU)
    assert cache.get_or_compute("a", lambda: 9) == 9
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 4
    assert stats["size"] == 2
    assert 0.0 < stats["hit_rate"] < 1.0


def test_query_cache_does_not_cache_failures():
    cache = QueryCache("test_failures", capacity=4)

    def boom():
        raise ValueError("nope")

    with pytest.raises(ValueError):
        cache.get_or_compute("bad", boom)
    assert cache.stats()["size"] == 0
    assert cache.get_or_compute("bad", lambda: "ok") == "ok"


def test_query_cache_clear_resets_counters():
    cache = QueryCache("test_clear", capacity=4)
    cache.get_or_compute("x", lambda: 1)
    cache.get_or_compute("x", lambda: 1)
    cache.clear()
    stats = cache.stats()
    assert (stats["size"], stats["hits"], stats["misses"]) == (0, 0, 0)


def test_parse_sql_returns_shared_statement():
    text = "SELECT * FROM inventory WHERE price > 10"
    assert parse_sql(text) is parse_sql(text)
    with pytest.raises(SqlSyntaxError):
        parse_sql("SELEKT nope")


def test_parse_cypher_returns_shared_query():
    text = "MATCH (a:Item) RETURN a"
    assert parse_cypher(text) is parse_cypher(text)


def test_compiled_filter_is_shared_and_equivalent():
    query = {"year": {"$gte": 1989}, "$or": [{"artist": "Pixies"}, {"x": 1}]}
    assert compile_filter(query) is compile_filter(dict(query))
    document = {"artist": "Pixies", "year": 1989}
    assert matches_filter(document, query)
    assert not matches_filter({"artist": "Cure", "year": 1980}, query)


def test_compiled_filter_rejects_unknown_operator():
    with pytest.raises(QueryError):
        matches_filter({"a": 1}, {"$xor": [{"a": 1}]})


def test_unhashable_filter_compiles_uncached():
    class Odd:
        __hash__ = None

        def __eq__(self, other):
            return isinstance(other, int) and other % 2 == 1

    query = {"a": Odd()}
    assert matches_filter({"a": 3}, query)
    assert not matches_filter({"a": 2}, query)


def test_parse_cache_stats_lists_registered_caches():
    parse_sql("SELECT * FROM inventory")
    names = [entry["name"] for entry in parse_cache_stats()]
    assert names == sorted(names)
    assert "sql_statements" in names
    assert "document_filters" in names
    assert "cypher_patterns" in names


def test_clear_parse_caches_resets_everything():
    parse_sql("SELECT * FROM inventory")
    clear_parse_caches()
    for entry in parse_cache_stats():
        if entry["name"].startswith("test_"):
            continue
        assert entry["size"] == entry["hits"] == entry["misses"] == 0
