"""Unit backfill for the middleware emulators (edge cases of Fig 13).

Three families of edge behaviour the benchmark suites never hit:

* **empty joins** — a local query matching nothing must flow through
  META-NAT's join rounds, META-AUG's fetch loop and TALEND's pipeline
  without errors and with an empty answer;
* **cast round-trips** — keys and payloads survive the trip through the
  middleware's row model: ``GlobalKey`` parse/str round-trips and
  ``multi_get`` returns the exact stored objects, which is what makes
  the planner's materialized strategies bit-identical to push-down;
* **unavailability** — ``MiddlewareSystem.run`` reports a
  :class:`StoreUnavailableError` on the result (``unavailable=...``)
  instead of raising, mirroring the OOM red-X behaviour.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import InjectedFaultError, StoreUnavailableError
from repro.faults import FaultInjector
from repro.middleware import (
    EtlWorkflow,
    FederatedMiddleware,
    MultiModelStore,
    page_scan,
)
from repro.middleware.base import SCAN_PAGE
from repro.model.objects import GlobalKey
from repro.network import centralized_profile
from repro.network.executor import VirtualRuntime
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony
from repro.workloads.queries import WorkloadQuery

BIG_BUDGET = 10_000_000


@pytest.fixture(scope="module")
def bundle():
    return build_polyphony(stores=4, scale=PolystoreScale(n_albums=60), seed=9)


@pytest.fixture
def profile(bundle):
    return centralized_profile(bundle.database_names())


def empty_query(database: str = "catalogue") -> WorkloadQuery:
    """A valid document query matching zero objects."""
    return WorkloadQuery(
        database=database,
        engine="document",
        query={"collection": "albums", "filter": {"seq": {"$gte": 10**9}}},
        size=0,
        variant=0,
    )


class TestEmptyJoins:
    def test_meta_native_empty_frontier(self, bundle, profile):
        system = FederatedMiddleware(
            bundle, profile, mode="native", memory_budget=BIG_BUDGET
        )
        result = system.run(empty_query(), level=1)
        assert result.answer_size == 0
        assert not result.out_of_memory
        assert result.unavailable is None
        # The join rounds still scanned the remote collections.
        assert result.elapsed > 0

    def test_meta_augmented_empty_answer(self, bundle, profile):
        system = FederatedMiddleware(
            bundle, profile, mode="augmented", memory_budget=BIG_BUDGET
        )
        result = system.run(empty_query(), level=2)
        assert result.answer_size == 0
        assert not result.out_of_memory

    def test_etl_pipeline_with_zero_records(self, bundle, profile):
        system = EtlWorkflow(bundle, profile, memory_budget=BIG_BUDGET)
        result = system.run(empty_query(), level=1)
        assert result.answer_size == 0
        # Startup and staging are paid regardless of the empty answer.
        assert result.elapsed > 1.0

    def test_multimodel_empty_answer(self, bundle, profile):
        system = MultiModelStore(bundle, profile, memory_budget=BIG_BUDGET)
        result = system.run(empty_query(), level=1)
        assert result.answer_size == 0

    def test_page_scan_empty_collection_issues_no_calls(self, profile):
        from repro.stores import DocumentStore

        store = DocumentStore()
        store.create_collection("empty")
        runtime = VirtualRuntime(profile)
        ctx = runtime.root()
        keys = page_scan(ctx, store, "catalogue", "empty")
        assert keys == []
        assert runtime.meter.total_queries == 0


class TestPageScan:
    def test_one_roundtrip_per_page(self, bundle, profile):
        store = bundle.polystore.database("catalogue")
        runtime = VirtualRuntime(profile)
        ctx = runtime.root()
        keys = page_scan(ctx, store, "catalogue", "albums", page_size=7)
        assert len(keys) == 60
        assert runtime.meter.total_queries == math.ceil(60 / 7)
        assert SCAN_PAGE == 1000

    def test_issue_callback_replaces_store_call(self, bundle, profile):
        store = bundle.polystore.database("catalogue")
        runtime = VirtualRuntime(profile)
        ctx = runtime.root()
        routed = []

        def issue(ctx, database, op):
            routed.append(database)
            return ctx.store_call(database, op)

        page_scan(ctx, store, "catalogue", "albums", page_size=25, issue=issue)
        assert routed == ["catalogue"] * math.ceil(60 / 25)

    def test_issue_callback_failures_propagate(self, bundle, profile):
        store = bundle.polystore.database("catalogue")
        ctx = VirtualRuntime(profile).root()

        def issue(ctx, database, op):
            raise InjectedFaultError(f"{database} is down")

        with pytest.raises(StoreUnavailableError):
            page_scan(ctx, store, "catalogue", "albums", issue=issue)


class TestCastRoundTrips:
    def test_global_key_parse_str_round_trip(self, bundle):
        store = bundle.polystore.database("catalogue")
        for key in list(store.collection_keys("albums"))[:10]:
            global_key = GlobalKey("catalogue", "albums", key)
            assert GlobalKey.parse(str(global_key)) == global_key

    def test_multi_get_returns_exact_stored_payloads(self, bundle):
        """The materializing strategies rely on this identity."""
        store = bundle.polystore.database("catalogue")
        originals = store.execute(
            {"collection": "albums", "filter": {"seq": {"$lt": 5}}}
        )
        keys = [obj.key for obj in originals]
        fetched = store.multi_get(keys)
        assert {obj.key: obj.value for obj in fetched} == {
            obj.key: obj.value for obj in originals
        }

    def test_multi_get_dedups_and_drops_missing(self, bundle):
        store = bundle.polystore.database("catalogue")
        key = store.execute(
            {"collection": "albums", "filter": {"seq": {"$lt": 1}}}
        )[0].key
        ghost = GlobalKey("catalogue", "albums", "no-such-album")
        fetched = store.multi_get([key, key, ghost])
        assert [obj.key for obj in fetched] == [key]


class TestUnavailability:
    def _faulted(self, system, database):
        faults = FaultInjector(seed=2)
        faults.inject(database, "fail", rate=1.0)
        system.runtime.faults = faults
        return system

    @pytest.mark.parametrize(
        "factory,mode",
        [
            (FederatedMiddleware, "native"),
            (FederatedMiddleware, "augmented"),
            (EtlWorkflow, None),
            (MultiModelStore, "augmented"),
        ],
    )
    def test_run_reports_unavailable_instead_of_raising(
        self, bundle, profile, factory, mode
    ):
        kwargs = {"memory_budget": BIG_BUDGET}
        if mode is not None:
            kwargs["mode"] = mode
        system = self._faulted(factory(bundle, profile, **kwargs), "similar")
        query = QueryWorkload(bundle).query("catalogue", 10)
        result = system.run(query, level=1)
        assert result.answer_size == 0
        assert result.unavailable is not None
        assert "similar" in result.unavailable
        assert not result.out_of_memory
        assert result.marker == "o"

    def test_oom_still_reported_as_red_x(self, bundle, profile):
        system = FederatedMiddleware(
            bundle, profile, mode="native", memory_budget=10
        )
        result = system.run(QueryWorkload(bundle).query("catalogue", 10))
        assert result.out_of_memory
        assert result.marker == "X"
        assert result.footprint > 10

    def test_home_store_down_reports_unavailable(self, bundle, profile):
        system = self._faulted(
            FederatedMiddleware(
                bundle, profile, mode="augmented", memory_budget=BIG_BUDGET
            ),
            "catalogue",
        )
        result = system.run(QueryWorkload(bundle).query("catalogue", 10))
        assert result.answer_size == 0
        assert result.unavailable is not None
