"""Tests for token blocking (the BLAST stand-in)."""

from repro.collector.blocking import TokenBlocker, tokenize_value
from repro.model.objects import DataObject, GlobalKey


def obj(db: str, key: str, **fields) -> DataObject:
    return DataObject(GlobalKey(db, "c", key), fields)


class TestTokenize:
    def test_lowercase_alnum_tokens(self):
        assert tokenize_value("The Queen, Is Dead!") == {
            "the", "queen", "is", "dead",
        }

    def test_none_is_empty(self):
        assert tokenize_value(None) == set()

    def test_numbers_tokenized(self):
        assert tokenize_value("v1.2") == {"v1", "2"}


class TestBlocks:
    def test_shared_token_same_block(self):
        blocker = TokenBlocker()
        a = obj("db1", "1", title="Wish upon")
        b = obj("db2", "2", name="Wish")
        blocks = blocker.blocks([a, b])
        assert any(
            {o.key.key for o in members} == {"1", "2"}
            for members in blocks.values()
        )

    def test_singleton_blocks_dropped(self):
        blocker = TokenBlocker()
        blocks = blocker.blocks([obj("db1", "1", title="unique")])
        assert blocks == {}

    def test_oversized_blocks_dropped(self):
        blocker = TokenBlocker(max_block_size=3)
        members = [obj("db1", str(i), title="common") for i in range(5)]
        assert blocker.blocks(members) == {}

    def test_short_tokens_ignored(self):
        blocker = TokenBlocker(min_token_length=3)
        a = obj("db1", "1", title="of it")
        b = obj("db2", "2", title="of us")
        assert blocker.blocks([a, b]) == {}

    def test_pure_numbers_ignored(self):
        blocker = TokenBlocker()
        a = obj("db1", "1", year="1992")
        b = obj("db2", "2", year="1992")
        assert blocker.blocks([a, b]) == {}

    def test_underscore_fields_skipped(self):
        blocker = TokenBlocker()
        a = obj("db1", "1", _internal="shared words here")
        b = obj("db2", "2", _internal="shared words here")
        assert blocker.blocks([a, b]) == {}


class TestCandidatePairs:
    def test_cross_database_only(self):
        blocker = TokenBlocker()
        same_db = [
            obj("db1", "1", title="wish"),
            obj("db1", "2", title="wish"),
        ]
        assert list(blocker.candidate_pairs(same_db)) == []

    def test_pairs_deduplicated_across_blocks(self):
        blocker = TokenBlocker()
        a = obj("db1", "1", title="black wish")
        b = obj("db2", "2", title="black wish")
        pairs = list(blocker.candidate_pairs([a, b]))
        assert len(pairs) == 1

    def test_scalar_values_compared_via_value_field(self):
        blocker = TokenBlocker()
        a = DataObject(GlobalKey("db1", "c", "1"), "cure wish")
        b = DataObject(GlobalKey("db2", "c", "2"), "cure forever")
        pairs = list(blocker.candidate_pairs([a, b]))
        assert len(pairs) == 1
