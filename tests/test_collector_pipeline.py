"""Tests for the collector pipeline and the genetic tuner."""

import pytest

from repro.collector import (
    Collector,
    CollectorSettings,
    GeneticTuner,
    JaroWinklerComparator,
    PairwiseMatcher,
)
from repro.collector.genetic import LabeledPair
from repro.collector.matching import AttributeRule
from repro.core.aindex import AIndex
from repro.model import Polystore
from repro.model.objects import DataObject, GlobalKey
from repro.stores import DocumentStore, RelationalStore
from repro.stores.relational.types import Column, ColumnType, TableSchema


def build_two_store_polystore() -> Polystore:
    polystore = Polystore()
    sales = RelationalStore()
    sales.create_table(
        "inventory",
        TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("name", ColumnType.TEXT),
            ],
            primary_key="id",
        ),
    )
    catalogue = DocumentStore()
    titles = ["Violet Dreams", "Endless Rivers", "Quiet Harbors"]
    for index, title in enumerate(titles):
        sales.insert_row("inventory", {"id": f"a{index}", "name": title})
        catalogue.insert("albums", {"_id": f"d{index}", "title": title})
    polystore.attach("transactions", sales)
    polystore.attach("catalogue", catalogue)
    return polystore


def title_matcher() -> PairwiseMatcher:
    return PairwiseMatcher(
        [AttributeRule("name", "title", JaroWinklerComparator())],
        identity_threshold=0.9,
        matching_threshold=0.6,
    )


class TestCollector:
    def test_collects_ground_truth_identities(self):
        polystore = build_two_store_polystore()
        aindex = AIndex()
        report = Collector(title_matcher()).collect(polystore, aindex)
        assert report.objects_scanned == 6
        assert report.identities == 3
        for i in range(3):
            relation = aindex.relation(
                GlobalKey("transactions", "inventory", f"a{i}"),
                GlobalKey("catalogue", "albums", f"d{i}"),
            )
            assert relation is not None

    def test_candidate_cap_respected(self):
        polystore = build_two_store_polystore()
        aindex = AIndex()
        settings = CollectorSettings(max_candidate_pairs=1)
        report = Collector(title_matcher(), settings).collect(polystore, aindex)
        assert report.candidate_pairs == 1

    def test_report_counts_consistent(self):
        polystore = build_two_store_polystore()
        report = Collector(title_matcher()).collect(polystore, AIndex())
        assert report.relations_found == report.identities + report.matchings
        assert len(report.relations) == report.relations_found

    def test_index_usable_for_augmentation(self, mini_quepa):
        """End-to-end: collector output drives augmented search."""
        polystore = build_two_store_polystore()
        aindex = AIndex()
        Collector(title_matcher()).collect(polystore, aindex)
        from repro.core import Quepa

        quepa = Quepa(polystore, aindex)
        answer = quepa.augmented_search(
            "transactions", "SELECT * FROM inventory WHERE name LIKE '%violet%'"
        )
        assert "catalogue.albums.d0" in {
            str(k) for k in answer.augmented_keys()
        }


class TestGeneticTuner:
    def make_examples(self) -> list[LabeledPair]:
        def obj(db, key, title):
            return DataObject(GlobalKey(db, "c", key), {"title": title})

        pairs = []
        titles = ["alpha omega", "beta waves", "gamma rays", "delta blues"]
        for i, title in enumerate(titles):
            for j, other in enumerate(titles):
                pairs.append(
                    LabeledPair(
                        obj("a", f"l{i}", title),
                        obj("b", f"r{j}", other),
                        is_match=(i == j),
                    )
                )
        return pairs

    def rules(self):
        return [AttributeRule("title", "title", JaroWinklerComparator())]

    def test_tuner_reaches_high_f1_on_separable_data(self):
        tuner = GeneticTuner(self.rules(), generations=15, seed=1)
        result = tuner.tune(self.make_examples())
        assert result.fitness >= 0.9

    def test_tuner_is_deterministic_for_a_seed(self):
        examples = self.make_examples()
        one = GeneticTuner(self.rules(), generations=5, seed=2).tune(examples)
        two = GeneticTuner(self.rules(), generations=5, seed=2).tune(examples)
        assert one.fitness == two.fitness
        assert (
            one.matcher.matching_threshold == two.matcher.matching_threshold
        )

    def test_empty_examples_rejected(self):
        with pytest.raises(ValueError):
            GeneticTuner(self.rules()).tune([])

    def test_small_population_rejected(self):
        with pytest.raises(ValueError):
            GeneticTuner(self.rules(), population_size=2)

    def test_tuned_matcher_thresholds_are_valid(self):
        result = GeneticTuner(self.rules(), generations=5, seed=3).tune(
            self.make_examples()
        )
        matcher = result.matcher
        assert 0 < matcher.matching_threshold <= matcher.identity_threshold <= 1
