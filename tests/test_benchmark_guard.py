"""Guard: instrumentation must not move the virtual-time benchmarks.

The tracing/metrics layer reads the virtual clock but never charges it,
so the figure benchmarks must reproduce the committed seed results
bit-for-bit. This smoke test recomputes representative Fig 9 sweep
points and compares them — formatted exactly as the results file is
written (six decimal places) — against ``benchmarks/results``.
"""

import re
from pathlib import Path

import pytest

from repro.core.augmentation import AugmentationConfig
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony

from benchmarks.harness import run_cold_warm

RESULTS = (
    Path(__file__).resolve().parent.parent
    / "benchmarks" / "results" / "fig09_batch_size_sweep.txt"
)
# Two points per augmenter keep the guard under a few seconds while
# covering both the query-bound and the overhead-bound ends of Fig 9.
POINTS = (("batch", 16), ("batch", 256),
          ("outer_batch", 16), ("outer_batch", 256))

COLD_LINE = re.compile(
    r"augmenter=(\w+)\s+batch_size=(\d+)\s+cold_s=([\d.]+)\s+queries=(\d+)"
)
WARM_LINE = re.compile(
    r"augmenter=(\w+)\s+batch_size=(\d+)\s+warm_s=([\d.]+)"
)


def parse_seed_results():
    """The committed sweep, keyed ``(augmenter, batch_size)``."""
    cold: dict[tuple[str, int], tuple[str, int]] = {}
    warm: dict[tuple[str, int], str] = {}
    for line in RESULTS.read_text().splitlines():
        if match := COLD_LINE.search(line):
            augmenter, batch_size, cold_s, queries = match.groups()
            cold[(augmenter, int(batch_size))] = (cold_s, int(queries))
        elif match := WARM_LINE.search(line):
            augmenter, batch_size, warm_s = match.groups()
            warm[(augmenter, int(batch_size))] = warm_s
    return cold, warm


@pytest.fixture(scope="module")
def fig09_setup():
    """The exact bundle + query the Fig 9 sweep uses (small profile)."""
    bundle = build_polyphony(
        stores=10, scale=PolystoreScale(n_albums=1000), seed=42
    )
    query = QueryWorkload(bundle).query("transactions", 1000)
    return bundle, query


class TestFig09Unchanged:
    def test_seed_results_file_present(self):
        assert RESULTS.exists(), "seed benchmark results are committed"
        cold, warm = parse_seed_results()
        for point in POINTS:
            assert point in cold and point in warm

    @pytest.mark.parametrize("augmenter,batch_size", POINTS)
    def test_sweep_point_bit_identical(
        self, fig09_setup, augmenter, batch_size
    ):
        bundle, query = fig09_setup
        seed_cold, seed_warm = parse_seed_results()
        expected_cold, expected_queries = seed_cold[(augmenter, batch_size)]
        config = AugmentationConfig(
            augmenter=augmenter, batch_size=batch_size,
            threads_size=4, cache_size=200_000,
        )
        times = run_cold_warm(bundle, query, config, level=0)
        assert f"{times.cold:.6f}" == expected_cold
        assert f"{times.warm:.6f}" == seed_warm[(augmenter, batch_size)]
        assert times.queries_issued == expected_queries
