"""Tests for p-relations (Definition 1)."""

import pytest

from repro.errors import InvalidProbabilityError
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation, RelationType

A = GlobalKey("alpha", "c", "1")
B = GlobalKey("beta", "c", "2")


class TestPRelation:
    def test_identity_constructor(self):
        relation = PRelation.identity(A, B, 0.8)
        assert relation.type is RelationType.IDENTITY
        assert relation.probability == 0.8

    def test_matching_constructor(self):
        relation = PRelation.matching(A, B, 0.6)
        assert relation.type is RelationType.MATCHING

    def test_endpoints_are_canonicalized(self):
        """The same logical edge compares equal regardless of order."""
        assert PRelation.identity(A, B, 0.5) == PRelation.identity(B, A, 0.5)

    def test_canonical_order_is_by_string(self):
        relation = PRelation.identity(B, A, 0.5)
        assert str(relation.left) <= str(relation.right)

    def test_zero_probability_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            PRelation.identity(A, B, 0.0)

    def test_above_one_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            PRelation.identity(A, B, 1.01)

    def test_probability_one_allowed(self):
        assert PRelation.identity(A, B, 1.0).probability == 1.0

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidProbabilityError):
            PRelation.identity(A, A, 0.5)

    def test_other_endpoint(self):
        relation = PRelation.identity(A, B, 0.5)
        assert relation.other(A) == B
        assert relation.other(B) == A

    def test_other_with_foreign_key_raises(self):
        relation = PRelation.identity(A, B, 0.5)
        with pytest.raises(KeyError):
            relation.other(GlobalKey("x", "y", "z"))

    def test_str_uses_relation_symbol(self):
        assert "~" in str(PRelation.identity(A, B, 0.5))
        assert "=" in str(PRelation.matching(A, B, 0.5))

    def test_hashable(self):
        edges = {PRelation.identity(A, B, 0.5), PRelation.identity(B, A, 0.5)}
        assert len(edges) == 1
