"""Tests for the Redis-style command language of the key-value store."""

import pytest

from repro.errors import QueryError
from repro.stores import KeyValueStore


@pytest.fixture
def store() -> KeyValueStore:
    kv = KeyValueStore(keyspace="drop")
    kv.database_name = "discount"
    kv.command("SET a:1 10%")
    kv.command("SET a:2 20%")
    kv.command("SET b:1 30%")
    return kv


class TestCommands:
    def test_get(self, store):
        assert store.command("GET a:1") == "10%"
        assert store.command("GET missing") is None

    def test_set_returns_ok(self, store):
        assert store.command("SET c:1 40%") == "OK"
        assert store.command("GET c:1") == "40%"

    def test_set_quoted_value(self, store):
        store.command("SET greeting 'hello world'")
        assert store.command("GET greeting") == "hello world"

    def test_del_counts_removed(self, store):
        assert store.command("DEL a:1 a:2 missing") == 2
        assert store.command("DBSIZE") == 1

    def test_exists(self, store):
        assert store.command("EXISTS a:1 missing b:1") == 2

    def test_mget(self, store):
        assert store.command("MGET a:1 nope b:1") == ["10%", None, "30%"]

    def test_keys_sorted(self, store):
        assert store.command("KEYS a:*") == ["a:1", "a:2"]

    def test_scan_with_options(self, store):
        cursor, page = store.command("SCAN 0 MATCH a:* COUNT 10")
        assert cursor == 0
        assert page == ["a:1", "a:2"]

    def test_dbsize(self, store):
        assert store.command("DBSIZE") == 3


class TestCommandErrors:
    def test_unknown_verb(self, store):
        with pytest.raises(QueryError):
            store.command("FLY to the moon")

    def test_empty_command(self, store):
        with pytest.raises(QueryError):
            store.command("   ")

    def test_wrong_arity(self, store):
        with pytest.raises(QueryError):
            store.command("GET")
        with pytest.raises(QueryError):
            store.command("GET a b")
        with pytest.raises(QueryError):
            store.command("SET only_key")
        with pytest.raises(QueryError):
            store.command("DBSIZE extra")

    def test_bad_scan_cursor(self, store):
        with pytest.raises(QueryError):
            store.command("SCAN abc")

    def test_bad_scan_option(self, store):
        with pytest.raises(QueryError):
            store.command("SCAN 0 WRONG x")

    def test_unbalanced_quote(self, store):
        with pytest.raises(QueryError):
            store.command("SET k 'oops")


class TestExecuteIntegration:
    def test_execute_get(self, store):
        objects = store.execute("GET a:1")
        assert len(objects) == 1
        assert str(objects[0].key) == "discount.drop.a:1"
        assert store.execute("GET missing") == []

    def test_execute_mget(self, store):
        objects = store.execute("MGET a:1 missing b:1")
        assert [o.value for o in objects] == ["10%", "30%"]

    def test_execute_keys_command(self, store):
        objects = store.execute("KEYS b:*")
        assert [o.key.key for o in objects] == ["b:1"]

    def test_execute_bare_pattern_still_works(self, store):
        assert len(store.execute("a:*")) == 2

    def test_execute_rejects_writes(self, store):
        with pytest.raises(QueryError):
            store.execute("SET x y")
        with pytest.raises(QueryError):
            store.execute("DEL a:1")

    def test_augmented_search_over_command(self, mini_quepa):
        answer = mini_quepa.augmented_search(
            "discount", "MGET k1:cure:wish"
        )
        assert "catalogue.albums.d1" in {
            str(k) for k in answer.augmented_keys()
        }
