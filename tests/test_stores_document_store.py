"""Tests for the document store engine."""

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError, QueryError
from repro.stores import DocumentStore


@pytest.fixture
def store() -> DocumentStore:
    doc = DocumentStore()
    doc.database_name = "catalogue"
    doc.insert("albums", {"_id": "d1", "title": "Wish", "artist": "Cure", "year": 1992})
    doc.insert("albums", {"_id": "d2", "title": "Pornography", "artist": "Cure", "year": 1982})
    doc.insert("albums", {"_id": "d3", "title": "Doolittle", "artist": "Pixies", "year": 1989})
    return doc


class TestWrites:
    def test_insert_assigns_id_when_missing(self, store):
        doc_id = store.insert("albums", {"title": "Untitled"})
        assert store.get_value("albums", doc_id)["title"] == "Untitled"

    def test_insert_duplicate_raises(self, store):
        with pytest.raises(DuplicateKeyError):
            store.insert("albums", {"_id": "d1"})

    def test_insert_many(self, store):
        ids = store.insert_many("albums", [{"x": 1}, {"x": 2}])
        assert len(ids) == 2

    def test_update_one(self, store):
        store.update_one("albums", "d1", {"year": 1993})
        assert store.get_value("albums", "d1")["year"] == 1993

    def test_update_missing_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.update_one("albums", "zzz", {})

    def test_update_cannot_change_id(self, store):
        store.update_one("albums", "d1", {"_id": "hacked"})
        assert store.get_value("albums", "d1")["_id"] == "d1"

    def test_delete_one(self, store):
        assert store.delete_one("albums", "d1") is True
        assert store.delete_one("albums", "d1") is False

    def test_drop_collection(self, store):
        store.drop_collection("albums")
        assert "albums" not in store.collections()


class TestFind:
    def test_find_all(self, store):
        assert len(store.find("albums")) == 3

    def test_find_filter(self, store):
        out = store.find("albums", {"artist": "Cure"})
        assert {d["_id"] for d in out} == {"d1", "d2"}

    def test_find_projection(self, store):
        out = store.find("albums", {"_id": "d1"}, projection={"title": 1})
        assert out == [{"_id": "d1", "title": "Wish"}]

    def test_find_sort_ascending(self, store):
        out = store.find("albums", sort=[("year", 1)])
        assert [d["year"] for d in out] == [1982, 1989, 1992]

    def test_find_sort_descending(self, store):
        out = store.find("albums", sort=[("year", -1)])
        assert [d["year"] for d in out] == [1992, 1989, 1982]

    def test_find_compound_sort(self, store):
        out = store.find("albums", sort=[("artist", 1), ("year", -1)])
        assert [d["_id"] for d in out] == ["d1", "d2", "d3"]

    def test_find_skip_limit(self, store):
        out = store.find("albums", sort=[("year", 1)], skip=1, limit=1)
        assert [d["_id"] for d in out] == ["d3"]

    def test_find_one(self, store):
        assert store.find_one("albums", {"_id": "d3"})["title"] == "Doolittle"
        assert store.find_one("albums", {"_id": "zz"}) is None

    def test_count(self, store):
        assert store.count("albums") == 3
        assert store.count("albums", {"artist": "Cure"}) == 2

    def test_find_unknown_collection_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.find("nope")

    def test_results_are_copies(self, store):
        store.find("albums", {"_id": "d1"})[0]["title"] = "mutated"
        assert store.get_value("albums", "d1")["title"] == "Wish"


class TestIndexes:
    def test_index_used_for_equality(self, store):
        store.create_index("albums", "artist")
        out = store.find("albums", {"artist": "Pixies"})
        assert [d["_id"] for d in out] == ["d3"]

    def test_index_used_for_in(self, store):
        store.create_index("albums", "artist")
        out = store.find("albums", {"artist": {"$in": ["Pixies", "Cure"]}})
        assert len(out) == 3

    def test_index_maintained_on_insert(self, store):
        store.create_index("albums", "artist")
        store.insert("albums", {"_id": "d4", "artist": "Pixies"})
        assert len(store.find("albums", {"artist": "Pixies"})) == 2

    def test_index_maintained_on_update(self, store):
        store.create_index("albums", "artist")
        store.update_one("albums", "d3", {"artist": "Cure"})
        assert len(store.find("albums", {"artist": "Cure"})) == 3
        assert store.find("albums", {"artist": "Pixies"}) == []

    def test_index_maintained_on_delete(self, store):
        store.create_index("albums", "artist")
        store.delete_one("albums", "d3")
        assert store.find("albums", {"artist": "Pixies"}) == []

    def test_index_combines_with_residual_filter(self, store):
        store.create_index("albums", "artist")
        out = store.find("albums", {"artist": "Cure", "year": {"$gt": 1990}})
        assert [d["_id"] for d in out] == ["d1"]


class TestStoreContract:
    def test_execute_tuple_form(self, store):
        objects = store.execute(("albums", {"artist": "Cure"}))
        assert {str(o.key) for o in objects} == {
            "catalogue.albums.d1", "catalogue.albums.d2",
        }

    def test_execute_dict_form_with_options(self, store):
        objects = store.execute(
            {
                "collection": "albums",
                "filter": {},
                "sort": [("year", 1)],
                "limit": 2,
            }
        )
        assert [o.key.key for o in objects] == ["d2", "d3"]

    def test_execute_bad_query_raises(self, store):
        with pytest.raises(QueryError):
            store.execute(["albums"])

    def test_collection_keys(self, store):
        assert sorted(store.collection_keys("albums")) == ["d1", "d2", "d3"]
