"""Tests for the partitioned cluster: ownership routing and the
lazy-deletion drain regression (ISSUE 7's bugfix sweep).

The replica cluster's ``_sync_lazy_deletions`` union-diffs per-instance
node sets — correct only when every instance holds a full replica.
Under partitioning that diff would mistake by-design absence for
deletion and wipe the index, so the base cluster now refuses
partitioned indexes outright and ``ShardedCluster`` re-delivers
*recorded* deletions to owners only.
"""

from __future__ import annotations

import pytest

from repro.cluster import Delivery, QuepaCluster, ShardedCluster
from repro.errors import ConfigurationError
from repro.model import GlobalKey
from repro.model.prelations import PRelation
from repro.sharding import ShardedAIndex, shard_aindex

from tests.conftest import make_mini_aindex, make_mini_polystore

K = GlobalKey.parse
QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"


@pytest.fixture
def polystore():
    return make_mini_polystore()


@pytest.fixture
def aindex() -> ShardedAIndex:
    return shard_aindex(make_mini_aindex(), shards=4)


@pytest.fixture
def cluster(polystore, aindex) -> ShardedCluster:
    return ShardedCluster(polystore, aindex, instances=2)


class TestConstruction:
    def test_requires_sharded_index(self, polystore):
        with pytest.raises(ConfigurationError):
            ShardedCluster(polystore, make_mini_aindex(), instances=2)

    def test_instances_cannot_outnumber_shards(self, polystore, aindex):
        with pytest.raises(ConfigurationError):
            ShardedCluster(polystore, aindex, instances=5)

    def test_ownership_is_round_robin(self, cluster):
        assert cluster.ownership == {0: 0, 1: 1, 2: 0, 3: 1}
        assert cluster.owned_shards(0) == [0, 2]
        assert cluster.owned_shards(1) == [1, 3]

    def test_instances_share_the_authoritative_index(self, cluster, aindex):
        for index in range(len(cluster)):
            view = cluster.instance(index).aindex
            assert view.partitioned
            assert view.edge_count() == aindex.edge_count()
            assert view.frozen() is aindex.frozen()

    def test_base_cluster_refuses_partitioned_indexes(
        self, polystore, aindex
    ):
        cluster = QuepaCluster.__new__(QuepaCluster)
        sharded = ShardedCluster(polystore, aindex, instances=2)
        # A replica cluster that somehow ends up over partitioned views
        # must fail loudly on drain, not silently wipe the index.
        cluster.__dict__.update(sharded.__dict__)
        cluster.submit("transactions", QUERY)
        with pytest.raises(ConfigurationError):
            QuepaCluster.drain(cluster)


class TestBroadcastRouting:
    def test_add_relation_reaches_exactly_endpoint_owners(
        self, cluster, aindex
    ):
        relation = PRelation.identity(
            K("catalogue.albums.d2"), K("discount.drop.k2:pixies:doolittle"),
            0.85,
        )
        expected_owners = {
            cluster.owner_of(aindex.shard_of(relation.left)),
            cluster.owner_of(aindex.shard_of(relation.right)),
        }
        cluster.add_relation(relation)
        delivery = Delivery("add_relation", relation)
        received = {
            index
            for index in range(len(cluster))
            if delivery in cluster.deliveries(index)
        }
        assert received == expected_owners
        assert aindex.relation(relation.left, relation.right) is not None

    def test_remove_object_reaches_exactly_stub_owners(self, cluster, aindex):
        key = K("catalogue.albums.d1")
        expected_owners = {
            cluster.owner_of(shard) for shard in aindex.owning_shards(key)
        }
        cluster.remove_object(key)
        delivery = Delivery("remove_object", key)
        received = {
            index
            for index in range(len(cluster))
            if delivery in cluster.deliveries(index)
        }
        assert received == expected_owners
        assert key not in aindex

    def test_every_shard_routes_to_exactly_one_owner(self, cluster, aindex):
        for shard in range(aindex.shards):
            owner = cluster.owner_of(shard)
            assert shard in cluster.owned_shards(owner)
            others = [
                index
                for index in range(len(cluster))
                if index != owner and shard in cluster.owned_shards(index)
            ]
            assert others == []


class TestQueries:
    def test_queries_dispatch_and_drain(self, cluster):
        for __ in range(4):
            cluster.submit("transactions", QUERY, level=1)
        report = cluster.drain()
        assert len(report.results) == 4
        assert report.makespan > 0
        for result in report.results:
            keys = {str(obj.key) for obj in result.answer.originals}
            assert "transactions.inventory.a32" in keys


class TestDrainRegression:
    def test_lazy_deletion_survives_drain_without_wiping(
        self, cluster, aindex
    ):
        """The regression: a lazy deletion recorded by one instance must
        not trigger replica-style union-diffing on drain — only the
        deleted key goes, every other node survives."""
        before = set(aindex.nodes())
        victim = K("catalogue.albums.d1")
        # Instance 0 discovers the deletion mid-batch through its view.
        cluster.instance(0).aindex.remove_object(victim)
        cluster.submit("transactions", QUERY)
        cluster.drain()
        after = set(aindex.nodes())
        assert victim not in after
        assert after == before - {victim}

    def test_drain_redelivery_is_idempotent(self, cluster, aindex):
        victim = K("catalogue.albums.d1")
        cluster.instance(0).aindex.remove_object(victim)
        node_count = aindex.node_count()
        cluster.drain()
        cluster.drain()
        assert aindex.node_count() == node_count
        assert victim not in aindex

    def test_answers_unaffected_by_unrelated_deletion(self, cluster):
        baseline = cluster.submit("transactions", QUERY, level=1)
        cluster.drain()
        cluster.instance(1).aindex.remove_object(K("similar.Item.i3"))
        repeat = cluster.submit("transactions", QUERY, level=1)
        cluster.drain()
        assert {str(o.key) for o in repeat.answer.originals} == {
            str(o.key) for o in baseline.answer.originals
        }


class TestServingIntegration:
    def test_scheduler_drives_a_cluster_instance(self, cluster):
        from repro.serving import QuepaServer, ServingConfig

        with QuepaServer(
            cluster.instance(0), ServingConfig(workers=2)
        ) as server:
            answer = server.search("s1", "transactions", QUERY, level=1)
        assert {str(obj.key) for obj in answer.originals} == {
            "transactions.inventory.a32"
        }
