"""Tests for the structured event journal and the slow-query log."""

import io
import json
import time

import pytest

from repro.core import Quepa
from repro.network import RealRuntime, centralized_profile
from repro.obs import SEVERITIES, EventJournal

QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"


# ---------------------------------------------------------------------------
# The journal itself
# ---------------------------------------------------------------------------


class TestEventJournal:
    def test_emit_assigns_monotonic_seq(self):
        journal = EventJournal()
        a = journal.emit("first", ts=1.0, detail="x")
        b = journal.emit("second", severity="warning", ts=2.0)
        assert (a.seq, b.seq) == (1, 2)
        assert a.attrs == {"detail": "x"}
        assert b.severity == "warning"
        assert len(journal) == 2

    def test_as_dict_is_json_ready(self):
        journal = EventJournal()
        journal.emit("k", ts=0.5, database="catalogue", n=3)
        payload = json.dumps(journal.as_dicts())
        assert "catalogue" in payload

    def test_unknown_severity_rejected(self):
        journal = EventJournal()
        with pytest.raises(ValueError):
            journal.emit("k", severity="fatal")
        with pytest.raises(ValueError):
            journal.events(min_severity="loud")
        assert SEVERITIES == ("debug", "info", "warning", "error")

    def test_ring_evicts_oldest_and_counts_drops(self):
        journal = EventJournal(max_events=3)
        for i in range(5):
            journal.emit("tick", ts=float(i), i=i)
        stats = journal.stats()
        assert stats == {
            "size": 3, "capacity": 3, "emitted": 5, "dropped": 2,
        }
        # The survivors are the newest three, oldest first.
        assert [e.attrs["i"] for e in journal.events()] == [2, 3, 4]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventJournal(max_events=0)

    def test_filters_by_kind_severity_and_limit(self):
        journal = EventJournal()
        journal.emit("slow_query", severity="warning", ts=1.0)
        journal.emit("lazy_deletion", severity="info", ts=2.0)
        journal.emit("slow_query", severity="warning", ts=3.0)
        journal.emit("broken", severity="error", ts=4.0)
        assert len(journal.events(kind="slow_query")) == 2
        assert [e.kind for e in journal.events(min_severity="warning")] == [
            "slow_query", "slow_query", "broken",
        ]
        # limit keeps the newest events.
        limited = journal.events(min_severity="warning", limit=1)
        assert [e.kind for e in limited] == ["broken"]
        assert journal.events(limit=0) == []

    def test_clear_keeps_counters(self):
        journal = EventJournal()
        journal.emit("k")
        journal.clear()
        assert len(journal) == 0
        assert journal.stats()["emitted"] == 1


class TestJsonlSink:
    def test_path_sink_mirrors_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = EventJournal()
        journal.attach_sink(str(path))
        journal.emit("slow_query", severity="warning", ts=1.5, database="d")
        journal.emit("done", ts=2.0)
        journal.close_sink()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "slow_query"
        assert first["attrs"]["database"] == "d"

    def test_sink_appends_across_attachments(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = EventJournal()
        journal.attach_sink(str(path))
        journal.emit("a")
        journal.close_sink()
        journal.attach_sink(str(path))
        journal.emit("b")
        journal.close_sink()
        assert len(path.read_text().splitlines()) == 2

    def test_caller_owned_file_object_not_closed(self):
        buffer = io.StringIO()
        journal = EventJournal()
        journal.attach_sink(buffer)
        journal.emit("k", ts=1.0)
        journal.close_sink()
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["kind"] == "k"

    def test_events_before_attach_are_not_mirrored(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = EventJournal()
        journal.emit("early")
        journal.attach_sink(str(path))
        journal.emit("late")
        journal.close_sink()
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["late"]


# ---------------------------------------------------------------------------
# Pipeline wiring
# ---------------------------------------------------------------------------


class TestPipelineEvents:
    def test_augmentation_completed_event(self, mini_quepa):
        answer = mini_quepa.augmented_search("transactions", QUERY, level=1)
        events = mini_quepa.obs.events.events(kind="augmentation_completed")
        assert len(events) == 1
        event = events[0]
        assert event.severity == "info"
        assert event.attrs["database"] == "transactions"
        assert event.attrs["level"] == 1
        assert event.attrs["augmenter"] == answer.stats.augmenter
        assert event.attrs["elapsed_s"] == answer.stats.elapsed
        assert event.attrs["queries"] == answer.stats.queries_issued

    def test_slow_query_log_off_by_default(self, mini_quepa):
        assert mini_quepa.obs.slow_query_threshold is None
        mini_quepa.augmented_search("transactions", QUERY, level=1)
        assert mini_quepa.obs.events.events(kind="slow_query") == []

    def test_slow_query_captured_with_query_text(
        self, mini_polystore, mini_aindex
    ):
        """Acceptance: a deliberately slow store call lands in the journal
        with the store name, the native query text and the elapsed time."""
        profile = centralized_profile(list(mini_polystore))
        quepa = Quepa(
            mini_polystore, mini_aindex, runtime=RealRuntime(profile)
        )
        quepa.obs.slow_query_threshold = 0.01
        store = mini_polystore.database("transactions")
        original = store.execute

        def slow_execute(query):
            time.sleep(0.03)
            return original(query)

        store.execute = slow_execute
        quepa.augmented_search("transactions", QUERY, level=1)
        slow = quepa.obs.events.events(kind="slow_query")
        assert slow, "the slowed store call must be journaled"
        by_database = {event.attrs["database"] for event in slow}
        assert "transactions" in by_database
        local = next(
            e for e in slow if e.attrs["database"] == "transactions"
        )
        assert local.severity == "warning"
        assert "SELECT * FROM inventory" in local.attrs["query"]
        assert local.attrs["elapsed_s"] >= 0.01

    def test_virtual_slow_query_threshold_uses_virtual_time(self, mini_quepa):
        """Under the virtual runtime the threshold compares *virtual*
        elapsed store time, so the log is deterministic."""
        mini_quepa.obs.slow_query_threshold = 0.0  # everything is "slow"
        mini_quepa.augmented_search("transactions", QUERY, level=1)
        slow = mini_quepa.obs.events.events(kind="slow_query")
        assert len(slow) >= 1
        for event in slow:
            assert event.attrs["database"]
            assert event.attrs["elapsed_s"] >= 0.0
            assert isinstance(event.attrs["query"], str)
