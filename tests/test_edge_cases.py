"""Edge cases across subsystems that deserve explicit regression tests."""

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.errors import NotAugmentableError, TrainingError
from repro.model.objects import GlobalKey
from repro.stores import RelationalStore
from repro.stores.relational.types import Column, ColumnType, TableSchema

K = GlobalKey.parse


@pytest.fixture
def sql_store() -> RelationalStore:
    store = RelationalStore()
    store.database_name = "db"
    store.create_table(
        "t",
        TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("name", ColumnType.TEXT),
                Column("price", ColumnType.FLOAT),
            ],
            primary_key="id",
        ),
    )
    rows = [
        ("k1", "100% wool", 1.5),
        ("k2", "50_50 blend", 2.5),
        ("k3", "it's complicated", None),
        ("k4", "plain", 0.0),
    ]
    for id_, name, price in rows:
        store.insert_row("t", {"id": id_, "name": name, "price": price})
    return store


class TestSqlStringEdgeCases:
    def test_like_percent_is_literal_when_escaped_by_position(self, sql_store):
        """'100%' contains a literal % — LIKE '100%%...' style escaping
        is not in the subset, but a leading-anchor pattern still works."""
        rows = sql_store.sql("SELECT id FROM t WHERE name LIKE '100%'")
        assert [r["id"] for r in rows] == ["k1"]

    def test_like_underscore_matches_single_char(self, sql_store):
        rows = sql_store.sql("SELECT id FROM t WHERE name LIKE '50_50%'")
        assert [r["id"] for r in rows] == ["k2"]

    def test_like_pattern_with_regex_metacharacters(self, sql_store):
        """Dots, parens etc. in patterns are literals, not regex."""
        sql_store.insert_row("t", {"id": "k5", "name": "a.b(c)", "price": 1.0})
        rows = sql_store.sql("SELECT id FROM t WHERE name LIKE 'a.b(c)'")
        assert [r["id"] for r in rows] == ["k5"]
        rows = sql_store.sql("SELECT id FROM t WHERE name LIKE 'aXb(c)'")
        assert rows == []

    def test_quoted_apostrophe_round_trip(self, sql_store):
        rows = sql_store.sql(
            "SELECT id FROM t WHERE name = 'it''s complicated'"
        )
        assert [r["id"] for r in rows] == ["k3"]

    def test_float_comparison_and_zero(self, sql_store):
        rows = sql_store.sql("SELECT id FROM t WHERE price = 0")
        assert [r["id"] for r in rows] == ["k4"]

    def test_arithmetic_with_floats(self, sql_store):
        row = sql_store.sql(
            "SELECT price * 2 AS double FROM t WHERE id = 'k2'"
        )[0]
        assert row["double"] == 5.0

    def test_scientific_notation_literal(self, sql_store):
        rows = sql_store.sql("SELECT id FROM t WHERE price < 1e1")
        assert len(rows) == 3  # NULL price excluded


class TestValidatorEdgeCases:
    def test_rewrite_preserves_order_and_limit(self, mini_quepa):
        store = mini_quepa.polystore.database("transactions")
        from repro.core.validator import Validator

        result = Validator().validate(
            store,
            "SELECT name FROM inventory ORDER BY price DESC LIMIT 2",
        )
        assert result.rewritten
        rows = store.sql(result.query)
        assert len(rows) == 2
        assert "id" in rows[0]

    def test_update_statement_rejected(self, mini_quepa):
        with pytest.raises(NotAugmentableError):
            mini_quepa.augmented_search(
                "transactions", "UPDATE inventory SET price = 0"
            )

    def test_level_zero_empty_answer(self, mini_quepa):
        answer = mini_quepa.augmented_search(
            "transactions", "SELECT * FROM inventory WHERE id = 'none'"
        )
        assert answer.originals == []
        assert answer.augmented == []

    def test_results_without_index_entries_augment_to_nothing(
        self, mini_quepa
    ):
        """a33 has no p-relations: present locally, no augmentation."""
        answer = mini_quepa.augmented_search(
            "transactions", "SELECT * FROM inventory WHERE id = 'a33'"
        )
        assert len(answer.originals) == 1
        assert answer.augmented == []


class TestAugmentationEdgeCases:
    def test_min_probability_filters_plan_and_answer(self, mini_quepa):
        config = AugmentationConfig(min_probability=0.8)
        mini_quepa.config = config
        answer = mini_quepa.augmented_search(
            "transactions",
            "SELECT * FROM inventory WHERE name LIKE '%wish%'",
        )
        assert {str(k) for k in answer.augmented_keys()} == {
            "catalogue.albums.d1"
        }

    def test_high_level_converges_to_component(self, mini_quepa):
        """Beyond the component diameter, higher levels add nothing."""
        a = mini_quepa.augmented_search(
            "transactions",
            "SELECT * FROM inventory WHERE name LIKE '%wish%'",
            level=5,
        )
        b = mini_quepa.augmented_search(
            "transactions",
            "SELECT * FROM inventory WHERE name LIKE '%wish%'",
            level=50,
        )
        assert {str(k) for k in a.augmented_keys()} == {
            str(k) for k in b.augmented_keys()
        }

    def test_batch_size_larger_than_plan(self, mini_quepa):
        config = AugmentationConfig(augmenter="batch", batch_size=10_000)
        answer = mini_quepa.augmented_search(
            "transactions",
            "SELECT * FROM inventory WHERE name LIKE '%wish%'",
            config=config,
        )
        assert len(answer.augmented) == 3

    def test_threads_larger_than_work(self, mini_quepa):
        config = AugmentationConfig(augmenter="outer", threads_size=64)
        answer = mini_quepa.augmented_search(
            "transactions",
            "SELECT * FROM inventory WHERE name LIKE '%wish%'",
            config=config,
        )
        assert len(answer.augmented) == 3


class TestOptimizerEdgeCases:
    def test_retrain_failure_keeps_previous_models(self):
        from repro.core.runlog import QueryFeatures, RunRecord
        from repro.optimizer import AdaptiveOptimizer, RunLogRepository

        logs = RunLogRepository()

        def record(planned, augmenter, elapsed):
            features = QueryFeatures(
                "relational", "db", 0, planned // 10, planned, 4,
                "centralized",
            )
            return RunRecord(features, augmenter, 64, 4, 1024, elapsed)

        logs.add(record(10, "sequential", 0.1))
        logs.add(record(1000, "batch", 0.1))
        optimizer = AdaptiveOptimizer(logs, retrain_every=1)
        optimizer.train()
        t1_before = optimizer.t1
        # New logs collapse to a single signature -> retrain would fail;
        # the optimizer must keep serving the previous models.
        logs.clear()
        logs.add(record(10, "sequential", 0.1))
        features = QueryFeatures(
            "relational", "db", 0, 1, 10, 4, "centralized"
        )
        config = optimizer.configure(features, 1024)
        assert optimizer.t1 is t1_before
        assert config.augmenter in ("sequential", "batch")

    def test_training_on_empty_logs_raises(self):
        from repro.optimizer import AdaptiveOptimizer, RunLogRepository

        with pytest.raises(TrainingError):
            AdaptiveOptimizer(RunLogRepository()).train()


class TestGraphEdgeCases:
    def test_self_loop_edges_allowed_and_traversable(self):
        from repro.stores import GraphStore

        graph = GraphStore()
        graph.create_node("N", node_id="a")
        graph.create_edge("a", "E", "a")
        assert [n.id for n in graph.neighbors("a")] == ["a"]

    def test_parallel_edges_counted_separately(self):
        from repro.stores import GraphStore

        graph = GraphStore()
        graph.create_node("N", node_id="a")
        graph.create_node("N", node_id="b")
        graph.create_edge("a", "E", "b")
        graph.create_edge("a", "E", "b")
        assert graph.edge_count() == 2
        # neighbors deduplicates nodes even with parallel edges.
        assert [n.id for n in graph.neighbors("a", "E")] == ["b"]
