"""Tests for the Quepa facade: configuration, logging, lazy deletion."""

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.errors import NotAugmentableError
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation
from repro.network import RealRuntime, centralized_profile

K = GlobalKey.parse
QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"


class TestSearchPlumbing:
    def test_no_augment_mode_runs_only_local_query(self, mini_quepa):
        answer = mini_quepa.augmented_search(
            "transactions", QUERY, augment=False
        )
        assert len(answer.originals) == 1
        assert answer.augmented == []
        assert mini_quepa.runtime.meter.total_queries == 1

    def test_stats_filled(self, mini_quepa):
        answer = mini_quepa.augmented_search("transactions", QUERY, level=0)
        stats = answer.stats
        assert stats.database == "transactions"
        assert stats.level == 0
        assert stats.original_count == 1
        assert stats.augmented_count == 3
        assert stats.planned_fetches == 3
        assert stats.queries_issued >= 2
        assert stats.elapsed > 0
        assert stats.augmenter == "sequential"

    def test_invalid_query_raises_before_any_store_access(self, mini_quepa):
        with pytest.raises(NotAugmentableError):
            mini_quepa.augmented_search(
                "transactions", "SELECT COUNT(*) FROM inventory"
            )

    def test_rewritten_query_still_augments(self, mini_quepa):
        answer = mini_quepa.augmented_search(
            "transactions",
            "SELECT name FROM inventory WHERE name LIKE '%wish%'",
        )
        assert answer.stats.rewritten is True
        assert len(answer.augmented) == 3

    def test_explicit_config_wins(self, mini_quepa):
        config = AugmentationConfig(augmenter="batch", batch_size=7)
        answer = mini_quepa.augmented_search(
            "transactions", QUERY, config=config
        )
        assert answer.stats.augmenter == "batch"
        assert answer.stats.batch_size == 7

    def test_cache_resized_to_config(self, mini_quepa):
        config = AugmentationConfig(augmenter="sequential", cache_size=5)
        mini_quepa.augmented_search("transactions", QUERY, config=config)
        assert mini_quepa.cache.capacity == 5

    def test_run_listeners_receive_records(self, mini_quepa):
        records = []
        mini_quepa.run_listeners.append(records.append)
        mini_quepa.augmented_search("transactions", QUERY, level=1)
        assert len(records) == 1
        record = records[0]
        assert record.features.engine == "relational"
        assert record.features.level == 1
        assert record.elapsed > 0
        assert mini_quepa.last_record is record

    def test_optimizer_hook_consulted(self, mini_polystore, mini_aindex):
        calls = []

        class FakeOptimizer:
            def configure(self, features, current_cache_size):
                calls.append((features, current_cache_size))
                return AugmentationConfig(augmenter="batch", batch_size=3)

        quepa = Quepa(
            mini_polystore,
            mini_aindex,
            profile=centralized_profile(list(mini_polystore)),
            optimizer=FakeOptimizer(),
        )
        answer = quepa.augmented_search("transactions", QUERY)
        assert answer.stats.augmenter == "batch"
        features, cache_size = calls[0]
        assert features.store_count == 4
        assert features.planned_fetches == 3

    def test_real_runtime_produces_same_answer(self, mini_polystore, mini_aindex):
        profile = centralized_profile(list(mini_polystore))
        virtual = Quepa(mini_polystore, mini_aindex, profile=profile)
        real = Quepa(
            mini_polystore,
            mini_aindex,
            profile=profile,
            runtime=RealRuntime(profile),
        )
        config = AugmentationConfig(augmenter="outer_batch", batch_size=2,
                                    threads_size=4)
        one = virtual.augmented_search("transactions", QUERY, config=config)
        two = real.augmented_search("transactions", QUERY, config=config)
        assert {str(k) for k in one.augmented_keys()} == {
            str(k) for k in two.augmented_keys()
        }
        assert two.stats.elapsed >= 0


class TestLazyDeletion:
    def test_missing_object_removed_from_index(self, mini_quepa):
        """Section III-C.b: objects found missing vanish from the index."""
        ghost = K("catalogue.albums.ghost")
        mini_quepa.aindex.add(
            PRelation.identity(K("transactions.inventory.a32"), ghost, 0.95)
        )
        assert ghost in mini_quepa.aindex
        answer = mini_quepa.augmented_search("transactions", QUERY)
        assert ghost not in mini_quepa.aindex
        assert answer.stats.missing_objects == 1
        assert str(ghost) not in {str(k) for k in answer.augmented_keys()}

    def test_object_deleted_from_store_disappears(self, mini_quepa):
        store = mini_quepa.polystore.database("catalogue")
        store.delete_one("albums", "d1")
        answer = mini_quepa.augmented_search("transactions", QUERY)
        assert "catalogue.albums.d1" not in {
            str(k) for k in answer.augmented_keys()
        }
        # Lazy deletion removed the node, so the next plan is smaller.
        second = mini_quepa.augmented_search("transactions", QUERY)
        assert second.stats.planned_fetches < 3


class TestAugmentObject:
    def test_single_object_augmentation(self, mini_quepa):
        links = mini_quepa.augment_object(K("transactions.inventory.a32"))
        assert len(links) == 3
        assert links[0].probability >= links[-1].probability

    def test_get_utility(self, mini_quepa):
        obj = mini_quepa.get(K("catalogue.albums.d1"))
        assert obj.value["title"] == "Wish"
