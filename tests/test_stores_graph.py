"""Tests for the property-graph store."""

import pytest

from repro.errors import KeyNotFoundError, QueryError
from repro.stores import GraphStore


@pytest.fixture
def store() -> GraphStore:
    g = GraphStore()
    g.database_name = "similar"
    for i in range(1, 6):
        g.create_node("Item", {"title": f"t{i}", "rank": i}, node_id=f"i{i}")
    g.create_node(("Artist", "Person"), {"name": "Cure"}, node_id="ar1")
    g.create_edge("i1", "SIMILAR", "i2", {"weight": 0.9})
    g.create_edge("i2", "SIMILAR", "i3", {"weight": 0.5})
    g.create_edge("i3", "SIMILAR", "i4")
    g.create_edge("ar1", "MADE", "i1")
    return g


class TestWrites:
    def test_create_node_autogenerates_id(self, store):
        node = store.create_node("Item", {"title": "x"})
        assert node.id.startswith("n")

    def test_duplicate_node_id_rejected(self, store):
        with pytest.raises(QueryError):
            store.create_node("Item", node_id="i1")

    def test_edge_requires_endpoints(self, store):
        with pytest.raises(KeyNotFoundError):
            store.create_edge("i1", "SIMILAR", "missing")

    def test_delete_node_removes_incident_edges(self, store):
        assert store.delete_node("i2") is True
        assert store.delete_node("i2") is False
        assert [n.id for n in store.neighbors("i1", "SIMILAR")] == []
        assert [n.id for n in store.neighbors("i3", direction="in")] == []

    def test_counts(self, store):
        assert store.node_count() == 6
        assert store.edge_count() == 4


class TestReads:
    def test_match_by_label(self, store):
        assert len(store.match("Item")) == 5

    def test_match_secondary_label(self, store):
        assert [n.id for n in store.match("Person")] == ["ar1"]

    def test_match_with_properties(self, store):
        assert [n.id for n in store.match("Item", {"rank": 3})] == ["i3"]

    def test_match_limit(self, store):
        assert len(store.match("Item", limit=2)) == 2

    def test_neighbors_out(self, store):
        assert [n.id for n in store.neighbors("i2", direction="out")] == ["i3"]

    def test_neighbors_in(self, store):
        assert [n.id for n in store.neighbors("i2", direction="in")] == ["i1"]

    def test_neighbors_both_dedup(self, store):
        ids = {n.id for n in store.neighbors("i2")}
        assert ids == {"i1", "i3"}

    def test_neighbors_filter_by_type(self, store):
        assert [n.id for n in store.neighbors("i1", "MADE")] == ["ar1"]

    def test_traverse_depth(self, store):
        one_hop = {n.id for n in store.traverse("i1", 1, "SIMILAR")}
        two_hop = {n.id for n in store.traverse("i1", 2, "SIMILAR")}
        assert one_hop == {"i2"}
        assert two_hop == {"i2", "i3"}

    def test_shortest_path(self, store):
        assert store.shortest_path("i1", "i4") == ["i1", "i2", "i3", "i4"]
        assert store.shortest_path("i1", "i1") == ["i1"]
        assert store.shortest_path("i1", "i5") is None

    def test_node_missing_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.node("zz")


class TestStoreContract:
    def test_execute_match(self, store):
        objects = store.execute({"op": "match", "label": "Item", "limit": 3})
        assert all(o.key.collection == "Item" for o in objects)

    def test_execute_neighbors(self, store):
        objects = store.execute({"op": "neighbors", "node": "i2"})
        assert {o.key.key for o in objects} == {"i1", "i3"}

    def test_execute_traverse(self, store):
        objects = store.execute(
            {"op": "traverse", "node": "i1", "depth": 2, "rel_type": "SIMILAR"}
        )
        assert {o.key.key for o in objects} == {"i2", "i3"}

    def test_execute_unknown_op_raises(self, store):
        with pytest.raises(QueryError):
            store.execute({"op": "zap"})

    def test_execute_non_dict_raises(self, store):
        with pytest.raises(QueryError):
            store.execute("MATCH (n)")

    def test_get_value_includes_labels(self, store):
        payload = store.get_value("Item", "i1")
        assert payload["_labels"] == ["Item"]
        assert payload["title"] == "t1"

    def test_get_value_wrong_label_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get_value("Artist", "i1")

    def test_collections_are_labels(self, store):
        assert store.collections() == ["Artist", "Item", "Person"]

    def test_collection_keys(self, store):
        assert list(store.collection_keys("Artist")) == ["ar1"]
