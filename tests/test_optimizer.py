"""Tests for the run-log repository, ADAPTIVE, HUMAN and RANDOM."""

import pytest

from repro.core.augmentation import AugmentationConfig
from repro.core.runlog import QueryFeatures, RunRecord
from repro.errors import NotTrainedError, TrainingError
from repro.optimizer import (
    AdaptiveOptimizer,
    HumanOptimizer,
    RandomOptimizer,
    RunLogRepository,
)
from repro.optimizer.baselines import BATCH_SIZES, CACHE_SIZES, THREADS_SIZES


def features(
    engine="relational",
    level=0,
    original=100,
    planned=500,
    stores=7,
    deployment="centralized",
) -> QueryFeatures:
    return QueryFeatures(
        engine=engine,
        database="transactions",
        level=level,
        original_count=original,
        planned_fetches=planned,
        store_count=stores,
        deployment=deployment,
    )


def record(
    f: QueryFeatures,
    augmenter: str,
    elapsed: float,
    batch_size=64,
    threads_size=4,
    cache_size=1024,
) -> RunRecord:
    return RunRecord(
        features=f,
        augmenter=augmenter,
        batch_size=batch_size,
        threads_size=threads_size,
        cache_size=cache_size,
        elapsed=elapsed,
    )


class TestRunLogRepository:
    def test_listener_form(self):
        repo = RunLogRepository()
        repo(record(features(), "batch", 1.0))
        assert len(repo) == 1

    def test_best_runs_pick_fastest_per_signature(self):
        repo = RunLogRepository()
        f = features()
        repo.add(record(f, "sequential", 9.0))
        repo.add(record(f, "batch", 1.0))
        repo.add(record(f, "outer", 4.0))
        best = repo.best_runs()
        assert len(best) == 1
        assert best[0].augmenter == "batch"

    def test_different_signatures_kept_separate(self):
        repo = RunLogRepository()
        repo.add(record(features(original=10), "sequential", 0.1))
        repo.add(record(features(original=10000), "batch", 2.0))
        assert len(repo.best_runs()) == 2

    def test_augmenter_examples_labelled_by_winner(self):
        repo = RunLogRepository()
        f = features()
        repo.add(record(f, "sequential", 9.0))
        repo.add(record(f, "outer_batch", 1.0))
        examples = repo.augmenter_examples()
        assert len(examples) == 1
        assert examples[0].target == "outer_batch"
        assert examples[0].features["planned_fetches"] == 500

    def test_batch_examples_only_from_batching_winners(self):
        repo = RunLogRepository()
        repo.add(record(features(original=1), "sequential", 0.1))
        repo.add(record(features(original=2), "batch", 0.1, batch_size=256))
        examples = repo.batch_size_examples()
        assert len(examples) == 1
        assert examples[0].target == 256

    def test_threads_examples_only_from_concurrent_winners(self):
        repo = RunLogRepository()
        repo.add(record(features(original=1), "batch", 0.1))
        repo.add(record(features(original=2), "outer", 0.1, threads_size=16))
        examples = repo.threads_size_examples()
        assert len(examples) == 1
        assert examples[0].target == 16

    def test_runs_per_signature(self):
        repo = RunLogRepository()
        f = features()
        repo.add(record(f, "batch", 1.0))
        repo.add(record(f, "outer", 2.0))
        assert list(repo.runs_per_signature().values()) == [2]

    def test_clear(self):
        repo = RunLogRepository()
        repo.add(record(features(), "batch", 1.0))
        repo.clear()
        assert len(repo) == 0


def trained_optimizer() -> AdaptiveOptimizer:
    """Logs where small queries favour sequential, big ones batching."""
    repo = RunLogRepository()
    for planned in (10, 20, 30):
        f = features(original=planned // 10, planned=planned)
        repo.add(record(f, "sequential", 0.01))
        repo.add(record(f, "outer_batch", 0.05))
    for planned in (5000, 8000, 12000):
        f = features(original=planned // 10, planned=planned)
        repo.add(record(f, "sequential", 9.0))
        repo.add(
            record(f, "outer_batch", 0.5, batch_size=256, threads_size=16)
        )
    optimizer = AdaptiveOptimizer(repo)
    optimizer.train()
    return optimizer


class TestAdaptive:
    def test_training_report(self):
        optimizer = trained_optimizer()
        report = optimizer.report
        assert report.signatures == 6
        assert report.t1_examples == 6
        assert report.t1_accuracy == 1.0

    def test_prediction_follows_learned_rule(self):
        optimizer = trained_optimizer()
        small = optimizer.configure(
            features(original=2, planned=15), current_cache_size=1024
        )
        big = optimizer.configure(
            features(original=900, planned=9000), current_cache_size=1024
        )
        assert small.augmenter == "sequential"
        assert big.augmenter == "outer_batch"
        assert big.batch_size >= 64
        assert big.threads_size >= 4

    def test_untrained_returns_fallback(self):
        optimizer = AdaptiveOptimizer(
            fallback=AugmentationConfig(augmenter="outer")
        )
        config = optimizer.configure(features(), current_cache_size=0)
        assert config.augmenter == "outer"

    def test_train_needs_two_signatures(self):
        repo = RunLogRepository()
        repo.add(record(features(), "batch", 1.0))
        with pytest.raises(TrainingError):
            AdaptiveOptimizer(repo).train()

    def test_cache_smoothing_formula(self):
        """current + (predicted - current) / 10, per Section V."""
        assert AdaptiveOptimizer.smooth_cache_size(1000, 2000) == 1100
        assert AdaptiveOptimizer.smooth_cache_size(1000, 0) == 900
        assert AdaptiveOptimizer.smooth_cache_size(0, 5) == 0  # rounds to 0
        assert AdaptiveOptimizer.smooth_cache_size(0, 50) == 5

    def test_describe_renders_t1(self):
        optimizer = trained_optimizer()
        assert "->" in optimizer.describe()

    def test_describe_untrained_raises(self):
        with pytest.raises(NotTrainedError):
            AdaptiveOptimizer().describe()

    def test_periodic_retraining(self):
        optimizer = trained_optimizer()
        optimizer.retrain_every = 2
        trained_at = optimizer._trained_at
        f = features(original=3, planned=33)
        optimizer.logs.add(record(f, "sequential", 0.01))
        optimizer.logs.add(record(f, "batch", 0.5))
        optimizer.configure(features(), current_cache_size=0)
        assert optimizer._trained_at > trained_at


class TestBaselines:
    def test_human_small_answers_sequential(self):
        config = HumanOptimizer().configure(
            features(planned=10), current_cache_size=100
        )
        assert config.augmenter == "sequential"
        assert config.threads_size == 1

    def test_human_batches_harder_when_distributed(self):
        human = HumanOptimizer()
        near = human.configure(
            features(planned=5000, deployment="centralized"), 100
        )
        far = human.configure(
            features(planned=5000, deployment="distributed"), 100
        )
        assert far.batch_size > near.batch_size

    def test_human_threads_scale_with_work(self):
        human = HumanOptimizer()
        small = human.configure(features(planned=100, stores=7), 100)
        large = human.configure(features(planned=50000, stores=7), 100)
        assert large.threads_size > small.threads_size

    def test_random_is_seeded_and_on_grid(self):
        one = RandomOptimizer(seed=5)
        two = RandomOptimizer(seed=5)
        for __ in range(10):
            a = one.configure(features(), 100)
            b = two.configure(features(), 100)
            assert (a.augmenter, a.batch_size, a.threads_size, a.cache_size) == (
                b.augmenter, b.batch_size, b.threads_size, b.cache_size
            )
            assert a.batch_size in BATCH_SIZES
            assert a.threads_size in THREADS_SIZES
            assert a.cache_size in CACHE_SIZES

    def test_random_varies_across_calls(self):
        optimizer = RandomOptimizer(seed=1)
        configs = {
            optimizer.configure(features(), 100).augmenter for __ in range(30)
        }
        assert len(configs) > 1
