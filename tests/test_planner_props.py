"""Plan-equivalence properties of the cost-based cross-store planner.

The planner's core invariant (docs/PLANNING.md): every enumerated
physical plan of a logical query — push-down through the connectors,
collect-and-join, ETL cast, multi-model import — returns a
*bit-identical* result set. Strategies may only disagree on cost.

The suite executes EVERY admissible plan for a mix of queries across
three generator seeds and compares :func:`answer_signature`
fingerprints exactly (keys, payloads, probabilities bit-for-bit, ranked
order). A second group checks degraded mode: with one store down —
always-fail fault or a tripped circuit breaker — every surviving plan
skips that store the same way and the answers still agree.
"""

from __future__ import annotations

import pytest

from repro.core import Quepa
from repro.faults import FaultInjector, ResilienceConfig, ResilienceManager
from repro.planner import (
    FederatedEngine,
    LogicalQuery,
    answer_signature,
)
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony

#: Budget high enough that no strategy is rejected or OOMs — equivalence
#: is about answers, not admission.
BIG_BUDGET = 10_000_000

SEEDS = (3, 11, 27)

ALL_STRATEGIES = {
    "pushdown:sequential",
    "pushdown:batch",
    "pushdown:outer_batch",
    "collect_join",
    "etl_cast",
    "multimodel_import",
}

_BUNDLES: dict[int, object] = {}


def bundle_for(seed: int):
    bundle = _BUNDLES.get(seed)
    if bundle is None:
        bundle = build_polyphony(
            stores=4, scale=PolystoreScale(n_albums=100), seed=seed
        )
        _BUNDLES[seed] = bundle
    return bundle


def make_engine(bundle, **kwargs):
    kwargs.setdefault("memory_budget", BIG_BUDGET)
    return FederatedEngine(bundle.polystore, bundle.aindex, **kwargs)


def assert_equivalent(results):
    """All plan results carry the same answer fingerprint."""
    assert results, "no plan executed"
    signatures = {
        strategy: result.signature() for strategy, result in results.items()
    }
    reference = next(iter(signatures.values()))
    mismatched = [
        strategy
        for strategy, signature in signatures.items()
        if signature != reference
    ]
    assert not mismatched, f"plans disagree with the rest: {mismatched}"
    return reference


class TestPlanEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_all_plans_bit_identical(self, seed, level):
        bundle = bundle_for(seed)
        engine = make_engine(bundle)
        query = QueryWorkload(bundle).query("catalogue", 15)
        logical = LogicalQuery(
            database=query.database, query=query.query, level=level
        )
        results = engine.execute_all(logical)
        assert set(results) == ALL_STRATEGIES
        assert all(not r.out_of_memory for r in results.values())
        assert all(not r.degraded for r in results.values())
        reference = assert_equivalent(results)
        originals, augmented = reference
        assert len(originals) == 15
        # Level 0 already augments with direct neighbours (Definition 5).
        assert len(augmented) > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_relational_seed_database(self, seed):
        bundle = bundle_for(seed)
        engine = make_engine(bundle)
        query = QueryWorkload(bundle).query("transactions", 10)
        logical = LogicalQuery(
            database=query.database, query=query.query, level=1
        )
        assert_equivalent(engine.execute_all(logical))

    def test_pushdown_matches_quepa_search(self):
        """The pushdown plan IS the classic QUEPA path: same answer."""
        bundle = bundle_for(3)
        engine = make_engine(bundle)
        query = QueryWorkload(bundle).query("catalogue", 20)
        logical = LogicalQuery(
            database=query.database, query=query.query, level=1
        )
        execution = engine.execute(logical, strategy="pushdown:sequential")
        quepa = Quepa(bundle.polystore, bundle.aindex)
        answer = quepa.augmented_search(query.database, query.query, level=1)
        assert execution.result.signature() == answer_signature(answer)

    def test_targets_restrict_augmentation_consistently(self):
        bundle = bundle_for(3)
        engine = make_engine(bundle)
        query = QueryWorkload(bundle).query("catalogue", 20)
        logical = LogicalQuery(
            database=query.database,
            query=query.query,
            level=1,
            targets=("discount",),
        )
        results = engine.execute_all(logical)
        __, augmented = assert_equivalent(results)
        assert augmented, "expected discount augmentation"
        assert all(key.startswith("discount.") for key, *__ in augmented)

    def test_min_probability_floor_consistently_applied(self):
        bundle = bundle_for(3)
        engine = make_engine(bundle)
        query = QueryWorkload(bundle).query("catalogue", 20)
        results = engine.execute_all(
            LogicalQuery(
                database=query.database,
                query=query.query,
                level=2,
                min_probability=0.6,
            )
        )
        __, augmented = assert_equivalent(results)
        assert all(probability >= 0.6 for __, probability, __ in augmented)

    def test_forced_strategy_equals_execute_all_entry(self):
        bundle = bundle_for(3)
        engine = make_engine(bundle)
        query = QueryWorkload(bundle).query("catalogue", 10)
        logical = LogicalQuery(
            database=query.database, query=query.query, level=1
        )
        all_results = engine.execute_all(logical)
        for strategy in sorted(ALL_STRATEGIES):
            execution = engine.execute(logical, strategy=strategy)
            assert execution.chosen == strategy
            assert (
                execution.result.signature()
                == all_results[strategy].signature()
            )


class TestDegradedEquivalence:
    """One store down: every surviving plan agrees on the smaller answer."""

    def _down_database(self, bundle, query):
        """A target database the plan actually fetches from."""
        engine = make_engine(bundle)
        qctx = engine.prepare(
            LogicalQuery(database=query.database, query=query.query, level=2)
        )
        by_database = qctx.fetches_by_database()
        by_database.pop(query.database, None)
        assert by_database, "query plans no cross-store fetches"
        return max(by_database, key=by_database.get)

    def test_always_fail_fault_keeps_plans_equivalent(self):
        bundle = bundle_for(3)
        query = QueryWorkload(bundle).query("catalogue", 20)
        down = self._down_database(bundle, query)
        faults = FaultInjector(seed=7)
        faults.inject(down, "fail", rate=1.0)
        engine = make_engine(bundle, faults=faults, degrade=True)
        logical = LogicalQuery(
            database=query.database, query=query.query, level=2
        )
        results = engine.execute_all(logical)
        assert set(results) == ALL_STRATEGIES
        __, augmented = assert_equivalent(results)
        assert all(not key.startswith(f"{down}.") for key, *__ in augmented)
        for result in results.values():
            assert result.degraded
            assert down in result.unavailable

    def test_degraded_answer_is_subset_of_healthy_answer(self):
        bundle = bundle_for(3)
        query = QueryWorkload(bundle).query("catalogue", 20)
        down = self._down_database(bundle, query)
        logical = LogicalQuery(
            database=query.database, query=query.query, level=2
        )
        healthy = make_engine(bundle).execute(logical).result
        faults = FaultInjector(seed=7)
        faults.inject(down, "fail", rate=1.0)
        degraded = make_engine(bundle, faults=faults).execute(logical).result
        healthy_keys = {str(e.key) for e in healthy.answer.augmented}
        degraded_keys = {str(e.key) for e in degraded.answer.augmented}
        assert degraded_keys < healthy_keys
        assert any(key.startswith(f"{down}.") for key in healthy_keys)

    def test_open_breaker_keeps_plans_equivalent(self):
        bundle = bundle_for(3)
        query = QueryWorkload(bundle).query("catalogue", 20)
        down = self._down_database(bundle, query)
        manager = ResilienceManager(
            ResilienceConfig(
                retry_max_attempts=1,
                breaker_failure_threshold=1,
                breaker_recovery_timeout=1e9,
            )
        )
        # Trip the breaker before any plan runs: the store is down for
        # the whole suite of executions.
        manager.breaker(down).record_failure(0.0)
        assert manager.breaker(down).state == "open"
        engine = make_engine(bundle, resilience=manager, degrade=True)
        results = engine.execute_all(
            LogicalQuery(database=query.database, query=query.query, level=2)
        )
        assert set(results) == ALL_STRATEGIES
        __, augmented = assert_equivalent(results)
        assert all(not key.startswith(f"{down}.") for key, *__ in augmented)
        for result in results.values():
            assert result.degraded
            assert down in result.unavailable

    def test_home_store_down_yields_empty_answers_everywhere(self):
        bundle = bundle_for(3)
        query = QueryWorkload(bundle).query("catalogue", 10)
        faults = FaultInjector(seed=7)
        faults.inject(query.database, "fail", rate=1.0)
        engine = make_engine(bundle, faults=faults, degrade=True)
        results = engine.execute_all(
            LogicalQuery(database=query.database, query=query.query, level=1)
        )
        assert_equivalent(results)
        for result in results.values():
            assert result.degraded
            assert len(result.answer) == 0
