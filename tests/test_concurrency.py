"""Concurrency stress suite (``-m concurrency``, excluded from tier 1).

Many client threads hammer one shared :class:`Quepa` on the real
runtime while a writer thread mutates stores (under ``store.lock``)
and the A' index. The properties under stress:

* no request raises, and every answer is well-formed (no torn reads);
* :class:`FrozenAIndex` snapshot generations observed by any one
  thread are monotonically non-decreasing (refreeze is race-free);
* :class:`LruCache` counters stay self-consistent under a counted
  concurrent hammering (``hits + misses == gets``);
* the serving layer pushes >= 1000 concurrent requests with zero
  drops: every request is accounted completed, and totals reconcile.

Run with ``PYTHONPATH=src python -m pytest -q -m concurrency``.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import Quepa
from repro.core.cache import LruCache
from repro.model import GlobalKey, PRelation
from repro.model.objects import DataObject
from repro.network import RealRuntime, centralized_profile
from repro.serving import LoadGenerator, QuepaServer, ServingConfig
from repro.workloads import PolystoreScale, build_polyphony
from repro.workloads.queries import QueryWorkload

pytestmark = pytest.mark.concurrency

K = GlobalKey.parse


def _fresh_quepa():
    """A private bundle per test: the writer thread mutates it."""
    bundle = build_polyphony(
        stores=4, scale=PolystoreScale(n_albums=60), seed=9
    )
    profile = centralized_profile(list(bundle.polystore))
    quepa = Quepa(
        bundle.polystore,
        bundle.aindex,
        profile=profile,
        runtime=RealRuntime(profile),
    )
    return bundle, quepa


def _assert_well_formed(answer) -> None:
    """A served answer is structurally sound — never torn."""
    assert answer.stats.original_count == len(answer.originals)
    assert answer.stats.augmented_count == len(answer.augmented)
    for augmented in answer.augmented:
        assert 0.0 < augmented.probability <= 1.0
        assert augmented.path, "augmented object lost its provenance"
        assert augmented.source is not None


class _Writer:
    """Background mutator: inserts documents and grows the A' index."""

    def __init__(self, bundle, quepa) -> None:
        self.store = bundle.polystore.database("catalogue")
        self.aindex = quepa.aindex
        self.stop = threading.Event()
        self.writes = 0
        self.thread = threading.Thread(target=self._loop, daemon=True)

    def _loop(self) -> None:
        previous = None
        while not self.stop.is_set():
            i = self.writes
            doc_id = f"writer-{i}"
            with self.store.lock:
                self.store.insert(
                    "albums",
                    {"_id": doc_id, "title": f"Stress {i}", "seq": -1},
                )
            key = K(f"catalogue.albums.{doc_id}")
            if previous is not None:
                # Each add bumps the index generation, forcing readers
                # through the refreeze path over and over.
                self.aindex.add(PRelation.identity(previous, key, 0.6))
            previous = key
            self.writes += 1
            self.stop.wait(0.0005)

    def __enter__(self) -> "_Writer":
        self.thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop.set()
        self.thread.join(timeout=10)


def test_shared_quepa_survives_readers_plus_writer():
    """8 reader threads x 64 searches against a mutating polystore."""
    bundle, quepa = _fresh_quepa()
    workload = QueryWorkload(bundle)
    databases = [name for name, _ in bundle.databases]
    readers, per_reader = 8, 64
    baseline_generation = quepa.aindex.generation
    errors: list[BaseException] = []
    generation_regressions: list[tuple[int, int]] = []
    lock = threading.Lock()

    def reader(index: int) -> None:
        rng = random.Random(f"reader:{index}")
        last_generation = -1
        for _ in range(per_reader):
            database = rng.choice(databases)
            query = workload.query(
                database, rng.choice((8, 12)), variant=rng.randrange(4)
            ).query
            try:
                answer = quepa.serve_search(
                    database, query, level=rng.choice((1, 2))
                )
                _assert_well_formed(answer)
                snapshot = quepa.aindex.frozen()
                generation = snapshot.generation
                assert generation is not None
            except BaseException as exc:  # noqa: BLE001 - collected
                with lock:
                    errors.append(exc)
                return
            if generation < last_generation:
                with lock:
                    generation_regressions.append(
                        (last_generation, generation)
                    )
            last_generation = generation

    with _Writer(bundle, quepa) as writer:
        threads = [
            threading.Thread(target=reader, args=(i,))
            for i in range(readers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert not errors, f"concurrent searches raised: {errors[:3]}"
    assert not generation_regressions, (
        f"frozen generations went backwards: {generation_regressions[:3]}"
    )
    assert writer.writes > 0, "the writer thread never got a turn"
    # The writer's relations really landed while readers were active.
    assert quepa.aindex.generation > baseline_generation
    stats = quepa.cache.stats()
    assert stats["hits"] + stats["misses"] >= 0
    assert stats["size"] <= stats["capacity"]


def test_refreeze_generations_are_monotonic_under_writes():
    """Direct hammering of the refreeze path: concurrent frozen() calls
    interleaved with writes never observe a generation regression and
    never crash mid-freeze."""
    bundle, quepa = _fresh_quepa()
    aindex = quepa.aindex
    stop = threading.Event()
    errors: list[BaseException] = []
    regressions: list[tuple[int, int]] = []
    lock = threading.Lock()

    def freezer() -> None:
        last = -1
        while not stop.is_set():
            try:
                snapshot = aindex.frozen()
                generation = snapshot.generation
                # The snapshot must be internally consistent: its CSR
                # arrays were built under the index mutex.
                assert generation is not None
            except BaseException as exc:  # noqa: BLE001 - collected
                with lock:
                    errors.append(exc)
                return
            if generation < last:
                with lock:
                    regressions.append((last, generation))
            last = generation

    def mutator() -> None:
        previous = K("catalogue.albums.freeze-0")
        for i in range(1, 400):
            key = K(f"catalogue.albums.freeze-{i}")
            try:
                aindex.add(PRelation.matching(previous, key, 0.5))
            except BaseException as exc:  # noqa: BLE001 - collected
                with lock:
                    errors.append(exc)
                return
            previous = key
        stop.set()

    freezers = [threading.Thread(target=freezer) for _ in range(6)]
    writer = threading.Thread(target=mutator)
    for thread in freezers:
        thread.start()
    writer.start()
    writer.join(timeout=60)
    stop.set()
    for thread in freezers:
        thread.join(timeout=10)

    assert not errors, f"refreeze raced: {errors[:3]}"
    assert not regressions
    assert aindex.frozen().generation == aindex.generation


def test_lru_cache_counters_self_consistent_under_hammering():
    """``hits + misses`` equals the exact number of get() calls issued,
    even with concurrent putters evicting entries."""
    cache = LruCache(capacity=64)
    threads_n, gets_per_thread = 8, 2000
    keys = [K(f"db.coll.k{i}") for i in range(256)]
    objects = {
        key: DataObject(key=key, value={"i": i})
        for i, key in enumerate(keys)
    }
    errors: list[BaseException] = []
    lock = threading.Lock()

    def hammer(index: int) -> None:
        rng = random.Random(index)
        try:
            for _ in range(gets_per_thread):
                key = keys[rng.randrange(len(keys))]
                if cache.get(key) is None:
                    cache.put(objects[key])
        except BaseException as exc:  # noqa: BLE001 - collected
            with lock:
                errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(i,))
        for i in range(threads_n)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    stats = cache.stats()
    assert stats["hits"] + stats["misses"] == threads_n * gets_per_thread
    assert stats["size"] <= stats["capacity"]
    shard_hits = sum(s["hits"] for s in stats["shards"])
    shard_misses = sum(s["misses"] for s in stats["shards"])
    assert shard_hits == stats["hits"]
    assert shard_misses == stats["misses"]


def test_serving_layer_survives_1000_concurrent_requests():
    """Acceptance: >= 1000 requests through the scheduler with zero
    drops — every submission is accounted, none fail, none tear."""
    bundle, quepa = _fresh_quepa()
    workload = QueryWorkload(bundle)
    clients, per_client = 8, 125  # 1000 requests total
    with QuepaServer(
        quepa,
        ServingConfig(workers=8, queue_capacity=2048),
    ) as server:
        generator = LoadGenerator(
            server,
            workload,
            sizes=(8, 12),
            levels=(0, 1, 2),
            seed=17,
        )
        report = generator.run(clients, per_client)
        status = server.status()

    assert report.completed == clients * per_client
    assert report.shed == 0 and report.failed == 0
    totals = status["totals"]
    assert totals["submitted"] == clients * per_client
    assert totals["completed"] == clients * per_client
    assert totals["failed"] == 0
    shed = totals["shed"]
    assert totals["submitted"] == (
        totals["admitted"]
        + shed["queue_full"]
        + shed["deadline_at_admission"]
    )
    assert totals["admitted"] == (
        totals["completed"]
        + totals["failed"]
        + shed["deadline"]
        + shed["stopped"]
    )
    # Every client saw an answer for every request (nothing dropped).
    for client_report in report.per_client:
        assert client_report.completed == per_client
        assert len(client_report.answer_sizes) == per_client
        assert all(size >= 0 for size in client_report.answer_sizes)
    assert status["latency_s"]["count"] == clients * per_client


def test_coalescing_and_hedging_survive_hot_hammering():
    """Stress the accelerator itself: a hot-query pool makes most of
    the fleet issue identical requests at once (maximal single-flight
    contention) while hedging is armed to fire on nearly every call.
    Zero drops, zero failures, ledgers reconcile."""
    bundle, quepa = _fresh_quepa()
    workload = QueryWorkload(bundle)
    clients, per_client = 8, 64
    config = ServingConfig(
        workers=8,
        queue_capacity=1024,
        coalesce=True,
        hedge=True,
        hedge_min_observations=1,
        hedge_min_delay=0.0,
    )
    with QuepaServer(quepa, config) as server:
        generator = LoadGenerator(
            server,
            workload,
            sizes=(8, 12),
            levels=(0, 1, 2),
            seed=23,
            hot_queries=6,
            hot_fraction=0.75,
        )
        report = generator.run(clients, per_client)
        status = server.status()

    assert report.completed == clients * per_client
    assert report.shed == 0 and report.failed == 0
    accelerator = status["accelerator"]
    assert accelerator is not None
    coalesce = accelerator["coalesce"]
    assert coalesce["leaders"] >= 1
    assert coalesce["wait_timeouts"] == 0, "a leader wedged"
    hedge = accelerator["hedge"]
    assert hedge["issued"] == (
        hedge["won"] + hedge["lost"] + hedge["cancelled"]
    )
    totals = status["totals"]
    assert totals["admitted"] == totals["completed"]


def test_mixed_priorities_under_stress_complete_everything():
    """Interactive and batch fleets share the pool by weight; under
    sustained full load neither class is starved or dropped."""
    bundle, quepa = _fresh_quepa()
    workload = QueryWorkload(bundle)
    config = ServingConfig(workers=4, queue_capacity=1024)
    with QuepaServer(quepa, config) as server:
        interactive = LoadGenerator(
            server, workload, sizes=(8,), levels=(0, 1), seed=31,
            priority="interactive",
        )
        batch = LoadGenerator(
            server, workload, sizes=(8,), levels=(0, 1), seed=32,
            priority="batch",
        )
        reports = {}

        def fleet(name, generator):
            reports[name] = generator.run(
                4, 40, session_prefix=name
            )

        threads = [
            threading.Thread(
                target=fleet, args=("interactive", interactive)
            ),
            threading.Thread(target=fleet, args=("batch", batch)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        status = server.status()

    for name in ("interactive", "batch"):
        assert reports[name].completed == 4 * 40, f"{name} dropped work"
        assert reports[name].failed == 0
    totals = status["totals"]
    assert totals["completed"] == 2 * 4 * 40
    assert totals["failed"] == 0
