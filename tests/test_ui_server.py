"""Tests for the HTTP server over the QUEPA API (real sockets)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.ui.server import serve

QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"


@pytest.fixture
def server(mini_quepa):
    running = serve(mini_quepa, port=0)
    yield running
    running.shutdown()


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=5) as response:
        return response.status, json.loads(response.read())


def post(server, path, body):
    data = json.dumps(body).encode()
    request = urllib.request.Request(
        server.url + path, data=data,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, json.loads(response.read())


class TestHttpEndpoints:
    def test_query_over_http(self, server):
        status, payload = post(
            server, "/query",
            {"database": "transactions", "query": QUERY},
        )
        assert status == 200
        assert len(payload["augmented"]) == 3
        assert payload["augmented"][0]["band"] == "strong"

    def test_databases_over_http(self, server):
        status, payload = get(server, "/databases")
        assert status == 200
        assert {d["name"] for d in payload["databases"]} == {
            "transactions", "catalogue", "discount", "similar",
        }

    def test_object_over_http(self, server):
        status, payload = get(server, "/object/catalogue.albums.d1")
        assert status == 200
        assert payload["value"]["title"] == "Wish"

    def test_exploration_over_http(self, server):
        __, opened = post(
            server, "/explore",
            {"database": "transactions", "query": QUERY},
        )
        sid = opened["session"]
        __, step = post(
            server, f"/explore/{sid}/select",
            {"key": "transactions.inventory.a32"},
        )
        assert step["links"][0]["key"] == "catalogue.albums.d1"
        status, closed = post(server, f"/explore/{sid}/close", {})
        assert status == 200
        assert closed["closed"] is True

    def test_error_status_codes_propagate(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            post(server, "/query", {"database": "nope", "query": QUERY})
        assert err.value.code == 404
        body = json.loads(err.value.read())
        assert body["status"] == 404

    def test_invalid_json_body_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/query", data=b"{broken",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=5)
        assert err.value.code == 400

    def test_metrics_over_http(self, server):
        post(server, "/query",
             {"database": "transactions", "query": QUERY, "level": 1})
        status, payload = get(server, "/metrics")
        assert status == 200
        names = {entry["name"] for entry in payload["metrics"]}
        assert "store_call_seconds" in names
        assert "cache_probes_total" in names

    def test_trace_over_http(self, server):
        post(server, "/query",
             {"database": "transactions", "query": QUERY, "level": 1})
        status, payload = get(server, "/trace")
        assert status == 200
        summary = payload["trace"]["summary"]
        assert len(summary["by_kind"]) >= 3
        assert summary["spans"] > 0

    def test_prometheus_scrape_over_http(self, server):
        from repro.obs import parse_prometheus_text

        post(server, "/query",
             {"database": "transactions", "query": QUERY, "level": 1})
        with urllib.request.urlopen(
            server.url + "/metrics?format=prometheus", timeout=5
        ) as response:
            assert response.status == 200
            content_type = response.headers["Content-Type"]
            body = response.read().decode("utf-8")
        # Served raw with the Prometheus content type, not as JSON.
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        names = {row["name"] for row in parse_prometheus_text(body)}
        assert "store_queries_total" in names

    def test_chrome_trace_over_http(self, server):
        post(server, "/query",
             {"database": "transactions", "query": QUERY, "level": 1})
        status, payload = get(server, "/trace?format=chrome")
        assert status == 200
        assert payload["traceEvents"]
        assert all(event["ph"] == "X" for event in payload["traceEvents"])

    def test_events_over_http(self, server):
        post(server, "/query",
             {"database": "transactions", "query": QUERY, "level": 1})
        status, payload = get(
            server, "/events?kind=augmentation_completed"
        )
        assert status == 200
        assert payload["events"]
        assert payload["events"][0]["attrs"]["database"] == "transactions"

    def test_explain_over_http(self, server):
        status, payload = post(
            server, "/explain",
            {"database": "transactions", "query": QUERY, "level": 1,
             "analyze": True},
        )
        assert status == 200
        report = payload["explain"]
        assert report["query"]["store"]["access_path"] == "full_scan"
        assert report["actual"]["augmented_objects"] > 0

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server, "/teapot")
        assert err.value.code == 404

    def test_concurrent_requests(self, server):
        """The threaded server handles parallel clients."""
        import concurrent.futures

        def one_query(__):
            return post(
                server, "/query",
                {"database": "transactions", "query": QUERY},
            )[0]

        with concurrent.futures.ThreadPoolExecutor(max_workers=4) as pool:
            statuses = list(pool.map(one_query, range(8)))
        assert statuses == [200] * 8

    def test_context_manager_shuts_down(self, mini_quepa):
        with serve(mini_quepa, port=0) as running:
            url = running.url
            status, __ = get(running, "/databases")
            assert status == 200
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/databases", timeout=1)
