"""WAL + incremental snapshot suite: crash anywhere, recover to truth.

The recovery invariant, swept across kill points: whatever prefix of
the write-ahead log survives a crash, a warm restart from the last
incremental snapshot plus that prefix yields a polystore whose
incrementally restored A' index equals a from-scratch batch rebuild
over that same recovered polystore. Plus: torn-tail tolerance, replay
idempotence, the version-2 snapshot round-trip (lineage now persisted —
cascade deletion survives restarts) and version-1 back-compat.
"""

from __future__ import annotations

import json

import pytest

from repro.cdc import ChangeHub, IncrementalCollector
from repro.core.aindex import AIndex
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation
from repro.persistence import (
    WriteAheadLog,
    load_snapshot,
    load_snapshot_bundle,
    replay,
    save_snapshot,
)
from repro.persistence.snapshot import SnapshotError

from tests.test_cdc_props import (
    Driver,
    batch_signature,
    build_polystore,
    index_signature,
    make_matcher,
)

import random


def make_hub(polystore, wal=None):
    hub = ChangeHub(
        polystore, AIndex(), IncrementalCollector(make_matcher()), wal=wal
    )
    hub.bootstrap()
    return hub


def run_scenario(tmp_path, writes=25, seed=11):
    """Bootstrap, snapshot, then stream ``writes`` logged mutations."""
    polystore = build_polystore()
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    hub = make_hub(polystore, wal=wal)
    snapdir = tmp_path / "snap"
    hub.snapshot(snapdir)
    driver = Driver(polystore, random.Random(seed))
    for step in range(writes):
        driver.step()
        if (step + 1) % 5 == 0:
            hub.pump()
    hub.pump()
    return polystore, wal, snapdir, hub


class TestWalFormat:
    def test_torn_tail_tolerated(self, tmp_path):
        __, wal, __, __ = run_scenario(tmp_path)
        complete = list(wal.records())
        assert complete
        # Crash artifact: the last record only half made it to disk.
        text = wal.path.read_text()
        wal.path.write_text(text[: len(text) - 17])
        recovered = list(wal.records())
        assert recovered == complete[:-1]

    def test_checksum_detects_corruption(self, tmp_path):
        __, wal, __, __ = run_scenario(tmp_path)
        complete = list(wal.records())
        lines = wal.path.read_text().splitlines(keepends=True)
        corrupted = lines[-1].replace('"op"', '"0p"', 1)
        wal.path.write_text("".join(lines[:-1]) + corrupted)
        recovered = list(wal.records())
        assert recovered == complete[:-1]

    def test_empty_and_missing_wal(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "missing.jsonl")
        assert list(wal.records()) == []
        assert wal.last_seqs() == {}
        assert wal.size_bytes() == 0


class TestReplay:
    def test_replay_is_idempotent(self, tmp_path):
        live, wal, snapdir, __ = run_scenario(tmp_path)
        bundle = load_snapshot_bundle(snapdir)
        applied, events = replay(bundle.polystore, wal, bundle.applied_seqs)
        assert events
        once = {
            name: sorted(
                str(obj.key)
                for obj in bundle.polystore.database(name).scan_objects()
            )
            for name in bundle.polystore
        }
        # Replaying the very same WAL again must change nothing: the
        # cursor skips everything...
        applied_again, second = replay(bundle.polystore, wal, applied)
        assert second == []
        assert applied_again == applied
        # ...and even a cursor-less re-replay lands on the same state
        # (upsert semantics), which is what makes a crash between
        # apply and snapshot harmless.
        replay(bundle.polystore, wal, None)
        again = {
            name: sorted(
                str(obj.key)
                for obj in bundle.polystore.database(name).scan_objects()
            )
            for name in bundle.polystore
        }
        assert again == once

    def test_kill_point_sweep(self, tmp_path):
        """Crash after any prefix of WAL records: warm restart is
        always self-consistent (incremental index == batch rebuild of
        the recovered polystore)."""
        __, wal, snapdir, __ = run_scenario(tmp_path, writes=15)
        lines = wal.path.read_text().splitlines(keepends=True)
        assert len(lines) >= 3
        for kill_point in range(len(lines) + 1):
            partial = WriteAheadLog(tmp_path / f"wal_{kill_point}.jsonl")
            partial.path.write_text("".join(lines[:kill_point]))
            hub, stats = ChangeHub.warm_restart(
                snapdir, make_matcher(), wal=partial
            )
            assert index_signature(hub.aindex) == batch_signature(
                hub.polystore
            ), f"diverged at kill point {kill_point}/{len(lines)}"

    def test_snapshot_plus_delta_equals_full_state(self, tmp_path):
        live, wal, snapdir, hub = run_scenario(tmp_path)
        restarted, stats = ChangeHub.warm_restart(
            snapdir, make_matcher(), wal=wal
        )
        assert stats["replayed_events"] > 0
        assert index_signature(restarted.aindex) == index_signature(
            hub.aindex
        )
        for name in live:
            assert sorted(
                str(obj.key)
                for obj in restarted.polystore.database(name).scan_objects()
            ) == sorted(
                str(obj.key) for obj in live.database(name).scan_objects()
            )
        # The restarted hub keeps maintaining incrementally.
        restarted.polystore.database("catalogue").insert(
            "albums", {"_id": "d_new", "title": "Silver Sessions"}
        )
        restarted.pump()
        assert index_signature(restarted.aindex) == batch_signature(
            restarted.polystore
        )

    def test_restart_does_not_reemit_replayed_events(self, tmp_path):
        """Feeds attach after replay, seeded past it: the WAL delta is
        not captured again (no echo loop)."""
        __, wal, snapdir, __ = run_scenario(tmp_path)
        restarted, stats = ChangeHub.warm_restart(
            snapdir, make_matcher(), wal=wal
        )
        for database, feed in restarted.feeds.items():
            assert feed.pending() == 0
            assert feed.acked_seq == stats["applied_seqs"].get(database, 0)


class TestSnapshotV2:
    def test_lineage_round_trip_preserves_cascade(self, tmp_path):
        """The PR's persistence fix: inferred-edge lineage is part of
        the snapshot, so cascade deletion works after a reload exactly
        as it does on a never-restarted index."""
        a = GlobalKey.parse("transactions.inventory.a0")
        b = GlobalKey.parse("catalogue.albums.d0")
        c = GlobalKey.parse("similar.Item.i0")
        index = AIndex()
        index.add(PRelation.identity(a, b, 0.95))
        index.add(PRelation.identity(b, c, 0.9))  # infers a -- c
        assert index.is_inferred(a, c)

        polystore = build_polystore()
        save_snapshot(tmp_path / "snap", polystore, index)
        __, reloaded = load_snapshot(tmp_path / "snap")
        assert reloaded.is_inferred(a, c)

        expected = index.remove_relation(a, b, cascade=True)
        removed = reloaded.remove_relation(a, b, cascade=True)
        assert removed == expected > 1
        assert reloaded.relation(a, c) is None

    def test_bundle_round_trip(self, tmp_path):
        polystore = build_polystore()
        hub = make_hub(polystore)
        hub.snapshot(tmp_path / "snap")
        bundle = load_snapshot_bundle(tmp_path / "snap")
        assert bundle.version == 2
        assert bundle.applied_seqs == {
            name: hub.feeds[name].acked_seq for name in polystore
        }
        assert bundle.cdc_state is not None
        assert bundle.cdc_state["scored"]
        assert index_signature(bundle.aindex) == index_signature(hub.aindex)

    def test_version_1_still_loads(self, tmp_path):
        polystore = build_polystore()
        index = AIndex()
        index.add(
            PRelation.identity(
                GlobalKey.parse("transactions.inventory.a0"),
                GlobalKey.parse("catalogue.albums.d0"),
                0.95,
            )
        )
        path = save_snapshot(tmp_path / "snap", polystore, index)
        # Rewrite the directory as a version-1 snapshot (no lineage,
        # no cursors) — the layout older releases produced.
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["version"] = 1
        manifest.pop("applied_seqs", None)
        (path / "manifest.json").write_text(json.dumps(manifest))
        aindex_payload = json.loads((path / "aindex.json").read_text())
        aindex_payload.pop("lineage", None)
        (path / "aindex.json").write_text(json.dumps(aindex_payload))

        bundle = load_snapshot_bundle(path)
        assert bundle.version == 1
        assert bundle.applied_seqs == {}
        assert bundle.cdc_state is None
        assert index_signature(bundle.aindex) == index_signature(index)

    def test_unsupported_version_rejected(self, tmp_path):
        polystore = build_polystore()
        path = save_snapshot(tmp_path / "snap", polystore)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError):
            load_snapshot_bundle(path)
