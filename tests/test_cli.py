"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestDemo:
    def test_demo_prints_augmented_answer(self):
        code, output = run_cli("demo")
        assert code == 0
        assert "transactions.inventory.a32" in output
        assert "[strong 0.90] catalogue.albums.d1" in output

    def test_demo_color(self):
        code, output = run_cli("--color", "demo")
        assert code == 0
        assert "\x1b[" in output


class TestGenerateQueryInspect:
    @pytest.fixture
    def snapshot(self, tmp_path):
        path = str(tmp_path / "snap")
        code, output = run_cli(
            "generate", "--stores", "4", "--albums", "40", "--out", path
        )
        assert code == 0
        assert "4 databases" in output
        return path

    def test_inspect(self, snapshot):
        code, output = run_cli("inspect", "--snapshot", snapshot)
        assert code == 0
        assert "transactions" in output
        assert "relational" in output
        assert "A' index:" in output

    def test_query(self, snapshot):
        code, output = run_cli(
            "query", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq < 2",
        )
        assert code == 0
        assert "2 result(s)" in output
        assert "native queries" in output

    def test_query_with_augmenter(self, snapshot):
        code, output = run_cli(
            "query", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq < 2",
            "--augmenter", "batch", "--batch-size", "16",
        )
        assert code == 0

    def test_stats_prints_per_store_breakdown(self, snapshot):
        code, output = run_cli(
            "stats", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq < 5",
            "--level", "1",
        )
        assert code == 0
        assert "per-store breakdown:" in output
        assert "catalogue" in output
        assert "p50_ms" in output and "p95_ms" in output and "p99_ms" in output
        assert "span kinds:" in output
        assert "store_call" in output
        assert "cache:" in output

    def test_trace_prints_span_tree(self, snapshot):
        code, output = run_cli(
            "trace", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq < 5",
            "--augmenter", "outer_batch",
        )
        assert code == 0
        assert "plan" in output
        assert "  pool" in output  # indented under the augment span
        assert "store_call" in output

    def test_trace_limit_truncates(self, snapshot):
        code, output = run_cli(
            "trace", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq < 20",
            "--limit", "3",
        )
        assert code == 0
        assert len([l for l in output.splitlines() if l]) <= 5
        assert "more spans" in output

    def test_trace_chrome_format_is_pure_json(self, snapshot):
        code, output = run_cli(
            "trace", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq < 5",
            "--format", "chrome",
        )
        assert code == 0
        payload = json.loads(output)  # nothing but the trace on stdout
        events = payload["traceEvents"]
        assert events
        assert all(event["ph"] == "X" for event in events)
        names = {event["name"] for event in events}
        assert "store_call" in names

    def test_explain_reports_plan_and_estimates(self, snapshot):
        code, output = run_cli(
            "explain", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq < 5",
            "--level", "1",
        )
        assert code == 0
        assert "access_path:" in output
        assert "planned_fetches:" in output
        assert "estimated_queries:" in output
        assert "actual" not in output.split("execution:")[0]

    def test_explain_analyze_json(self, snapshot):
        code, output = run_cli(
            "explain", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq < 5",
            "--level", "1", "--analyze", "--json",
        )
        assert code == 0
        report = json.loads(output)
        assert report["query"]["store"]["access_path"] == "full_scan"
        assert report["query"]["store"]["actual_rows"] == 5
        assert report["actual"]["queries_issued"] >= 1

    def test_explain_with_explicit_augmenter(self, snapshot):
        code, output = run_cli(
            "explain", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq < 5",
            "--level", "1", "--augmenter", "outer_batch", "--json",
        )
        assert code == 0
        report = json.loads(output)
        assert report["config"]["source"] == "explicit"
        assert report["execution"]["batching"] is True

    def test_events_shows_journal_and_footer(self, snapshot):
        code, output = run_cli(
            "events", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq < 5",
            "--level", "1",
        )
        assert code == 0
        assert "augmentation_completed" in output
        assert "events emitted" in output

    def test_events_slow_query_log(self, snapshot, tmp_path):
        sink = tmp_path / "slow.jsonl"
        code, output = run_cli(
            "events", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq < 5",
            "--level", "1",
            "--slow-ms", "0", "--jsonl", str(sink),
            "--min-severity", "warning",
        )
        assert code == 0
        assert "slow_query" in output
        assert "augmentation_completed" not in output  # below warning
        lines = sink.read_text().splitlines()
        assert lines
        kinds = {json.loads(line)["kind"] for line in lines}
        assert "slow_query" in kinds

    def test_query_aggregate_fails_cleanly(self, snapshot):
        code, output = run_cli(
            "query", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT COUNT(*) FROM inventory",
        )
        assert code == 1
        assert "error:" in output

    def test_explore(self, snapshot):
        code, output = run_cli(
            "explore", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq = 0",
            "--steps", "2",
        )
        assert code == 0
        assert "start: transactions.inventory.a0" in output
        assert "followed strongest link" in output

    def test_explore_no_results(self, snapshot):
        code, output = run_cli(
            "explore", "--snapshot", snapshot,
            "--database", "transactions",
            "--query", "SELECT * FROM inventory WHERE seq > 9999",
        )
        assert code == 1
        assert "no results" in output


class TestErrors:
    def test_missing_snapshot_is_clean_error(self, tmp_path):
        code, output = run_cli(
            "inspect", "--snapshot", str(tmp_path / "nope")
        )
        assert code == 1
        assert "error:" in output

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            run_cli("warp")
