"""Tests for the multi-instance QUEPA deployment (Section III-A)."""

import pytest

from repro.cluster import DispatchPolicy, QuepaCluster
from repro.errors import ConfigurationError
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation
from repro.workloads import QueryWorkload

K = GlobalKey.parse
QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"


@pytest.fixture
def cluster(mini_polystore, mini_aindex) -> QuepaCluster:
    return QuepaCluster(mini_polystore, mini_aindex, instances=3)


class TestConstruction:
    def test_instances_have_independent_replicas(self, cluster, mini_aindex):
        assert len(cluster) == 3
        for index in range(3):
            replica = cluster.instance(index).aindex
            assert replica is not mini_aindex
            assert replica.edge_count() == mini_aindex.edge_count()
        # Mutating one replica does not touch another.
        cluster.instance(0).aindex.remove_object(K("catalogue.albums.d1"))
        assert K("catalogue.albums.d1") in cluster.instance(1).aindex

    def test_zero_instances_rejected(self, mini_polystore, mini_aindex):
        with pytest.raises(ConfigurationError):
            QuepaCluster(mini_polystore, mini_aindex, instances=0)


class TestDispatch:
    def test_round_robin_cycles(self, mini_polystore, mini_aindex):
        cluster = QuepaCluster(
            mini_polystore, mini_aindex, instances=2,
            policy=DispatchPolicy.ROUND_ROBIN,
        )
        picks = [
            cluster.submit("transactions", QUERY).instance for __ in range(4)
        ]
        assert picks == [0, 1, 0, 1]

    def test_least_loaded_balances(self, cluster):
        for __ in range(6):
            cluster.submit("transactions", QUERY)
        report = cluster.drain()
        assert report.per_instance_counts() == {0: 2, 1: 2, 2: 2}

    def test_answers_match_single_instance(self, cluster, mini_quepa):
        clustered = cluster.submit("transactions", QUERY).answer
        solo = mini_quepa.augmented_search("transactions", QUERY)
        assert {str(k) for k in clustered.augmented_keys()} == {
            str(k) for k in solo.augmented_keys()
        }

    def test_makespan_shrinks_with_more_instances(
        self, seven_store_bundle
    ):
        """The paper's point: independent queries answer in parallel."""
        bundle = seven_store_bundle
        workload = QueryWorkload(bundle)
        queries = [workload.query("transactions", 40, variant=v)
                   for v in range(6)]

        def makespan(instances: int) -> float:
            cluster = QuepaCluster(
                bundle.polystore, bundle.aindex, instances=instances
            )
            for query in queries:
                cluster.submit(query.database, query.query)
            return cluster.drain().makespan

        assert makespan(3) < makespan(1)

    def test_queries_queue_on_busy_instances(self, cluster):
        first = cluster.submit("transactions", QUERY)
        second = cluster.submit("transactions", QUERY)
        third = cluster.submit("transactions", QUERY)
        fourth = cluster.submit("transactions", QUERY)  # queues behind one
        assert first.waited == 0.0
        assert fourth.started_at >= min(
            first.completed_at, second.completed_at, third.completed_at
        )

    def test_drain_resets_batch(self, cluster):
        cluster.submit("transactions", QUERY)
        report = cluster.drain()
        assert len(report.results) == 1
        assert cluster.drain().results == []

    def test_clock_advances_across_batches(self, cluster):
        cluster.submit("transactions", QUERY)
        first = cluster.drain()
        result = cluster.submit("transactions", QUERY)
        assert result.submitted_at == first.makespan


class TestMaintenance:
    def test_add_relation_broadcasts(self, cluster):
        relation = PRelation.matching(
            K("transactions.inventory.a33"), K("similar.Item.i2"), 0.7
        )
        cluster.add_relation(relation)
        for index in range(len(cluster)):
            assert cluster.instance(index).aindex.relation(
                relation.left, relation.right
            ) is not None

    def test_remove_object_broadcasts(self, cluster):
        cluster.remove_object(K("catalogue.albums.d1"))
        for index in range(len(cluster)):
            assert K("catalogue.albums.d1") not in cluster.instance(index).aindex

    def test_lazy_deletions_sync_on_drain(self, cluster, mini_polystore):
        """One replica discovers a deletion; drain propagates it."""
        mini_polystore.database("catalogue").delete_one("albums", "d1")
        # Run enough queries that at least one instance hits the ghost.
        for __ in range(3):
            cluster.submit("transactions", QUERY)
        cluster.drain()
        for index in range(len(cluster)):
            assert K("catalogue.albums.d1") not in cluster.instance(index).aindex
