"""Tests for the LRU object cache (Section IV-C)."""

import threading

import pytest

from repro.core.cache import LruCache
from repro.model.objects import DataObject, GlobalKey


def obj(name: str, value=None) -> DataObject:
    return DataObject(GlobalKey("db", "c", name), value)


class TestLru:
    def test_miss_then_hit(self):
        cache = LruCache(4)
        assert cache.get(obj("a").key) is None
        cache.put(obj("a", 1))
        assert cache.get(obj("a").key).value == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_order_is_lru(self):
        cache = LruCache(2)
        cache.put(obj("a"))
        cache.put(obj("b"))
        cache.get(obj("a").key)  # refresh a
        cache.put(obj("c"))  # evicts b
        assert cache.get(obj("b").key) is None
        assert cache.get(obj("a").key) is not None
        assert cache.get(obj("c").key) is not None

    def test_put_refreshes_recency(self):
        cache = LruCache(2)
        cache.put(obj("a"))
        cache.put(obj("b"))
        cache.put(obj("a", "updated"))
        cache.put(obj("c"))  # evicts b, not a
        assert cache.get(obj("a").key).value == "updated"
        assert cache.get(obj("b").key) is None

    def test_capacity_zero_stores_nothing(self):
        cache = LruCache(0)
        cache.put(obj("a"))
        assert len(cache) == 0
        assert cache.get(obj("a").key) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruCache(-1)

    def test_probability_normalized_on_put(self):
        """Cached objects carry p=1; each fetch re-weights per path."""
        cache = LruCache(4)
        cache.put(obj("a").with_probability(0.3))
        assert cache.get(obj("a").key).probability == 1.0

    def test_invalidate(self):
        cache = LruCache(4)
        cache.put(obj("a"))
        assert cache.invalidate(obj("a").key) is True
        assert cache.invalidate(obj("a").key) is False

    def test_resize_shrink_evicts_lru(self):
        cache = LruCache(4)
        for name in "abcd":
            cache.put(obj(name))
        cache.resize(2)
        assert len(cache) == 2
        assert cache.get(obj("d").key) is not None
        assert cache.get(obj("a").key) is None

    def test_resize_grow(self):
        cache = LruCache(1)
        cache.resize(3)
        for name in "xyz":
            cache.put(obj(name))
        assert len(cache) == 3

    def test_resize_negative_rejected(self):
        with pytest.raises(ValueError):
            LruCache(1).resize(-5)

    def test_clear_resets_stats(self):
        cache = LruCache(4)
        cache.put(obj("a"))
        cache.get(obj("a").key)
        cache.get(obj("b").key)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_hit_rate(self):
        cache = LruCache(4)
        assert cache.hit_rate == 0.0
        cache.put(obj("a"))
        cache.get(obj("a").key)
        cache.get(obj("b").key)
        assert cache.hit_rate == 0.5

    def test_thread_safety_under_contention(self):
        cache = LruCache(64)
        errors = []

        def worker(start):
            try:
                for i in range(300):
                    cache.put(obj(f"k{start + i % 100}"))
                    cache.get(obj(f"k{i % 100}").key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64

    def test_put_races_concurrent_resize(self):
        """Regression: ``put`` read ``capacity`` outside the lock, so a
        concurrent ``resize(0)`` could let entries slip into a cache
        that should store nothing."""
        cache = LruCache(64)
        stop = threading.Event()
        errors = []

        def resizer():
            while not stop.is_set():
                cache.resize(0)
                cache.resize(64)

        def writer():
            try:
                for i in range(2000):
                    cache.put(obj(f"k{i % 50}"))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        flipper = threading.Thread(target=resizer)
        workers = [threading.Thread(target=writer) for _ in range(4)]
        flipper.start()
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        stop.set()
        flipper.join()
        assert not errors
        cache.resize(0)
        assert len(cache) == 0  # shrink-to-zero always empties it
