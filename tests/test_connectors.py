"""Tests for the per-store connectors."""

import pytest

from repro.core.connectors import Connector, ConnectorRegistry
from repro.model.objects import GlobalKey
from repro.network import VirtualRuntime, centralized_profile

K = GlobalKey.parse


@pytest.fixture
def ctx(mini_polystore):
    runtime = VirtualRuntime(centralized_profile(list(mini_polystore)))
    return runtime.root(), runtime


class TestConnector:
    def test_fetch_one(self, mini_polystore, ctx):
        context, runtime = ctx
        connector = Connector(
            "transactions", mini_polystore.database("transactions")
        )
        obj = connector.fetch_one(context, K("transactions.inventory.a32"))
        assert obj.value["name"] == "Wish"
        assert runtime.meter.total_queries == 1

    def test_fetch_one_missing_returns_none(self, mini_polystore, ctx):
        context, __ = ctx
        connector = Connector(
            "transactions", mini_polystore.database("transactions")
        )
        assert connector.fetch_one(context, K("transactions.inventory.zz")) is None

    def test_fetch_many_single_roundtrip(self, mini_polystore, ctx):
        context, runtime = ctx
        connector = Connector(
            "transactions", mini_polystore.database("transactions")
        )
        keys = [
            K("transactions.inventory.a32"),
            K("transactions.inventory.a33"),
            K("transactions.inventory.a34"),
        ]
        objects = connector.fetch_many(context, keys)
        assert len(objects) == 3
        assert runtime.meter.total_queries == 1

    def test_fetch_many_empty_is_free(self, mini_polystore, ctx):
        context, runtime = ctx
        connector = Connector(
            "transactions", mini_polystore.database("transactions")
        )
        assert connector.fetch_many(context, []) == []
        assert runtime.meter.total_queries == 0


class TestRegistry:
    def test_connector_per_database(self, mini_polystore):
        registry = ConnectorRegistry(mini_polystore)
        assert registry.connector("catalogue").database == "catalogue"
        assert (
            registry.connector("catalogue")
            is registry.connector("catalogue")
        )

    def test_fetch_grouped_one_query_per_database(self, mini_polystore, ctx):
        context, runtime = ctx
        registry = ConnectorRegistry(mini_polystore)
        keys = [
            K("transactions.inventory.a32"),
            K("catalogue.albums.d1"),
            K("transactions.inventory.a33"),
            K("discount.drop.k1:cure:wish"),
        ]
        found, missing = registry.fetch_grouped(context, keys)
        assert len(found) == 4
        assert missing == []
        assert runtime.meter.total_queries == 3  # three databases touched

    def test_fetch_grouped_reports_missing(self, mini_polystore, ctx):
        context, __ = ctx
        registry = ConnectorRegistry(mini_polystore)
        ghost = K("catalogue.albums.ghost")
        found, missing = registry.fetch_grouped(
            context, [K("catalogue.albums.d1"), ghost]
        )
        assert len(found) == 1
        assert missing == [ghost]

    def test_registry_grows_with_polystore(self, mini_polystore):
        from repro.stores import KeyValueStore

        registry = ConnectorRegistry(mini_polystore)
        mini_polystore.attach("extra", KeyValueStore())
        assert registry.connector("extra").database == "extra"

    def test_registry_tracks_store_replacement(self, mini_polystore, ctx):
        """Detach/re-attach (e.g. recovery after an outage) must not
        leave a stale connector pointing at the old store object."""
        from repro.stores import DocumentStore

        context, __ = ctx
        registry = ConnectorRegistry(mini_polystore)
        registry.connector("catalogue")  # populate the cache
        mini_polystore.detach("catalogue")
        replacement = DocumentStore()
        replacement.insert("albums", {"_id": "d1", "title": "Wish v2"})
        mini_polystore.attach("catalogue", replacement)
        assert registry.connector("catalogue").store is replacement
        obj = registry.connector("catalogue").fetch_one(
            context, K("catalogue.albums.d1")
        )
        assert obj.value["title"] == "Wish v2"
