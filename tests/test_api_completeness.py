"""Direct tests for API corners that are otherwise covered indirectly."""

import pytest

from repro.errors import TrainingError
from repro.ml.dataset import Dataset, Example
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation

K = GlobalKey.parse


class TestAIndexCopy:
    def test_copy_is_deep_for_adjacency(self, mini_aindex):
        replica = mini_aindex.copy()
        assert replica.node_count() == mini_aindex.node_count()
        assert replica.edge_count() == mini_aindex.edge_count()
        replica.add(
            PRelation.matching(K("new.c.x"), K("catalogue.albums.d1"), 0.6)
        )
        assert K("new.c.x") in replica
        assert K("new.c.x") not in mini_aindex

    def test_copy_preserves_lineage_for_cascade(self, mini_aindex):
        replica = mini_aindex.copy()
        # d1 ~ a32 and d1 ~ discount imply an inferred a32 ~ discount.
        a32 = K("transactions.inventory.a32")
        discount = K("discount.drop.k1:cure:wish")
        d1 = K("catalogue.albums.d1")
        assert replica.is_inferred(a32, discount)
        removed = replica.remove_relation(d1, a32, cascade=True)
        assert removed >= 2
        # The original index's lineage is untouched.
        assert mini_aindex.relation(d1, a32) is not None

    def test_copy_preserves_consistency_flag(self, mini_aindex):
        from repro.core.aindex import AIndex

        raw = AIndex(enforce_consistency=False)
        assert raw.copy().enforce_consistency is False
        assert mini_aindex.copy().enforce_consistency is True


class TestDataset:
    def examples(self):
        return [
            Example({"size": i, "kind": "a" if i % 2 else "b"}, float(i))
            for i in range(10)
        ]

    def test_feature_type_detection(self):
        dataset = Dataset(self.examples())
        assert dataset.is_numeric("size")
        assert not dataset.is_numeric("kind")
        assert not dataset.is_numeric("missing")

    def test_values(self):
        dataset = Dataset(self.examples())
        assert dataset.values("size") == list(range(10))

    def test_split_holdout_partitions(self):
        dataset = Dataset(self.examples())
        train, holdout = dataset.split_holdout(0.3, seed=1)
        assert len(train) + len(holdout) == len(dataset)
        assert len(holdout) >= 1

    def test_split_holdout_is_seeded(self):
        dataset = Dataset(self.examples())
        one = dataset.split_holdout(0.3, seed=5)[0]
        two = dataset.split_holdout(0.3, seed=5)[0]
        assert [e.target for e in one] == [e.target for e in two]

    def test_split_holdout_bad_fraction(self):
        with pytest.raises(TrainingError):
            Dataset(self.examples()).split_holdout(1.5)

    def test_empty_dataset_rejected(self):
        with pytest.raises(TrainingError):
            Dataset([])


class TestMiscApi:
    def test_store_capabilities(self, mini_polystore):
        capabilities = mini_polystore.database("transactions").capabilities()
        assert capabilities.name == "relational"
        assert capabilities.supports_batch_get

    def test_iter_objects_covers_all_collections(self, mini_polystore):
        store = mini_polystore.database("catalogue")
        keys = {str(obj.key) for obj in store.iter_objects()}
        assert "catalogue.albums.d1" in keys
        assert "catalogue.customers.c1" in keys

    def test_iter_objects_requires_attachment(self):
        from repro.stores import KeyValueStore

        store = KeyValueStore()
        store.set("k", "v")
        with pytest.raises(ValueError):
            list(store.iter_objects())

    def test_table_schema_has_column(self, mini_polystore):
        schema = (
            mini_polystore.database("transactions")
            .table("inventory").schema
        )
        assert schema.has_column("name")
        assert not schema.has_column("ghost")
        assert schema.column_names[0] == "id"

    def test_optimizer_is_trained_flag(self):
        from repro.optimizer import AdaptiveOptimizer

        optimizer = AdaptiveOptimizer()
        assert not optimizer.is_trained

    def test_query_meter_per_database(self, mini_quepa):
        mini_quepa.augmented_search(
            "transactions",
            "SELECT * FROM inventory WHERE name LIKE '%wish%'",
        )
        meter = mini_quepa.runtime.meter
        assert meter.queries_by_database["transactions"] >= 1
        assert meter.total_objects >= 4
