"""Unit tests of the store-call accelerator: single-flight coalescing
(``repro.serving.coalesce``) and hedged calls (``repro.serving.hedge``).

The coalescer and hedger are tested against small stubs so every
interleaving is forced explicitly (gates and semaphores, not sleeps on
the happy path); the attachment lifecycle is tested against real
servers/runtimes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import pytest

from repro.core import Quepa
from repro.errors import StoreUnavailableError
from repro.network import RealRuntime, centralized_profile
from repro.obs import Observability
from repro.serving import (
    HedgePolicy,
    QuepaServer,
    ServingConfig,
    SingleFlight,
    StoreCallAccelerator,
)

from tests.conftest import make_mini_aindex, make_mini_polystore


@dataclass(frozen=True)
class Obj:
    """Minimal stand-in for a fetched object: carries its key."""

    key: str


class Ctx:
    """Minimal stand-in for a request context."""

    def __init__(self) -> None:
        self.last_call_truncated = False
        self._span_id = None


# -- SingleFlight ------------------------------------------------------------


def test_single_flight_sequential_fetches_each_issue():
    """Coalescing is not caching: once a flight lands, the next
    identical fetch issues its own physical call."""
    flight = SingleFlight()
    calls = []

    def issue(ctx):
        calls.append(ctx)
        return [Obj("a"), Obj("b")]

    first = flight.fetch(Ctx(), "db", ["a", "b"], issue)
    second = flight.fetch(Ctx(), "db", ["a", "b"], issue)
    assert [o.key for o in first] == ["a", "b"]
    assert [o.key for o in second] == ["a", "b"]
    assert len(calls) == 2
    stats = flight.stats()
    assert stats["leaders"] == 2 and stats["followers"] == 0
    assert stats["hit_rate"] == 0.0


def _run_concurrent_fetches(flight, specs, leader_gate, leader_started):
    """Run fetches on threads; return (results, errors) by index."""
    results: dict[int, list] = {}
    errors: dict[int, BaseException] = {}

    def runner(index, database, keys, issue):
        try:
            results[index] = flight.fetch(Ctx(), database, keys, issue)
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            errors[index] = exc

    threads = [
        threading.Thread(target=runner, args=(i, *spec))
        for i, spec in enumerate(specs)
    ]
    threads[0].start()
    assert leader_started.wait(10), "leader never issued"
    for thread in threads[1:]:
        thread.start()
    # Followers only need to *register* on the flight (one lock
    # acquisition) before the leader completes; give them a beat.
    time.sleep(0.25)
    leader_gate.set()
    for thread in threads:
        thread.join(timeout=10)
        assert not thread.is_alive()
    return results, errors


def test_single_flight_concurrent_identical_fetches_share_one_call():
    flight = SingleFlight()
    gate = threading.Event()
    started = threading.Event()
    issued = []

    def issue(ctx):
        issued.append(1)
        started.set()
        assert gate.wait(10)
        return [Obj("a"), Obj("b")]

    specs = [("db", ["a", "b"], issue) for _ in range(4)]
    results, errors = _run_concurrent_fetches(flight, specs, gate, started)
    assert not errors
    assert len(issued) == 1, "followers must share the leader's call"
    for index in range(4):
        assert [o.key for o in results[index]] == ["a", "b"]
    # Followers get their own list copies, never the leader's object.
    assert results[0] is not results[1]
    stats = flight.stats()
    assert stats["leaders"] == 1 and stats["followers"] == 3
    assert stats["hit_rate"] == pytest.approx(0.75)


def test_single_flight_subset_join_filters_leader_result():
    flight = SingleFlight()
    gate = threading.Event()
    started = threading.Event()
    issued = []

    def issue(ctx):
        issued.append(1)
        started.set()
        assert gate.wait(10)
        return [Obj("a"), Obj("b"), Obj("c")]

    specs = [
        ("db", ["a", "b", "c"], issue),
        ("db", ["b"], issue),  # strict subset: joins, filters down
    ]
    results, errors = _run_concurrent_fetches(flight, specs, gate, started)
    assert not errors
    assert len(issued) == 1
    assert [o.key for o in results[1]] == ["b"]
    assert flight.stats()["subset_joins"] == 1


def test_single_flight_different_keysets_do_not_coalesce():
    flight = SingleFlight()
    gate = threading.Event()
    started = threading.Event()
    issued = []

    def issue_ab(ctx):
        issued.append("ab")
        started.set()
        assert gate.wait(10)
        return [Obj("a"), Obj("b")]

    def issue_cd(ctx):
        issued.append("cd")
        return [Obj("c"), Obj("d")]

    specs = [("db", ["a", "b"], issue_ab), ("db", ["c", "d"], issue_cd)]
    results, errors = _run_concurrent_fetches(flight, specs, gate, started)
    assert not errors
    assert sorted(issued) == ["ab", "cd"]
    assert [o.key for o in results[1]] == ["c", "d"]


def test_single_flight_leader_error_reaches_followers_as_clone():
    flight = SingleFlight()
    gate = threading.Event()
    started = threading.Event()

    def issue(ctx):
        started.set()
        assert gate.wait(10)
        raise StoreUnavailableError("store down")

    specs = [("db", ["a"], issue) for _ in range(3)]
    results, errors = _run_concurrent_fetches(flight, specs, gate, started)
    assert not results
    assert len(errors) == 3
    originals = [
        e for e in errors.values() if e.__cause__ is None
    ]
    clones = [e for e in errors.values() if e.__cause__ is not None]
    assert len(originals) == 1, "exactly one leader raised the original"
    for clone in clones:
        assert isinstance(clone, StoreUnavailableError)
        assert clone is not originals[0]
        assert clone.__cause__ is originals[0]


def test_single_flight_propagates_truncation_verdict():
    flight = SingleFlight()
    gate = threading.Event()
    started = threading.Event()

    def issue(ctx):
        started.set()
        assert gate.wait(10)
        ctx.last_call_truncated = True
        return [Obj("a")]

    follower_ctx = Ctx()
    result_box = {}

    def follow():
        result_box["r"] = flight.fetch(follower_ctx, "db", ["a"], issue)

    leader = threading.Thread(
        target=lambda: flight.fetch(Ctx(), "db", ["a"], issue)
    )
    leader.start()
    assert started.wait(10)
    follower = threading.Thread(target=follow)
    follower.start()
    time.sleep(0.25)
    gate.set()
    leader.join(timeout=10)
    follower.join(timeout=10)
    assert follower_ctx.last_call_truncated is True


def test_single_flight_wedged_leader_times_out_follower():
    flight = SingleFlight(wait_timeout=0.05)
    gate = threading.Event()
    started = threading.Event()
    issued = []

    def issue(ctx):
        issued.append(1)
        if len(issued) == 1:  # only the leader wedges
            started.set()
            assert gate.wait(10)
        return [Obj("a")]

    specs = [("db", ["a"], issue), ("db", ["a"], issue)]
    # The follower's 0.05s timeout elapses during the 0.25s beat, so it
    # falls back to its own call while the leader is still wedged.
    results, errors = _run_concurrent_fetches(flight, specs, gate, started)
    assert not errors
    assert len(issued) == 2
    assert [o.key for o in results[1]] == ["a"]
    assert flight.stats()["wait_timeouts"] == 1


# -- HedgePolicy -------------------------------------------------------------


class StubCtx(Ctx):
    pass


class StubRuntime:
    """Just enough runtime for HedgePolicy: obs + request contexts."""

    def __init__(self) -> None:
        self.obs = Observability()

    def request_context(self) -> StubCtx:
        return StubCtx()


class StubBreaker:
    CLOSED = "closed"

    def __init__(self, state: str) -> None:
        self.state = state


class StubResilience:
    def __init__(self, state: str) -> None:
        self._state = state

    def breaker(self, database: str) -> StubBreaker:
        return StubBreaker(self._state)


def _prime(runtime, database: str, sample: float, n: int = 30) -> None:
    hist = runtime.obs.metrics.histogram(
        "store_call_seconds", database=database
    )
    for _ in range(n):
        hist.observe(sample)


def test_hedge_stays_inline_without_latency_history():
    runtime = StubRuntime()
    hedger = HedgePolicy(runtime, min_observations=25)
    assert hedger.delay_for("db") is None
    ctx = StubCtx()
    seen = []

    def issue(c):
        seen.append(c)
        return "answer"

    assert hedger.call(ctx, "db", issue) == "answer"
    # Inline: the caller's own context, no executor hop.
    assert seen == [ctx]
    assert hedger.stats()["issued"] == 0
    hedger.close()


def test_hedge_arms_after_min_observations():
    runtime = StubRuntime()
    hedger = HedgePolicy(
        runtime, min_observations=25, min_delay=0.0005
    )
    _prime(runtime, "db", 0.001, n=24)
    assert hedger.delay_for("db") is None
    _prime(runtime, "db", 0.001, n=1)
    delay = hedger.delay_for("db")
    assert delay is not None and delay >= 0.0005
    hedger.close()


def test_hedge_backup_wins_when_primary_is_slow():
    runtime = StubRuntime()
    hedger = HedgePolicy(runtime, min_observations=1, min_delay=0.001)
    _prime(runtime, "db", 0.001)
    release_primary = threading.Event()
    calls = []
    lock = threading.Lock()

    def issue(c):
        with lock:
            calls.append(c)
            first = len(calls) == 1
        if first:  # the primary: wedged until the test releases it
            assert release_primary.wait(10)
            return "slow"
        return "fast"

    ctx = StubCtx()
    try:
        assert hedger.call(ctx, "db", issue) == "fast"
        stats = hedger.stats()
        assert stats["won"] == 1
        assert stats["issued"] == 1
        assert stats["win_rate"] == 1.0
        counter = runtime.obs.metrics.counter(
            "serving_hedges_total", outcome="won"
        )
        assert counter.value == 1
    finally:
        release_primary.set()
        hedger.close()


def test_hedge_never_fires_into_an_open_breaker():
    runtime = StubRuntime()
    hedger = HedgePolicy(
        runtime,
        resilience=StubResilience("open"),
        min_observations=1,
        min_delay=0.0005,
    )
    _prime(runtime, "db", 0.0001)
    calls = []

    def issue(c):
        calls.append(c)
        time.sleep(0.05)  # past the hedge delay: a hedge *would* fire
        return "slow-but-only"

    try:
        assert hedger.call(StubCtx(), "db", issue) == "slow-but-only"
        assert len(calls) == 1, "no backup into an open breaker"
        stats = hedger.stats()
        assert stats["breaker_skips"] == 1
        assert stats["issued"] == 0
        skips = runtime.obs.metrics.counter(
            "serving_hedge_skips_total", reason="breaker_open"
        )
        assert skips.value == 1
    finally:
        hedger.close()


def test_hedge_fires_when_breaker_is_closed():
    runtime = StubRuntime()
    hedger = HedgePolicy(
        runtime,
        resilience=StubResilience("closed"),
        min_observations=1,
        min_delay=0.0005,
    )
    _prime(runtime, "db", 0.0001)
    release = threading.Event()
    calls = []
    lock = threading.Lock()

    def issue(c):
        with lock:
            calls.append(c)
            first = len(calls) == 1
        if first:
            assert release.wait(10)
            return "slow"
        return "fast"

    try:
        assert hedger.call(StubCtx(), "db", issue) == "fast"
        assert len(calls) == 2
    finally:
        release.set()
        hedger.close()


def test_hedge_fast_failure_propagates_like_unhedged():
    runtime = StubRuntime()
    hedger = HedgePolicy(runtime, min_observations=1, min_delay=0.5)
    _prime(runtime, "db", 0.0001)

    def issue(c):
        raise ValueError("boom")

    try:
        with pytest.raises(ValueError, match="boom"):
            hedger.call(StubCtx(), "db", issue)
        assert hedger.stats()["issued"] == 0
    finally:
        hedger.close()


def test_hedge_both_attempts_failing_raises_primary_error():
    runtime = StubRuntime()
    hedger = HedgePolicy(runtime, min_observations=1, min_delay=0.0005)
    _prime(runtime, "db", 0.0001)
    calls = []
    lock = threading.Lock()

    def issue(c):
        with lock:
            calls.append(c)
            first = len(calls) == 1
        time.sleep(0.01)  # outlive the delay so the backup launches
        if first:
            raise ValueError("primary boom")
        raise KeyError("backup boom")

    try:
        with pytest.raises(ValueError, match="primary boom"):
            hedger.call(StubCtx(), "db", issue)
        assert hedger.stats()["lost"] == 1
    finally:
        hedger.close()


def test_hedge_propagates_winner_truncation_verdict():
    runtime = StubRuntime()
    hedger = HedgePolicy(runtime, min_observations=1, min_delay=0.5)
    _prime(runtime, "db", 0.0001)

    def issue(c):
        c.last_call_truncated = True
        return "ok"

    ctx = StubCtx()
    try:
        # Fast success inside the delay window: primary wins inline.
        assert hedger.call(ctx, "db", issue) == "ok"
        assert ctx.last_call_truncated is True
    finally:
        hedger.close()


def test_hedge_closed_policy_serves_inline():
    runtime = StubRuntime()
    hedger = HedgePolicy(runtime, min_observations=1, min_delay=0.0005)
    _prime(runtime, "db", 0.0001)
    hedger.close()
    ctx = StubCtx()
    seen = []

    def issue(c):
        seen.append(c)
        return "answer"

    assert hedger.call(ctx, "db", issue) == "answer"
    assert seen == [ctx]


# -- StoreCallAccelerator ----------------------------------------------------


def test_accelerator_stats_shape_and_close():
    runtime = StubRuntime()
    accel = StoreCallAccelerator(runtime, coalesce=True, hedge=True)
    stats = accel.stats()
    assert set(stats) == {"coalesce", "hedge"}
    assert stats["coalesce"]["leaders"] == 0
    assert stats["hedge"]["issued"] == 0
    accel.close()
    assert accel.closed is True

    coalesce_only = StoreCallAccelerator(runtime, coalesce=True, hedge=False)
    assert coalesce_only.stats()["hedge"] is None
    coalesce_only.close()


def test_accelerator_fetch_many_routes_through_coalescer():
    runtime = StubRuntime()
    accel = StoreCallAccelerator(runtime, coalesce=True, hedge=False)
    result = accel.fetch_many(
        Ctx(), "db", ["a"], lambda c: [Obj("a")]
    )
    assert [o.key for o in result] == ["a"]
    assert accel.stats()["coalesce"]["leaders"] == 1
    accel.close()


# -- attachment lifecycle ----------------------------------------------------


def _mini_bundle():
    polystore = make_mini_polystore()
    return polystore, make_mini_aindex()


def test_accelerator_attaches_only_on_real_runtime():
    polystore, aindex = _mini_bundle()
    virtual_quepa = Quepa(polystore, aindex)  # virtual-time runtime
    with QuepaServer(virtual_quepa) as server:
        assert virtual_quepa.runtime.accelerator is None
        assert server.status()["accelerator"] is None

    polystore, aindex = _mini_bundle()
    profile = centralized_profile(list(polystore))
    real_quepa = Quepa(
        polystore, aindex, profile=profile, runtime=RealRuntime(profile)
    )
    with QuepaServer(real_quepa) as server:
        accel = real_quepa.runtime.accelerator
        assert accel is not None
        assert server.status()["accelerator"] is not None
    # Detached on stop; stats stay readable.
    assert real_quepa.runtime.accelerator is None
    assert accel.closed is True
    assert server.status()["accelerator"] is not None


def test_accelerator_disabled_when_both_features_off():
    polystore, aindex = _mini_bundle()
    profile = centralized_profile(list(polystore))
    quepa = Quepa(
        polystore, aindex, profile=profile, runtime=RealRuntime(profile)
    )
    config = ServingConfig(coalesce=False, hedge=False)
    with QuepaServer(quepa, config) as server:
        assert quepa.runtime.accelerator is None
        assert server.status()["accelerator"] is None


def test_accelerator_recreated_on_restart():
    polystore, aindex = _mini_bundle()
    profile = centralized_profile(list(polystore))
    quepa = Quepa(
        polystore, aindex, profile=profile, runtime=RealRuntime(profile)
    )
    server = QuepaServer(quepa).start()
    first = quepa.runtime.accelerator
    assert first is not None
    server.stop()
    assert first.closed is True
    server.start()
    second = quepa.runtime.accelerator
    assert second is not None and second is not first
    assert second.closed is False
    server.stop()
