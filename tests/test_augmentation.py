"""Tests for the augmentation operator alpha^n (Definition 2)."""

import pytest

from repro.core.aindex import AIndex
from repro.core.augmentation import Augmentation, AugmentationConfig
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation

K = GlobalKey.parse


@pytest.fixture
def mini_augmentation(mini_aindex) -> Augmentation:
    return Augmentation(mini_aindex)


SEED = K("transactions.inventory.a32")


class TestPlanning:
    def test_level_0_reaches_direct_neighbors(self, mini_augmentation):
        plan = mini_augmentation.plan([SEED], level=0)
        keys = {str(f.key) for f in plan.fetches_by_seed[SEED]}
        # a32 ~ d1 (0.9); the Consistency Condition materializes
        # a32 ~ discount (0.72) and a32 = i1 (0.63).
        assert keys == {
            "catalogue.albums.d1",
            "discount.drop.k1:cure:wish",
            "similar.Item.i1",
        }

    def test_level_0_probabilities(self, mini_augmentation):
        plan = mini_augmentation.plan([SEED], level=0)
        by_key = {
            str(f.key): f.probability for f in plan.fetches_by_seed[SEED]
        }
        assert by_key["catalogue.albums.d1"] == pytest.approx(0.9)
        assert by_key["discount.drop.k1:cure:wish"] == pytest.approx(0.72)
        assert by_key["similar.Item.i1"] == pytest.approx(0.63)

    def test_level_1_reaches_two_hops(self, mini_augmentation):
        plan = mini_augmentation.plan([SEED], level=1)
        keys = {str(f.key) for f in plan.fetches_by_seed[SEED]}
        assert "similar.Item.i2" in keys  # via i1's matching edge

    def test_level_bounds_depth(self, mini_aindex):
        """A chain u0-u1-u2-u3 is cut off at level+1 hops."""
        index = AIndex(enforce_consistency=False)
        chain = [K(f"db{i}.c.u{i}") for i in range(4)]
        for left, right in zip(chain, chain[1:]):
            index.add(PRelation.matching(left, right, 0.8))
        augmentation = Augmentation(index)
        for level, expected in [(0, 1), (1, 2), (2, 3)]:
            plan = augmentation.plan([chain[0]], level)
            assert len(plan.fetches_by_seed[chain[0]]) == expected

    def test_probability_multiplies_along_path(self):
        index = AIndex(enforce_consistency=False)
        a, b, c = K("d1.c.a"), K("d2.c.b"), K("d3.c.c")
        index.add(PRelation.matching(a, b, 0.8))
        index.add(PRelation.matching(b, c, 0.5))
        plan = Augmentation(index).plan([a], level=1)
        probabilities = {
            str(f.key): f.probability for f in plan.fetches_by_seed[a]
        }
        assert probabilities[str(c)] == pytest.approx(0.4)

    def test_best_path_wins_on_diamond(self):
        """When two paths reach the same object, keep the max product."""
        index = AIndex(enforce_consistency=False)
        s, x, y, t = K("d1.c.s"), K("d2.c.x"), K("d3.c.y"), K("d4.c.t")
        index.add(PRelation.matching(s, x, 0.9))
        index.add(PRelation.matching(x, t, 0.9))  # product 0.81
        index.add(PRelation.matching(s, y, 0.6))
        index.add(PRelation.matching(y, t, 0.6))  # product 0.36
        plan = Augmentation(index).plan([s], level=1)
        target = next(
            f for f in plan.fetches_by_seed[s] if f.key == t
        )
        assert target.probability == pytest.approx(0.81)
        assert target.path == (x, t)

    def test_seed_not_fetched_for_itself(self, mini_augmentation):
        plan = mini_augmentation.plan([SEED], level=2)
        assert all(f.key != SEED for f in plan.fetches_by_seed[SEED])

    def test_min_probability_prunes(self, mini_augmentation):
        plan = mini_augmentation.plan([SEED], level=0, min_probability=0.7)
        keys = {str(f.key) for f in plan.fetches_by_seed[SEED]}
        assert "similar.Item.i1" not in keys  # p = 0.63 < 0.7
        assert "catalogue.albums.d1" in keys

    def test_fetches_ordered_by_probability(self, mini_augmentation):
        plan = mini_augmentation.plan([SEED], level=1)
        probabilities = [f.probability for f in plan.fetches_by_seed[SEED]]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_unknown_seed_plans_nothing(self, mini_augmentation):
        ghost = K("nowhere.c.k")
        plan = mini_augmentation.plan([ghost], level=1)
        assert plan.fetches_by_seed[ghost] == []

    def test_negative_level_rejected(self, mini_augmentation):
        with pytest.raises(ValueError):
            mini_augmentation.plan([SEED], level=-1)

    def test_edges_examined_counted(self, mini_augmentation):
        plan = mini_augmentation.plan([SEED], level=0)
        assert plan.edges_examined > 0

    def test_all_fetches_in_seed_order(self, mini_augmentation):
        other = K("transactions.inventory.a34")
        plan = mini_augmentation.plan([SEED, other], level=0)
        fetches = plan.all_fetches()
        seeds_in_order = [f.seed for f in fetches]
        boundary = seeds_in_order.index(other)
        assert all(s == SEED for s in seeds_in_order[:boundary])

    def test_overlapping_seeds_keep_duplicates_in_plan(self):
        """Overlap across seeds is preserved (dedup happens in the
        answer; the plan is what the cache optimizes, Section IV-C)."""
        index = AIndex(enforce_consistency=False)
        s1, s2, shared = K("d1.c.s1"), K("d2.c.s2"), K("d3.c.x")
        index.add(PRelation.matching(s1, shared, 0.8))
        index.add(PRelation.matching(s2, shared, 0.7))
        plan = Augmentation(index).plan([s1, s2], level=0)
        assert plan.total_fetches() == 2


class TestConfig:
    def test_defaults(self):
        config = AugmentationConfig()
        assert config.augmenter == "sequential"
        assert config.batch_size >= 1
        assert config.threads_size >= 1
