"""Tests for the tracing + metrics layer (repro.obs) and its wiring."""

import json
import threading

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.network import RealRuntime, VirtualRuntime, centralized_profile
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Observability,
    Tracer,
    tree_lines,
)

QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_begin_end_retains_span(self):
        tracer = Tracer()
        span = tracer.begin("work", 1.0, None, database="db")
        assert len(tracer) == 0  # not retained until closed
        tracer.end(span, 3.5)
        assert len(tracer) == 1
        assert span.duration == 2.5
        assert span.attrs == {"database": "db"}

    def test_record_is_one_shot(self):
        tracer = Tracer()
        span = tracer.record("call", 0.0, 0.25, objects=3)
        assert span.end == 0.25
        assert tracer.spans() == [span]

    def test_parent_child_ids(self):
        tracer = Tracer()
        parent = tracer.begin("outer", 0.0, None)
        child = tracer.begin("inner", 0.1, parent.span_id)
        tracer.end(child, 0.2)
        tracer.end(parent, 0.3)
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None

    def test_summary_groups_by_kind(self):
        tracer = Tracer()
        tracer.record("fetch", 0.0, 1.0)
        tracer.record("fetch", 1.0, 3.0)
        tracer.record("plan", 0.0, 0.5)
        summary = tracer.summary()
        assert summary["fetch"] == {"count": 2, "total_s": 3.0}
        assert summary["plan"]["count"] == 1

    def test_reset_clears_everything(self):
        tracer = Tracer(max_spans=1)
        tracer.record("a", 0.0, 1.0)
        tracer.record("b", 0.0, 1.0)  # over the cap
        assert tracer.dropped == 1
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.dropped == 0
        # Ids are monotonic across resets: recycling them would let a
        # new span claim a dead span's id while concurrent serving
        # requests still hold references to it as a parent.
        assert tracer.record("c", 0.0, 1.0).span_id == 3

    def test_reset_discards_in_flight_spans_of_older_runs(self):
        # A span begun before reset() belongs to a discarded run: when
        # it finally ends it must not leak into the fresh trace (and
        # must not count as dropped — its run's counters are gone).
        tracer = Tracer()
        stale = tracer.begin("augment", 0.0)
        tracer.reset()
        fresh = tracer.begin("augment", 1.0)
        tracer.end(stale, 2.0)
        tracer.end(fresh, 2.0)
        assert [span.span_id for span in tracer.spans()] == [fresh.span_id]
        assert tracer.dropped == 0

    def test_cap_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            tracer.record("s", float(i), float(i) + 1)
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)

    def test_as_dicts_is_json_ready(self):
        tracer = Tracer()
        tracer.record("fetch", 0.0, 0.5, database="catalogue")
        payload = json.dumps(tracer.as_dicts())
        assert "catalogue" in payload

    def test_stats_is_one_consistent_snapshot(self):
        tracer = Tracer(max_spans=2)
        for i in range(5):
            tracer.record("s", float(i), float(i) + 1)
        assert tracer.stats() == {
            "spans": 2, "dropped": 3, "max_spans": 2,
        }
        tracer.reset()
        assert tracer.stats() == {
            "spans": 0, "dropped": 0, "max_spans": 2,
        }

    def test_tree_lines_indent_children(self):
        tracer = Tracer()
        parent = tracer.begin("augment", 0.0, None)
        tracer.record("fetch", 0.1, 0.2, parent.span_id)
        tracer.end(parent, 0.3)
        lines = tree_lines(tracer.spans())
        assert lines[0].startswith("augment")
        assert lines[1].startswith("  fetch")


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("queries_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pool_size")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_histogram_buckets_cumulative(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 5
        assert snap["max"] == 50.0
        assert snap["mean"] == pytest.approx(56.05 / 5)
        assert snap["buckets"] == {"0.1": 1, "1": 3, "10": 4, "+Inf": 5}

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0))

    def test_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("calls", database="x")
        b = registry.counter("calls", database="x")
        c = registry.counter("calls", database="y")
        assert a is b
        assert a is not c
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")

    def test_snapshot_deterministic_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("b_metric").inc()
        registry.counter("a_metric", database="z").inc(2)
        registry.histogram("lat", database="z").observe(0.2)
        snap = registry.snapshot()
        assert [entry["name"] for entry in snap] == [
            "a_metric", "b_metric", "lat",
        ]
        json.dumps(snap)  # must not raise
        assert snap[0]["labels"] == {"database": "z"}
        assert snap[0]["value"] == 2

    def test_snapshot_sorts_mixed_name_types(self):
        # Regression: a non-string metric name used to make the
        # snapshot sort raise TypeError (str vs int comparison).
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter(99).inc(2)
        names = [entry["name"] for entry in registry.snapshot()]
        assert set(names) == {"zeta", 99}
        json.dumps(registry.snapshot(), default=str)

    def test_reset_forgets_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.counter("x").value == 0


class TestMetricsThreadSafety:
    def test_concurrent_counter_and_histogram_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        histogram = registry.histogram("lat")

        def hammer():
            for _ in range(1000):
                counter.inc()
                histogram.observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000
        assert histogram.count == 8000
        assert histogram.sum == pytest.approx(8.0)

    def test_concurrent_updates_from_real_runtime_pool(self):
        runtime = RealRuntime(centralized_profile(["db"]))
        ctx = runtime.root()

        def task(child):
            for _ in range(200):
                child.obs.metrics.counter("task_ticks").inc()
            return 1

        pool = ctx.pool(8)
        for _ in range(16):
            pool.submit(task)
        results = pool.join()
        assert sum(results) == 16
        assert runtime.obs.metrics.counter("task_ticks").value == 16 * 200

    def test_registry_get_or_create_race(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(8)
        instruments = []

        def grab():
            barrier.wait()
            instruments.append(registry.counter("shared"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(instrument) for instrument in instruments}) == 1


# ---------------------------------------------------------------------------
# Runtime wiring
# ---------------------------------------------------------------------------


class TestRuntimeWiring:
    def test_real_runtime_elapsed_zero_before_root(self):
        runtime = RealRuntime(centralized_profile(["db"]))
        # Regression: used to return `monotonic() - 0`, a huge number.
        assert runtime.elapsed == 0.0

    def test_virtual_root_resets_trace_not_metrics(self, mini_quepa):
        mini_quepa.augmented_search("transactions", QUERY)
        counter = mini_quepa.obs.metrics.counter(
            "store_queries_total", database="transactions"
        )
        first = counter.value
        assert len(mini_quepa.obs.tracer) > 0
        mini_quepa.augmented_search("transactions", QUERY)
        # Metrics are cumulative across runs, the tracer is per-run.
        second = counter.value
        assert second > first
        spans = mini_quepa.obs.tracer.spans()
        assert all(span.start >= 0.0 for span in spans)

    def test_span_nesting_under_pool(self, mini_polystore, mini_aindex):
        quepa = Quepa(mini_polystore, mini_aindex)
        config = AugmentationConfig(augmenter="inner", threads_size=2)
        quepa.augmented_search("transactions", QUERY, config=config)
        spans = {span.span_id: span for span in quepa.obs.tracer.spans()}
        fetches = [s for s in spans.values() if s.name == "fetch"]
        assert fetches, "inner augmenter should emit fetch spans"
        for fetch in fetches:
            # Every fetch hangs off the augment span via inheritance.
            parent = spans[fetch.parent_id]
            assert parent.name == "augment"


# ---------------------------------------------------------------------------
# Acceptance: a level-1 query is fully observable under both runtimes
# ---------------------------------------------------------------------------


def _assert_observable(quepa):
    quepa.augmented_search("transactions", QUERY, level=1)
    summary = quepa.obs.tracer.summary()
    kinds = set(summary)
    assert {"plan", "store_call"} <= kinds
    assert kinds & {"fetch", "fetch_group", "augment"}
    assert len(kinds) >= 3
    snap = quepa.obs.metrics.snapshot()
    latencies = [
        entry for entry in snap if entry["name"] == "store_call_seconds"
    ]
    databases = {entry["labels"]["database"] for entry in latencies}
    assert "transactions" in databases
    assert len(databases) >= 2  # level 1 reaches other stores
    for entry in latencies:
        assert entry["count"] >= 1
        assert entry["buckets"]["+Inf"] == entry["count"]
    trace = quepa.last_record.span_summary
    assert trace["store_call"]["count"] >= 1


class TestAcceptance:
    def test_virtual_runtime_observable(self, mini_polystore, mini_aindex):
        profile = centralized_profile(list(mini_polystore))
        quepa = Quepa(
            mini_polystore, mini_aindex,
            runtime=VirtualRuntime(profile),
        )
        _assert_observable(quepa)

    def test_real_runtime_observable(self, mini_polystore, mini_aindex):
        profile = centralized_profile(list(mini_polystore))
        quepa = Quepa(
            mini_polystore, mini_aindex,
            runtime=RealRuntime(profile),
        )
        _assert_observable(quepa)

    def test_outcome_carries_trace_summary(self, mini_quepa):
        answer = mini_quepa.augmented_search("transactions", QUERY, level=1)
        assert answer.stats.elapsed > 0.0
        record = mini_quepa.last_record
        assert record.queries_by_database["transactions"] >= 1
        assert sum(record.objects_by_database.values()) > 0


class TestObservabilityBundle:
    def test_snapshot_shape(self):
        obs = Observability()
        obs.metrics.counter("x").inc()
        obs.tracer.record("y", 0.0, 1.0)
        snap = obs.snapshot()
        assert snap["trace"]["spans"] == 1
        assert snap["trace"]["by_kind"]["y"]["count"] == 1
        assert snap["metrics"][0]["name"] == "x"
