"""Tests for SELECT evaluation: predicates, joins, aggregates, ordering."""

import pytest

from repro.errors import QueryError
from repro.stores import RelationalStore
from repro.stores.relational.types import Column, ColumnType, TableSchema


@pytest.fixture
def store() -> RelationalStore:
    r = RelationalStore()
    r.database_name = "db"
    r.create_table(
        "items",
        TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("grp", ColumnType.TEXT),
                Column("val", ColumnType.INTEGER),
                Column("note", ColumnType.TEXT),
            ],
            primary_key="id",
        ),
    )
    data = [
        ("k1", "a", 10, "first one"),
        ("k2", "a", 20, None),
        ("k3", "b", 30, "third"),
        ("k4", "b", None, "no value"),
        ("k5", "c", 50, "Fifth_Item"),
    ]
    for id_, grp, val, note in data:
        r.insert_row("items", {"id": id_, "grp": grp, "val": val, "note": note})
    r.create_table(
        "groups",
        TableSchema(
            columns=[
                Column("g", ColumnType.TEXT, nullable=False),
                Column("label", ColumnType.TEXT),
            ],
            primary_key="g",
        ),
    )
    r.insert_row("groups", {"g": "a", "label": "alpha"})
    r.insert_row("groups", {"g": "b", "label": "beta"})
    return r


def ids(rows):
    return [row["id"] for row in rows]


class TestPredicates:
    def test_equality(self, store):
        assert ids(store.sql("SELECT id FROM items WHERE grp = 'a'")) == ["k1", "k2"]

    def test_comparison_skips_nulls(self, store):
        """SQL semantics: NULL comparisons are unknown, row filtered out."""
        assert ids(store.sql("SELECT id FROM items WHERE val > 15")) == [
            "k2", "k3", "k5",
        ]

    def test_is_null(self, store):
        assert ids(store.sql("SELECT id FROM items WHERE val IS NULL")) == ["k4"]

    def test_is_not_null(self, store):
        assert len(store.sql("SELECT id FROM items WHERE val IS NOT NULL")) == 4

    def test_like_case_insensitive(self, store):
        assert ids(store.sql("SELECT id FROM items WHERE note LIKE '%fifth%'")) == ["k5"]

    def test_like_underscore(self, store):
        assert ids(store.sql("SELECT id FROM items WHERE grp LIKE '_'")) == [
            "k1", "k2", "k3", "k4", "k5",
        ]

    def test_not_like(self, store):
        rows = store.sql("SELECT id FROM items WHERE note NOT LIKE '%one%'")
        # k2 has NULL note: excluded (unknown), k1 matches LIKE.
        assert ids(rows) == ["k3", "k4", "k5"]

    def test_in(self, store):
        assert ids(store.sql("SELECT id FROM items WHERE id IN ('k1', 'k5')")) == [
            "k1", "k5",
        ]

    def test_not_in(self, store):
        rows = store.sql("SELECT id FROM items WHERE grp NOT IN ('a', 'b')")
        assert ids(rows) == ["k5"]

    def test_between(self, store):
        assert ids(store.sql("SELECT id FROM items WHERE val BETWEEN 20 AND 30")) == [
            "k2", "k3",
        ]

    def test_not_between(self, store):
        assert ids(
            store.sql("SELECT id FROM items WHERE val NOT BETWEEN 20 AND 30")
        ) == ["k1", "k5"]

    def test_and_or_with_nulls(self, store):
        rows = store.sql(
            "SELECT id FROM items WHERE val > 100 OR grp = 'c'"
        )
        assert ids(rows) == ["k5"]

    def test_not(self, store):
        rows = store.sql("SELECT id FROM items WHERE NOT grp = 'a'")
        assert ids(rows) == ["k3", "k4", "k5"]

    def test_arithmetic_in_where(self, store):
        rows = store.sql("SELECT id FROM items WHERE val * 2 = 40")
        assert ids(rows) == ["k2"]

    def test_division_by_zero_is_null(self, store):
        rows = store.sql("SELECT id FROM items WHERE val / 0 > 1")
        assert rows == []


class TestProjection:
    def test_star(self, store):
        row = store.sql("SELECT * FROM items WHERE id = 'k1'")[0]
        assert set(row) == {"id", "grp", "val", "note"}

    def test_expression_with_alias(self, store):
        row = store.sql("SELECT val + 1 AS nxt FROM items WHERE id = 'k1'")[0]
        assert row == {"nxt": 11}

    def test_scalar_functions(self, store):
        row = store.sql(
            "SELECT UPPER(grp) AS u, LENGTH(note) AS l, ABS(0 - val) AS a, "
            "COALESCE(val, 0) AS c FROM items WHERE id = 'k1'"
        )[0]
        assert row == {"u": "A", "l": 9, "a": 10, "c": 10}

    def test_coalesce_null_fallback(self, store):
        row = store.sql("SELECT COALESCE(val, -1) AS c FROM items WHERE id = 'k4'")[0]
        assert row == {"c": -1}

    def test_round(self, store):
        row = store.sql("SELECT ROUND(2.567, 1) AS r FROM items WHERE id = 'k1'")[0]
        assert row == {"r": 2.6}

    def test_distinct(self, store):
        rows = store.sql("SELECT DISTINCT grp FROM items")
        assert sorted(r["grp"] for r in rows) == ["a", "b", "c"]


class TestAggregates:
    def test_count_star_and_column(self, store):
        row = store.sql("SELECT COUNT(*) AS n, COUNT(val) AS nv FROM items")[0]
        assert row == {"n": 5, "nv": 4}

    def test_sum_avg_min_max(self, store):
        row = store.sql(
            "SELECT SUM(val) AS s, AVG(val) AS a, MIN(val) AS lo, MAX(val) AS hi "
            "FROM items"
        )[0]
        assert row == {"s": 110, "a": 27.5, "lo": 10, "hi": 50}

    def test_group_by(self, store):
        rows = store.sql(
            "SELECT grp, COUNT(*) AS n FROM items GROUP BY grp ORDER BY grp"
        )
        assert rows == [
            {"grp": "a", "n": 2},
            {"grp": "b", "n": 2},
            {"grp": "c", "n": 1},
        ]

    def test_having(self, store):
        rows = store.sql(
            "SELECT grp, COUNT(*) AS n FROM items GROUP BY grp "
            "HAVING COUNT(*) > 1 ORDER BY grp"
        )
        assert [r["grp"] for r in rows] == ["a", "b"]

    def test_count_distinct(self, store):
        row = store.sql("SELECT COUNT(DISTINCT grp) AS g FROM items")[0]
        assert row == {"g": 3}

    def test_aggregate_over_empty_input(self, store):
        rows = store.sql("SELECT COUNT(*) AS n, SUM(val) AS s FROM items WHERE val > 999")
        assert rows == [{"n": 0, "s": None}]

    def test_aggregate_arithmetic(self, store):
        row = store.sql("SELECT MAX(val) - MIN(val) AS spread FROM items")[0]
        assert row == {"spread": 40}

    def test_aggregates_ignore_nulls(self, store):
        row = store.sql("SELECT AVG(val) AS a FROM items WHERE grp = 'b'")[0]
        assert row == {"a": 30}


class TestJoins:
    def test_inner_join(self, store):
        rows = store.sql(
            "SELECT i.id, g.label FROM items i JOIN groups g ON i.grp = g.g "
            "ORDER BY i.id"
        )
        assert len(rows) == 4  # k5's group 'c' has no label row
        assert rows[0] == {"id": "k1", "label": "alpha"}

    def test_left_join_fills_nulls(self, store):
        rows = store.sql(
            "SELECT i.id, g.label FROM items i LEFT JOIN groups g ON i.grp = g.g "
            "ORDER BY i.id"
        )
        assert len(rows) == 5
        assert rows[-1] == {"id": "k5", "label": None}

    def test_join_with_filter(self, store):
        rows = store.sql(
            "SELECT i.id FROM items i JOIN groups g ON i.grp = g.g "
            "WHERE g.label = 'beta'"
        )
        assert ids(rows) == ["k3", "k4"]

    def test_ambiguous_column_raises(self, store):
        store.create_table(
            "items2",
            TableSchema(
                columns=[Column("id", ColumnType.TEXT, nullable=False)],
                primary_key="id",
            ),
        )
        store.insert_row("items2", {"id": "k1"})
        with pytest.raises(QueryError):
            store.sql("SELECT id FROM items i JOIN items2 j ON i.id = j.id")


class TestOrderingAndLimits:
    def test_order_by_value_desc(self, store):
        rows = store.sql("SELECT id FROM items WHERE val IS NOT NULL ORDER BY val DESC")
        assert ids(rows) == ["k5", "k3", "k2", "k1"]

    def test_nulls_first_ascending(self, store):
        rows = store.sql("SELECT id FROM items ORDER BY val")
        assert ids(rows)[0] == "k4"

    def test_nulls_last_descending(self, store):
        rows = store.sql("SELECT id FROM items ORDER BY val DESC")
        assert ids(rows)[-1] == "k4"

    def test_order_by_expression_not_in_select(self, store):
        rows = store.sql("SELECT id FROM items ORDER BY grp DESC, id")
        assert ids(rows)[0] == "k5"

    def test_limit_offset(self, store):
        rows = store.sql("SELECT id FROM items ORDER BY id LIMIT 2 OFFSET 1")
        assert ids(rows) == ["k2", "k3"]

    def test_index_fast_path_matches_scan(self, store):
        """Same result with and without a secondary index."""
        unindexed = store.sql("SELECT id FROM items WHERE grp = 'b' ORDER BY id")
        store.table("items").create_index("grp")
        indexed = store.sql("SELECT id FROM items WHERE grp = 'b' ORDER BY id")
        assert unindexed == indexed

    def test_pk_in_lookup(self, store):
        rows = store.sql(
            "SELECT id FROM items WHERE id IN ('k5', 'k1') ORDER BY id"
        )
        assert ids(rows) == ["k1", "k5"]
