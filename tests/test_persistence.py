"""Tests for JSON snapshots of polystores and A' indexes."""

import json

import pytest

from repro.persistence import load_snapshot, save_snapshot
from repro.persistence.snapshot import SnapshotError
from repro.core import Quepa
from repro.model.objects import GlobalKey

K = GlobalKey.parse


class TestRoundTrip:
    def test_manifest_and_files(self, tmp_path, mini_polystore, mini_aindex):
        path = save_snapshot(tmp_path / "snap", mini_polystore, mini_aindex)
        names = {p.name for p in path.iterdir()}
        assert "manifest.json" in names
        assert "aindex.json" in names
        assert "db_transactions.json" in names
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["version"] == 2
        assert len(manifest["databases"]) == 4

    def test_objects_survive(self, tmp_path, mini_polystore, mini_aindex):
        save_snapshot(tmp_path / "snap", mini_polystore, mini_aindex)
        polystore, __ = load_snapshot(tmp_path / "snap")
        assert polystore.total_objects() == mini_polystore.total_objects()
        for key_text in (
            "transactions.inventory.a32",
            "catalogue.albums.d1",
            "discount.drop.k1:cure:wish",
            "similar.Item.i1",
        ):
            original = mini_polystore.get(K(key_text)).value
            restored = polystore.get(K(key_text)).value
            assert restored == original

    def test_aindex_survives_verbatim(self, tmp_path, mini_polystore,
                                      mini_aindex):
        save_snapshot(tmp_path / "snap", mini_polystore, mini_aindex)
        __, aindex = load_snapshot(tmp_path / "snap")
        assert aindex.node_count() == mini_aindex.node_count()
        assert aindex.edge_count() == mini_aindex.edge_count()
        for node in mini_aindex.nodes():
            for neighbor in mini_aindex.neighbors(node):
                restored = aindex.relation(node, neighbor.key)
                assert restored is not None
                assert restored.probability == pytest.approx(
                    neighbor.probability
                )
                assert restored.type is neighbor.type

    def test_restored_polystore_answers_queries(self, tmp_path,
                                                mini_polystore, mini_aindex):
        save_snapshot(tmp_path / "snap", mini_polystore, mini_aindex)
        polystore, aindex = load_snapshot(tmp_path / "snap")
        quepa = Quepa(polystore, aindex)
        answer = quepa.augmented_search(
            "transactions", "SELECT * FROM inventory WHERE name LIKE '%wish%'"
        )
        assert len(answer.augmented) == 3

    def test_relational_indexes_restored(self, tmp_path, mini_polystore):
        store = mini_polystore.database("transactions")
        store.table("inventory").create_index("artist")
        save_snapshot(tmp_path / "snap", mini_polystore)
        polystore, __ = load_snapshot(tmp_path / "snap")
        table = polystore.database("transactions").table("inventory")
        assert table.has_index("artist")
        assert table.index_lookup("artist", "Cure") == ["a32", "a33"]

    def test_document_indexes_restored(self, tmp_path, mini_polystore):
        store = mini_polystore.database("catalogue")
        store.create_index("albums", "artist")
        save_snapshot(tmp_path / "snap", mini_polystore)
        polystore, __ = load_snapshot(tmp_path / "snap")
        restored = polystore.database("catalogue")
        assert restored.find("albums", {"artist": "Pixies"})[0]["_id"] == "d2"

    def test_graph_edges_restored(self, tmp_path, mini_polystore):
        save_snapshot(tmp_path / "snap", mini_polystore)
        polystore, __ = load_snapshot(tmp_path / "snap")
        graph = polystore.database("similar")
        assert graph.edge_count() == 2
        assert [n.id for n in graph.neighbors("i1", "SIMILAR")] == ["i2"]

    def test_snapshot_without_aindex(self, tmp_path, mini_polystore):
        save_snapshot(tmp_path / "snap", mini_polystore)
        __, aindex = load_snapshot(tmp_path / "snap")
        assert aindex.node_count() == 0

    def test_generated_bundle_round_trips(self, tmp_path, small_bundle):
        save_snapshot(tmp_path / "snap", small_bundle.polystore,
                      small_bundle.aindex)
        polystore, aindex = load_snapshot(tmp_path / "snap")
        assert polystore.total_objects() == (
            small_bundle.polystore.total_objects()
        )
        assert aindex.edge_count() == small_bundle.aindex.edge_count()


from hypothesis import given, settings  # noqa: E402 (grouped with use)
from hypothesis import strategies as hs  # noqa: E402

_DOC_VALUES = hs.one_of(
    hs.none(),
    hs.booleans(),
    hs.integers(-1000, 1000),
    hs.floats(-1e6, 1e6, allow_nan=False),
    hs.text(max_size=12),
    hs.lists(hs.integers(0, 9), max_size=4),
)


class TestRoundTripProperties:
    """Hypothesis: random stores survive save/load value-for-value."""

    @given(
        entries=hs.dictionaries(
            hs.text("abcdef:", min_size=1, max_size=8),
            hs.text(max_size=10),
            max_size=15,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_keyvalue_round_trip(self, entries, tmp_path_factory):
        from repro.model import Polystore
        from repro.stores import KeyValueStore

        directory = tmp_path_factory.mktemp("kv-snap")
        polystore = Polystore()
        store = KeyValueStore()
        for key, value in entries.items():
            store.set(key, value)
        polystore.attach("kv", store)
        save_snapshot(directory, polystore)
        restored, __ = load_snapshot(directory)
        restored_store = restored.database("kv")
        assert len(restored_store) == len(entries)
        for key, value in entries.items():
            assert restored_store.get_command(key) == value

    @given(
        docs=hs.lists(
            hs.dictionaries(hs.text("xyz", min_size=1, max_size=5),
                            _DOC_VALUES, max_size=5),
            max_size=10,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_document_round_trip(self, docs, tmp_path_factory):
        from repro.model import Polystore
        from repro.stores import DocumentStore

        directory = tmp_path_factory.mktemp("doc-snap")
        polystore = Polystore()
        store = DocumentStore()
        store.create_collection("c")
        for doc in docs:
            payload = dict(doc)
            payload.pop("_id", None)
            store.insert("c", payload)
        polystore.attach("docs", store)
        save_snapshot(directory, polystore)
        restored, __ = load_snapshot(directory)
        restored_store = restored.database("docs")
        assert restored_store.count("c") == len(docs)
        for key in store.collection_keys("c"):
            assert restored_store.get_value("c", key) == store.get_value(
                "c", key
            )


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_snapshot(tmp_path)

    def test_bad_version(self, tmp_path, mini_polystore):
        path = save_snapshot(tmp_path / "snap", mini_polystore)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["version"] = 99
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError):
            load_snapshot(path)

    def test_corrupt_database_file(self, tmp_path, mini_polystore):
        path = save_snapshot(tmp_path / "snap", mini_polystore)
        (path / "db_catalogue.json").write_text("{not json")
        with pytest.raises(SnapshotError):
            load_snapshot(path)
