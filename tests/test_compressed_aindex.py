"""Tests for the frozen CSR A' index snapshot."""

import pytest

from repro.core.aindex import AIndex
from repro.core.augmentation import Augmentation
from repro.core.compressed import FrozenAIndex
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation, RelationType

K = GlobalKey.parse


class TestFreeze:
    def test_counts_match(self, mini_aindex):
        frozen = FrozenAIndex.freeze(mini_aindex)
        assert frozen.node_count() == mini_aindex.node_count()
        assert frozen.edge_count() == mini_aindex.edge_count()

    def test_neighbors_match_live_index(self, mini_aindex):
        frozen = FrozenAIndex.freeze(mini_aindex)
        for node in mini_aindex.nodes():
            live = {
                (str(n.key), n.type, round(n.probability, 9))
                for n in mini_aindex.neighbors(node)
            }
            snap = {
                (str(n.key), n.type, round(n.probability, 9))
                for n in frozen.neighbors(node)
            }
            assert snap == live

    def test_type_filter(self, mini_aindex):
        frozen = FrozenAIndex.freeze(mini_aindex)
        node = K("catalogue.albums.d1")
        identities = frozen.neighbors(node, RelationType.IDENTITY)
        matchings = frozen.neighbors(node, RelationType.MATCHING)
        assert len(identities) + len(matchings) == frozen.degree(node)
        assert all(n.type is RelationType.IDENTITY for n in identities)

    def test_contains_and_degree(self, mini_aindex):
        frozen = FrozenAIndex.freeze(mini_aindex)
        assert K("catalogue.albums.d1") in frozen
        assert K("nowhere.c.x") not in frozen
        assert frozen.degree(K("nowhere.c.x")) == 0

    def test_relation_lookup(self, mini_aindex):
        frozen = FrozenAIndex.freeze(mini_aindex)
        relation = frozen.relation(
            K("catalogue.albums.d1"), K("transactions.inventory.a32")
        )
        assert relation is not None
        assert relation.probability == pytest.approx(0.9)
        assert frozen.relation(K("catalogue.albums.d1"), K("nowhere.c.x")) is None

    def test_empty_index(self):
        frozen = FrozenAIndex.freeze(AIndex())
        assert frozen.node_count() == 0
        assert frozen.neighbors(K("a.b.c")) == []


class TestPlanningEquivalence:
    def test_same_plans_as_live_index(self, mini_aindex):
        frozen = FrozenAIndex.freeze(mini_aindex)
        seed = K("transactions.inventory.a32")
        for level in (0, 1, 2):
            live_plan = Augmentation(mini_aindex).plan([seed], level)
            frozen_plan = Augmentation(frozen).plan([seed], level)  # type: ignore[arg-type]
            live = {
                (str(f.key), round(f.probability, 9))
                for f in live_plan.fetches_by_seed[seed]
            }
            snap = {
                (str(f.key), round(f.probability, 9))
                for f in frozen_plan.fetches_by_seed[seed]
            }
            assert snap == live

    def test_generated_bundle_equivalence(self, small_bundle):
        frozen = FrozenAIndex.freeze(small_bundle.aindex)
        seeds = [small_bundle.entity_key("transactions", i) for i in range(5)]
        live_plan = Augmentation(small_bundle.aindex).plan(seeds, 1)
        frozen_plan = Augmentation(frozen).plan(seeds, 1)  # type: ignore[arg-type]
        assert frozen_plan.total_fetches() == live_plan.total_fetches()


class TestImmutability:
    def test_add_rejected(self, mini_aindex):
        frozen = FrozenAIndex.freeze(mini_aindex)
        with pytest.raises(TypeError):
            frozen.add(
                PRelation.matching(K("a.b.c"), K("d.e.f"), 0.5)
            )

    def test_remove_rejected(self, mini_aindex):
        frozen = FrozenAIndex.freeze(mini_aindex)
        with pytest.raises(TypeError):
            frozen.remove_object(K("catalogue.albums.d1"))

    def test_snapshot_unaffected_by_live_mutations(self, mini_aindex):
        frozen = FrozenAIndex.freeze(mini_aindex)
        before = frozen.degree(K("catalogue.albums.d1"))
        mini_aindex.remove_object(K("catalogue.albums.d1"))
        assert frozen.degree(K("catalogue.albums.d1")) == before
