"""Tests for Mongo-style filter evaluation and projection."""

import pytest

from repro.errors import QueryError
from repro.stores.document.query import matches_filter, project, resolve_path

DOC = {
    "_id": "d1",
    "title": "Wish",
    "year": 1992,
    "price": 14.9,
    "genres": ["rock", "goth"],
    "artist": {"name": "The Cure", "country": "UK"},
    "tracks": [
        {"no": 1, "name": "Open", "sec": 411},
        {"no": 2, "name": "High", "sec": 216},
    ],
}


class TestResolvePath:
    def test_top_level(self):
        assert resolve_path(DOC, "title") == ["Wish"]

    def test_nested(self):
        assert resolve_path(DOC, "artist.name") == ["The Cure"]

    def test_through_array_of_documents(self):
        assert resolve_path(DOC, "tracks.name") == ["Open", "High"]

    def test_array_index(self):
        assert resolve_path(DOC, "tracks.1.name") == ["High"]

    def test_missing(self):
        assert resolve_path(DOC, "nope.deep") == []


class TestComparisons:
    def test_literal_equality(self):
        assert matches_filter(DOC, {"title": "Wish"})
        assert not matches_filter(DOC, {"title": "wish"})

    def test_eq_operator(self):
        assert matches_filter(DOC, {"year": {"$eq": 1992}})

    def test_ne(self):
        assert matches_filter(DOC, {"year": {"$ne": 2000}})
        assert not matches_filter(DOC, {"year": {"$ne": 1992}})

    def test_gt_gte_lt_lte(self):
        assert matches_filter(DOC, {"year": {"$gt": 1991}})
        assert matches_filter(DOC, {"year": {"$gte": 1992}})
        assert matches_filter(DOC, {"year": {"$lt": 1993}})
        assert matches_filter(DOC, {"year": {"$lte": 1992}})
        assert not matches_filter(DOC, {"year": {"$gt": 1992}})

    def test_range_conjunction_in_one_operator_doc(self):
        assert matches_filter(DOC, {"year": {"$gte": 1990, "$lt": 1995}})
        assert not matches_filter(DOC, {"year": {"$gte": 1993, "$lt": 1995}})

    def test_incomparable_types_do_not_match(self):
        assert not matches_filter(DOC, {"title": {"$gt": 5}})

    def test_in_nin(self):
        assert matches_filter(DOC, {"year": {"$in": [1991, 1992]}})
        assert matches_filter(DOC, {"year": {"$nin": [1, 2]}})
        assert not matches_filter(DOC, {"year": {"$in": [1, 2]}})


class TestArrayAndElement:
    def test_array_member_literal_match(self):
        assert matches_filter(DOC, {"genres": "rock"})

    def test_array_whole_equality(self):
        assert matches_filter(DOC, {"genres": {"$eq": ["rock", "goth"]}})

    def test_all(self):
        assert matches_filter(DOC, {"genres": {"$all": ["rock", "goth"]}})
        assert not matches_filter(DOC, {"genres": {"$all": ["rock", "pop"]}})

    def test_size(self):
        assert matches_filter(DOC, {"genres": {"$size": 2}})
        assert not matches_filter(DOC, {"genres": {"$size": 3}})

    def test_elem_match(self):
        query = {"tracks": {"$elemMatch": {"no": 2, "sec": {"$lt": 300}}}}
        assert matches_filter(DOC, query)
        bad = {"tracks": {"$elemMatch": {"no": 1, "sec": {"$lt": 300}}}}
        assert not matches_filter(DOC, bad)

    def test_exists(self):
        assert matches_filter(DOC, {"price": {"$exists": True}})
        assert matches_filter(DOC, {"rating": {"$exists": False}})
        assert not matches_filter(DOC, {"rating": {"$exists": True}})

    def test_type(self):
        assert matches_filter(DOC, {"year": {"$type": "int"}})
        assert matches_filter(DOC, {"title": {"$type": "string"}})
        assert matches_filter(DOC, {"genres": {"$type": "array"}})
        assert not matches_filter(DOC, {"year": {"$type": "string"}})

    def test_regex(self):
        assert matches_filter(DOC, {"title": {"$regex": "^Wi"}})
        assert not matches_filter(DOC, {"title": {"$regex": "^wi"}})

    def test_not(self):
        assert matches_filter(DOC, {"year": {"$not": {"$gt": 2000}}})
        assert not matches_filter(DOC, {"year": {"$not": {"$gt": 1990}}})


class TestLogical:
    def test_and(self):
        assert matches_filter(
            DOC, {"$and": [{"title": "Wish"}, {"year": 1992}]}
        )
        assert not matches_filter(
            DOC, {"$and": [{"title": "Wish"}, {"year": 1}]}
        )

    def test_or(self):
        assert matches_filter(DOC, {"$or": [{"title": "No"}, {"year": 1992}]})
        assert not matches_filter(DOC, {"$or": [{"title": "No"}, {"year": 1}]})

    def test_nor(self):
        assert matches_filter(DOC, {"$nor": [{"title": "No"}, {"year": 1}]})

    def test_implicit_and_of_fields(self):
        assert matches_filter(DOC, {"title": "Wish", "year": 1992})

    def test_unknown_top_level_operator_raises(self):
        with pytest.raises(QueryError):
            matches_filter(DOC, {"$xor": []})

    def test_unknown_field_operator_raises(self):
        with pytest.raises(QueryError):
            matches_filter(DOC, {"year": {"$近": 3}})

    def test_empty_filter_matches_everything(self):
        assert matches_filter(DOC, {})


class TestProjection:
    def test_none_returns_copy(self):
        out = project(DOC, None)
        assert out == DOC
        assert out is not DOC

    def test_inclusion(self):
        assert project(DOC, {"title": 1}) == {"_id": "d1", "title": "Wish"}

    def test_inclusion_without_id(self):
        assert project(DOC, {"title": 1, "_id": 0}) == {"title": "Wish"}

    def test_exclusion(self):
        out = project(DOC, {"tracks": 0, "artist": 0})
        assert "tracks" not in out and "artist" not in out
        assert out["title"] == "Wish"

    def test_mixed_raises(self):
        with pytest.raises(QueryError):
            project(DOC, {"title": 1, "year": 0})

    def test_missing_included_field_omitted(self):
        assert project(DOC, {"nope": 1}) == {"_id": "d1"}
