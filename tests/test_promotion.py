"""Tests for p-relation promotion (Section III-D.a)."""

import pytest

from repro.core.aindex import AIndex
from repro.core.promotion import PathRepository, PromotionPolicy
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation, RelationType

K = GlobalKey.parse


def chain_index(n: int = 5, probability: float = 0.8) -> tuple[AIndex, list]:
    index = AIndex(enforce_consistency=False)
    nodes = [K(f"db{i}.c.n{i}") for i in range(n)]
    for left, right in zip(nodes, nodes[1:]):
        index.add(PRelation.matching(left, right, probability))
    return index, nodes


class TestPolicy:
    def test_threshold_decreases_with_length(self):
        policy = PromotionPolicy(base=24, min_visits=2)
        thresholds = [policy.threshold(length) for length in (2, 3, 4, 6)]
        assert thresholds == sorted(thresholds, reverse=True)
        assert thresholds[-1] >= 2

    def test_minimum_visits_floor(self):
        policy = PromotionPolicy(base=4, min_visits=3)
        assert policy.threshold(10) == 3

    def test_short_path_rejected(self):
        with pytest.raises(ValueError):
            PromotionPolicy().threshold(1)


class TestRepository:
    def test_promotion_after_threshold_visits(self):
        index, nodes = chain_index()
        repo = PathRepository(index, PromotionPolicy(base=8, min_visits=2))
        path = tuple(nodes[:4])  # 3 edges
        threshold = repo.policy.threshold(3)
        promoted = None
        for __ in range(threshold):
            promoted = repo.record_path(path) or promoted
        assert promoted is not None
        assert promoted.type is RelationType.MATCHING
        assert index.relation(nodes[0], nodes[3]) is not None

    def test_probability_is_average_of_path_edges(self):
        index, nodes = chain_index(probability=0.8)
        repo = PathRepository(index, PromotionPolicy(base=2, min_visits=1))
        promoted = repo.record_path(tuple(nodes[:3]))
        assert promoted.probability == pytest.approx(0.8)

    def test_mixed_probabilities_averaged(self):
        index = AIndex(enforce_consistency=False)
        a, b, c = K("d1.c.a"), K("d2.c.b"), K("d3.c.c")
        index.add(PRelation.matching(a, b, 0.6))
        index.add(PRelation.matching(b, c, 0.9))
        repo = PathRepository(index, PromotionPolicy(base=2, min_visits=1))
        promoted = repo.record_path((a, b, c))
        assert promoted.probability == pytest.approx(0.75)

    def test_promotion_happens_exactly_once(self):
        index, nodes = chain_index()
        repo = PathRepository(index, PromotionPolicy(base=2, min_visits=1))
        path = tuple(nodes[:3])
        first = repo.record_path(path)
        second = repo.record_path(path)
        assert first is not None
        assert second is None
        assert len(repo.promoted) == 1

    def test_existing_edge_not_duplicated(self):
        index, nodes = chain_index()
        index.add(PRelation.matching(nodes[0], nodes[2], 0.99))
        repo = PathRepository(index, PromotionPolicy(base=2, min_visits=1))
        promoted = repo.record_path(tuple(nodes[:3]))
        assert promoted is None
        assert index.relation(nodes[0], nodes[2]).probability == 0.99

    def test_two_node_paths_ignored(self):
        index, nodes = chain_index()
        repo = PathRepository(index, PromotionPolicy(base=2, min_visits=1))
        assert repo.record_path((nodes[0], nodes[1])) is None
        assert repo.visits((nodes[0], nodes[1])) == 0

    def test_stale_path_with_deleted_edge_not_promoted(self):
        index, nodes = chain_index()
        repo = PathRepository(index, PromotionPolicy(base=2, min_visits=1))
        index.remove_relation(nodes[1], nodes[2])
        promoted = repo.record_path(tuple(nodes[:4]))
        assert promoted is None

    def test_longer_paths_promote_with_fewer_visits(self):
        index, nodes = chain_index(5)
        policy = PromotionPolicy(base=24, min_visits=2)
        assert policy.threshold(4) < policy.threshold(2)

    def test_distinct_paths_counted_separately(self):
        index, nodes = chain_index(5)
        repo = PathRepository(index, PromotionPolicy(base=100, min_visits=50))
        repo.record_path(tuple(nodes[:3]))
        repo.record_path(tuple(nodes[1:4]))
        assert repo.visits(tuple(nodes[:3])) == 1
        assert repo.visits(tuple(nodes[1:4])) == 1

    def test_cyclic_path_not_promoted(self):
        index, nodes = chain_index()
        repo = PathRepository(index, PromotionPolicy(base=2, min_visits=1))
        cyclic = (nodes[0], nodes[1], nodes[0])
        assert repo.record_path(cyclic) is None
