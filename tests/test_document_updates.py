"""Tests for Mongo-style update operators and bulk writes."""

import pytest

from repro.errors import QueryError
from repro.stores import DocumentStore


@pytest.fixture
def store() -> DocumentStore:
    doc = DocumentStore()
    doc.insert("albums", {
        "_id": "d1", "title": "Wish", "plays": 10,
        "genres": ["rock", "goth"], "artist": "Cure",
    })
    doc.insert("albums", {
        "_id": "d2", "title": "Doolittle", "plays": 5,
        "genres": ["rock"], "artist": "Pixies",
    })
    return doc


class TestOperators:
    def test_set(self, store):
        store.update_one("albums", "d1", {"$set": {"title": "Wish (LP)"}})
        assert store.get_value("albums", "d1")["title"] == "Wish (LP)"

    def test_unset(self, store):
        store.update_one("albums", "d1", {"$unset": {"plays": ""}})
        assert "plays" not in store.get_value("albums", "d1")

    def test_unset_missing_field_noop(self, store):
        store.update_one("albums", "d1", {"$unset": {"ghost": ""}})
        assert store.get_value("albums", "d1")["title"] == "Wish"

    def test_inc(self, store):
        store.update_one("albums", "d1", {"$inc": {"plays": 3}})
        assert store.get_value("albums", "d1")["plays"] == 13

    def test_inc_creates_field(self, store):
        store.update_one("albums", "d1", {"$inc": {"skips": 1}})
        assert store.get_value("albums", "d1")["skips"] == 1

    def test_inc_non_numeric_raises(self, store):
        with pytest.raises(QueryError):
            store.update_one("albums", "d1", {"$inc": {"title": 1}})

    def test_push(self, store):
        store.update_one("albums", "d1", {"$push": {"genres": "dream-pop"}})
        assert store.get_value("albums", "d1")["genres"] == [
            "rock", "goth", "dream-pop",
        ]

    def test_push_creates_list(self, store):
        store.update_one("albums", "d1", {"$push": {"tags": "classic"}})
        assert store.get_value("albums", "d1")["tags"] == ["classic"]

    def test_push_non_list_raises(self, store):
        with pytest.raises(QueryError):
            store.update_one("albums", "d1", {"$push": {"title": "x"}})

    def test_pull(self, store):
        store.update_one("albums", "d1", {"$pull": {"genres": "goth"}})
        assert store.get_value("albums", "d1")["genres"] == ["rock"]

    def test_rename(self, store):
        store.update_one("albums", "d1", {"$rename": {"plays": "listens"}})
        document = store.get_value("albums", "d1")
        assert document["listens"] == 10
        assert "plays" not in document

    def test_multiple_operators_in_one_update(self, store):
        store.update_one(
            "albums", "d1",
            {"$inc": {"plays": 1}, "$set": {"checked": True}},
        )
        document = store.get_value("albums", "d1")
        assert document["plays"] == 11
        assert document["checked"] is True

    def test_mixing_operators_and_fields_raises(self, store):
        with pytest.raises(QueryError):
            store.update_one(
                "albums", "d1", {"$set": {"a": 1}, "plain": 2}
            )

    def test_unknown_dollar_key_raises(self, store):
        with pytest.raises(QueryError):
            store.update_one("albums", "d1", {"$teleport": {"a": 1}})

    def test_id_immutable(self, store):
        with pytest.raises(QueryError):
            store.update_one("albums", "d1", {"$set": {"_id": "evil"}})

    def test_plain_merge_still_works(self, store):
        store.update_one("albums", "d1", {"plays": 99})
        assert store.get_value("albums", "d1")["plays"] == 99

    def test_indexes_maintained_through_operators(self, store):
        store.create_index("albums", "artist")
        store.update_one("albums", "d2", {"$set": {"artist": "Cure"}})
        assert len(store.find("albums", {"artist": "Cure"})) == 2
        assert store.find("albums", {"artist": "Pixies"}) == []


class TestBulkWrites:
    def test_update_many(self, store):
        changed = store.update_many(
            "albums", {"genres": "rock"}, {"$inc": {"plays": 100}}
        )
        assert changed == 2
        assert store.get_value("albums", "d1")["plays"] == 110
        assert store.get_value("albums", "d2")["plays"] == 105

    def test_update_many_no_match(self, store):
        assert store.update_many("albums", {"artist": "Nobody"}, {"x": 1}) == 0

    def test_delete_many(self, store):
        deleted = store.delete_many("albums", {"artist": "Cure"})
        assert deleted == 1
        assert store.count("albums") == 1

    def test_delete_many_all(self, store):
        assert store.delete_many("albums", {}) == 2
        assert store.count("albums") == 0
