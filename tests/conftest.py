"""Shared fixtures: a hand-built mini polystore and generated bundles."""

from __future__ import annotations

import pytest

from repro.core import AIndex, Quepa
from repro.model import GlobalKey, Polystore, PRelation
from repro.network import centralized_profile
from repro.stores import DocumentStore, GraphStore, KeyValueStore, RelationalStore
from repro.stores.relational.types import Column, ColumnType, TableSchema
from repro.workloads import PolystoreScale, build_polyphony

K = GlobalKey.parse


def make_mini_polystore() -> Polystore:
    """The Fig 1 scenario, hand-built: 4 engines, a handful of objects."""
    polystore = Polystore()
    sales = RelationalStore()
    sales.create_table(
        "inventory",
        TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("artist", ColumnType.TEXT),
                Column("name", ColumnType.TEXT),
                Column("price", ColumnType.FLOAT),
            ],
            primary_key="id",
        ),
    )
    sales.insert_row(
        "inventory", {"id": "a32", "artist": "Cure", "name": "Wish", "price": 14.9}
    )
    sales.insert_row(
        "inventory",
        {"id": "a33", "artist": "Cure", "name": "Disintegration", "price": 12.5},
    )
    sales.insert_row(
        "inventory",
        {"id": "a34", "artist": "Pixies", "name": "Doolittle", "price": 11.0},
    )
    polystore.attach("transactions", sales)

    catalogue = DocumentStore()
    catalogue.insert(
        "albums",
        {"_id": "d1", "title": "Wish", "artist": "The Cure", "year": 1992},
    )
    catalogue.insert(
        "albums",
        {"_id": "d2", "title": "Doolittle", "artist": "Pixies", "year": 1989},
    )
    catalogue.insert(
        "customers", {"_id": "c1", "name": "Lucy Doe", "country": "US"}
    )
    polystore.attach("catalogue", catalogue)

    discounts = KeyValueStore(keyspace="drop")
    discounts.set("k1:cure:wish", "40%")
    discounts.set("k2:pixies:doolittle", "10%")
    polystore.attach("discount", discounts)

    similar = GraphStore()
    similar.create_node("Item", {"title": "Wish"}, node_id="i1")
    similar.create_node("Item", {"title": "Disintegration"}, node_id="i2")
    similar.create_node("Item", {"title": "Doolittle"}, node_id="i3")
    similar.create_edge("i1", "SIMILAR", "i2", {"weight": 0.9})
    similar.create_edge("i2", "SIMILAR", "i3", {"weight": 0.4})
    polystore.attach("similar", similar)
    return polystore


def make_mini_aindex() -> AIndex:
    """P-relations over the mini polystore (Example 2 + graph links)."""
    index = AIndex()
    index.add(
        PRelation.identity(
            K("catalogue.albums.d1"), K("discount.drop.k1:cure:wish"), 0.8
        )
    )
    index.add(
        PRelation.identity(
            K("catalogue.albums.d1"), K("transactions.inventory.a32"), 0.9
        )
    )
    index.add(
        PRelation.matching(K("catalogue.albums.d1"), K("similar.Item.i1"), 0.7)
    )
    index.add(
        PRelation.identity(
            K("catalogue.albums.d2"), K("transactions.inventory.a34"), 0.95
        )
    )
    index.add(
        PRelation.matching(K("similar.Item.i1"), K("similar.Item.i2"), 0.65)
    )
    return index


@pytest.fixture
def mini_polystore() -> Polystore:
    return make_mini_polystore()


@pytest.fixture
def mini_aindex() -> AIndex:
    return make_mini_aindex()


@pytest.fixture
def mini_quepa(mini_polystore, mini_aindex) -> Quepa:
    profile = centralized_profile(list(mini_polystore))
    return Quepa(mini_polystore, mini_aindex, profile=profile)


@pytest.fixture(scope="session")
def small_bundle():
    """A generated 4-store Polyphony bundle (session-cached, read-only)."""
    return build_polyphony(stores=4, scale=PolystoreScale(n_albums=120), seed=3)


@pytest.fixture(scope="session")
def seven_store_bundle():
    """A generated 7-store bundle (session-cached, read-only)."""
    return build_polyphony(stores=7, scale=PolystoreScale(n_albums=150), seed=4)
