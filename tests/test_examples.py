"""Every example script must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate what they do"


def test_expected_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {
        "quickstart",
        "polyphony_search",
        "exploration_and_promotion",
        "adaptive_tuning",
        "collector_pipeline",
        "augmented_analytics",
        "cluster_deployment",
    } <= names
