"""Fault injection: flaky and down stores during augmentation."""

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.errors import StoreUnavailableError
from repro.model.objects import GlobalKey
from repro.testing import DownStore, FlakyStore
from tests.conftest import make_mini_aindex, make_mini_polystore

K = GlobalKey.parse
QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"
ALL_AUGMENTERS = (
    "sequential", "batch", "inner", "outer", "outer_batch", "outer_inner",
)


def polystore_with_down_catalogue():
    """The mini polystore with the catalogue store offline."""
    polystore = make_mini_polystore()
    inner = polystore.detach("catalogue")
    polystore.attach("catalogue", DownStore(inner))
    return polystore, make_mini_aindex()


class TestWrappers:
    def test_flaky_store_fails_on_schedule(self, mini_polystore):
        flaky = FlakyStore(
            mini_polystore.database("transactions"), fail_every=2
        )
        flaky.database_name = "transactions"
        flaky.get(K("transactions.inventory.a32"))  # call 1: fine
        with pytest.raises(StoreUnavailableError):
            flaky.get(K("transactions.inventory.a32"))  # call 2: fails
        assert flaky.failures == 1

    def test_flaky_store_delegates_reads(self, mini_polystore):
        flaky = FlakyStore(
            mini_polystore.database("transactions"), fail_every=100
        )
        assert flaky.engine == "relational"
        assert flaky.collections() == ["inventory"]
        assert flaky.get_value("inventory", "a32")["name"] == "Wish"

    def test_flaky_execute_rekeys_to_wrapper_name(self, mini_polystore):
        flaky = FlakyStore(
            mini_polystore.database("transactions"), fail_every=100
        )
        flaky.database_name = "mirror"
        objects = flaky.execute("SELECT * FROM inventory")
        assert all(o.key.database == "mirror" for o in objects)

    def test_down_store_always_fails(self, mini_polystore):
        down = DownStore(mini_polystore.database("transactions"))
        with pytest.raises(StoreUnavailableError):
            down.execute("SELECT * FROM inventory")

    def test_invalid_fail_every(self, mini_polystore):
        with pytest.raises(ValueError):
            FlakyStore(mini_polystore.database("transactions"), fail_every=0)


class TestAugmentationUnderFailure:
    @pytest.mark.parametrize("augmenter", ALL_AUGMENTERS)
    def test_failure_propagates_by_default(self, augmenter):
        polystore, aindex = polystore_with_down_catalogue()
        quepa = Quepa(polystore, aindex)
        config = AugmentationConfig(
            augmenter=augmenter, batch_size=2, threads_size=2
        )
        with pytest.raises(StoreUnavailableError):
            quepa.augmented_search("transactions", QUERY, config=config)

    @pytest.mark.parametrize("augmenter", ALL_AUGMENTERS)
    def test_skip_unavailable_degrades_gracefully(self, augmenter):
        polystore, aindex = polystore_with_down_catalogue()
        quepa = Quepa(polystore, aindex)
        config = AugmentationConfig(
            augmenter=augmenter, batch_size=2, threads_size=2,
            skip_unavailable=True,
        )
        answer = quepa.augmented_search("transactions", QUERY, config=config)
        keys = {str(k) for k in answer.augmented_keys()}
        # The reachable stores still contribute...
        assert "discount.drop.k1:cure:wish" in keys
        assert "similar.Item.i1" in keys
        # ...the down store's objects are skipped and reported.
        assert "catalogue.albums.d1" not in keys
        assert answer.stats.unavailable_databases == ("catalogue",)

    def test_batch_skipped_flush_not_counted_as_query(self):
        """Regression: a flush swallowed by ``skip_unavailable`` used to
        count toward ``queries_issued`` even though no query ran."""
        polystore, aindex = polystore_with_down_catalogue()
        quepa = Quepa(polystore, aindex)
        config = AugmentationConfig(
            augmenter="batch", batch_size=2, skip_unavailable=True
        )
        answer = quepa.augmented_search("transactions", QUERY, config=config)
        # The local query plus one flush each for discount and similar;
        # the failed catalogue flush is reported as skipped instead.
        assert answer.stats.queries_issued == 3
        assert quepa.last_record.skipped_flushes == 1
        skips = quepa.obs.metrics.counter(
            "store_unavailable_skips_total", database="catalogue"
        )
        assert skips.value == 1

    def test_missing_objects_deduped_across_seeds(self):
        """Regression: one unreachable object shared by many seeds was
        reported (and lazily deleted) once per seed."""
        from repro.model.prelations import PRelation

        polystore = make_mini_polystore()
        aindex = make_mini_aindex()
        polystore.database("transactions").insert_row(
            "inventory", {"id": "a99", "artist": "x", "name": "Wishbone"}
        )
        # Two seeds point at the same nonexistent object.
        ghost = K("catalogue.albums.nope")
        aindex.add(PRelation.identity(K("transactions.inventory.a32"),
                                      ghost, 0.9))
        aindex.add(PRelation.identity(K("transactions.inventory.a99"),
                                      ghost, 0.9))
        quepa = Quepa(polystore, aindex)
        answer = quepa.augmented_search(
            "transactions", "SELECT * FROM inventory WHERE name LIKE '%wish%'"
        )
        assert answer.stats.missing_objects == 1

    def test_skipped_store_not_lazily_deleted(self):
        """Unavailability is transient: the A' index must keep the
        down store's nodes (unlike genuinely missing objects)."""
        polystore, aindex = polystore_with_down_catalogue()
        quepa = Quepa(polystore, aindex)
        config = AugmentationConfig(
            augmenter="sequential", skip_unavailable=True
        )
        quepa.augmented_search("transactions", QUERY, config=config)
        assert K("catalogue.albums.d1") in quepa.aindex

    def test_local_query_failure_always_propagates(self):
        """Graceful degradation covers remote fetches, not the user's
        own query: if the target store is down, the query fails."""
        polystore, aindex = polystore_with_down_catalogue()
        quepa = Quepa(polystore, aindex)
        config = AugmentationConfig(skip_unavailable=True)
        with pytest.raises(StoreUnavailableError):
            quepa.augmented_search(
                "catalogue",
                {"collection": "albums", "filter": {}},
                config=config,
            )

    def test_flaky_store_partial_results(self):
        """A store failing intermittently yields partial augmentation."""
        polystore = make_mini_polystore()
        inner = polystore.detach("catalogue")
        flaky = FlakyStore(inner, fail_every=2)
        polystore.attach("catalogue", flaky)
        quepa = Quepa(polystore, make_mini_aindex())
        config = AugmentationConfig(
            augmenter="sequential", skip_unavailable=True, cache_size=0
        )
        answer = quepa.augmented_search(
            "transactions", "SELECT * FROM inventory", config=config
        )
        catalogue_objects = [
            k for k in answer.augmented_keys() if k.database == "catalogue"
        ]
        # Two catalogue fetches were planned; with every second call
        # failing, exactly one of them succeeded.
        assert len(catalogue_objects) == 1
        assert answer.stats.unavailable_databases == ("catalogue",)
        assert flaky.failures == 1
