"""Tests for the Polyphony generator, builder and query workload."""

import pytest

from repro.core import Quepa
from repro.model.prelations import RelationType
from repro.workloads import (
    MusicGenerator,
    PolystoreScale,
    QueryWorkload,
    build_polyphony,
)
from repro.workloads.builder import plan_databases


class TestMusicGenerator:
    def test_deterministic_for_seed(self):
        one = MusicGenerator(50, seed=9).albums()
        two = MusicGenerator(50, seed=9).albums()
        assert one == two

    def test_different_seeds_differ(self):
        one = MusicGenerator(50, seed=1).albums()
        two = MusicGenerator(50, seed=2).albums()
        assert one != two

    def test_transactions_store_shape(self):
        store = MusicGenerator(30, seed=1).build_transactions()
        assert len(store.table("inventory")) == 30
        assert len(store.table("sales")) > 0
        assert len(store.table("sales_details")) > 0

    def test_sales_details_reference_inventory(self):
        store = MusicGenerator(30, seed=1).build_transactions()
        inventory_ids = {pk for pk, __ in store.table("inventory").rows()}
        for __, row in store.table("sales_details").rows():
            assert row["item_id"] in inventory_ids

    def test_catalogue_store_shape(self):
        store = MusicGenerator(30, seed=1).build_catalogue()
        assert store.count("albums") == 30
        assert store.count("customers") > 0

    def test_similar_store_uniform_degree(self):
        store = MusicGenerator(30, seed=1).build_similar(neighbors=3)
        assert store.node_count() == 30
        assert store.edge_count() == 90

    def test_discount_store_shape(self):
        store = MusicGenerator(30, seed=1).build_discount()
        assert len(store) == 30
        assert store.get_command("disc:0").endswith("%")

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MusicGenerator(0)


class TestPlanDatabases:
    def test_base_four(self):
        names = [name for name, __ in plan_databases(4)]
        assert names == ["transactions", "catalogue", "similar", "discount"]

    def test_replication_scheme(self):
        names = [name for name, __ in plan_databases(13)]
        assert "transactions4" in names
        assert "catalogue3" in names
        # Redis is never replicated.
        assert sum(1 for n in names if n.startswith("discount")) == 1

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            plan_databases(3)
        with pytest.raises(ValueError):
            plan_databases(6)


class TestBuilder:
    def test_bundle_shape(self, small_bundle):
        assert small_bundle.store_count == 4
        assert small_bundle.polystore.total_objects() > 4 * 120

    def test_entity_keys_resolve(self, small_bundle):
        for database in small_bundle.database_names():
            key = small_bundle.entity_key(database, 0)
            assert small_bundle.polystore.exists(key), str(key)

    def test_identity_cliques_in_index(self, small_bundle):
        keys = [
            small_bundle.entity_key(db, 5)
            for db in small_bundle.database_names()
        ]
        for i, left in enumerate(keys):
            for right in keys[i + 1:]:
                relation = small_bundle.aindex.relation(left, right)
                assert relation is not None
                assert relation.type is RelationType.IDENTITY
                assert relation.probability >= 0.9

    def test_matching_edges_link_next_entity(self, small_bundle):
        names = small_bundle.database_names()
        left = small_bundle.entity_key(names[0], 3)
        right = small_bundle.entity_key(names[1], 4)
        relation = small_bundle.aindex.relation(left, right)
        assert relation is not None
        assert relation.type is RelationType.MATCHING
        assert 0.6 <= relation.probability <= 0.89

    def test_uniform_density(self, seven_store_bundle):
        """Every object has the same degree: k-1 identities + 2 matchings."""
        bundle = seven_store_bundle
        expected = (bundle.store_count - 1) + 2
        for database in bundle.database_names():
            for entity in (0, 10, 99):
                key = bundle.entity_key(database, entity)
                assert bundle.aindex.degree(key) == expected

    def test_aindex_can_be_skipped(self):
        bundle = build_polyphony(
            stores=4, scale=PolystoreScale(n_albums=10), with_aindex=False
        )
        assert bundle.aindex.node_count() == 0

    def test_growth_is_linear_in_stores(self):
        small = build_polyphony(4, PolystoreScale(n_albums=40))
        large = build_polyphony(7, PolystoreScale(n_albums=40))
        assert large.aindex.node_count() == pytest.approx(
            small.aindex.node_count() * 7 / 4, rel=0.01
        )


class TestQueryWorkload:
    @pytest.mark.parametrize("database_index", [0, 1, 2, 3])
    @pytest.mark.parametrize("size", [10, 50, 120])
    def test_exact_result_sizes_per_engine(
        self, small_bundle, database_index, size
    ):
        workload = QueryWorkload(small_bundle)
        database = small_bundle.database_names()[database_index]
        query = workload.query(database, size)
        store = small_bundle.polystore.database(database)
        results = store.execute(query.query)
        assert len(results) == size

    def test_variants_shift_windows(self, small_bundle):
        workload = QueryWorkload(small_bundle)
        first = workload.query("transactions", 10, variant=0)
        second = workload.query("transactions", 10, variant=1)
        store = small_bundle.polystore.database("transactions")
        keys_one = {o.key for o in store.execute(first.query)}
        keys_two = {o.key for o in store.execute(second.query)}
        assert keys_one != keys_two

    def test_oversized_query_rejected(self, small_bundle):
        workload = QueryWorkload(small_bundle)
        with pytest.raises(ValueError):
            workload.query("transactions", 10_000)

    def test_queries_for_size_covers_all_stores(self, seven_store_bundle):
        workload = QueryWorkload(seven_store_bundle)
        queries = workload.queries_for_size(10)
        assert len(queries) == 7

    def test_base_queries_one_per_engine(self, seven_store_bundle):
        workload = QueryWorkload(seven_store_bundle)
        queries = workload.base_queries(10)
        assert sorted(q.engine for q in queries) == [
            "document", "graph", "keyvalue", "relational",
        ]

    def test_augmented_answer_scales_with_stores(self, small_bundle,
                                                 seven_store_bundle):
        """Level-0 augmentation grows linearly with the store count."""
        answers = {}
        for bundle in (small_bundle, seven_store_bundle):
            quepa = Quepa(bundle.polystore, bundle.aindex)
            query = QueryWorkload(bundle).query("transactions", 20)
            answer = quepa.augmented_search(query.database, query.query)
            answers[bundle.store_count] = len(answer.augmented)
        assert answers[7] > answers[4]
