"""Tests for the string/numeric comparators."""

import pytest

from repro.collector.comparators import (
    ExactComparator,
    JaroWinklerComparator,
    LevenshteinComparator,
    NumericComparator,
    TokenOverlapComparator,
    jaro_similarity,
    levenshtein_distance,
)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a, b, distance",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "", 3),
            ("", "xyz", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("cure", "curse", 1),
        ],
    )
    def test_known_distances(self, a, b, distance):
        assert levenshtein_distance(a, b) == distance

    def test_symmetry(self):
        assert levenshtein_distance("wish", "fish") == levenshtein_distance(
            "fish", "wish"
        )

    def test_comparator_normalizes(self):
        comparator = LevenshteinComparator()
        assert comparator.compare("wish", "wish") == 1.0
        assert comparator.compare("wish", "fish") == pytest.approx(0.75)
        assert comparator.compare(None, "x") == 0.0
        assert comparator.compare(None, None) == 0.0

    def test_comparator_is_case_insensitive(self):
        assert LevenshteinComparator().compare("WISH", "wish") == 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_classic_example(self):
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_no_overlap(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "x") == 0.0

    def test_winkler_prefix_bonus(self):
        jw = JaroWinklerComparator()
        plain = jaro_similarity("dixon", "dicksonx")
        boosted = jw.compare("dixon", "dicksonx")
        assert boosted > plain
        assert boosted == pytest.approx(0.8133, abs=1e-3)

    def test_winkler_caps_prefix(self):
        jw = JaroWinklerComparator(max_prefix=4)
        assert jw.compare("abcdefgh", "abcdefgh") == 1.0


class TestExactAndTokens:
    def test_exact_strings_case_insensitive(self):
        assert ExactComparator().compare("Wish", "wish") == 1.0
        assert ExactComparator().compare("Wish", "Wash") == 0.0

    def test_exact_numbers(self):
        assert ExactComparator().compare(3, 3.0) == 1.0
        assert ExactComparator().compare(3, 4) == 0.0

    def test_exact_none(self):
        assert ExactComparator().compare(None, None) == 0.0

    def test_token_overlap_jaccard(self):
        comparator = TokenOverlapComparator()
        assert comparator.compare("the queen is dead", "the queen") == 0.5
        assert comparator.compare("a b", "a b") == 1.0
        assert comparator.compare("a", "") == 0.0


class TestNumeric:
    def test_equal_values(self):
        assert NumericComparator().compare(10, 10) == 1.0
        assert NumericComparator().compare(0, 0) == 1.0

    def test_linear_decay(self):
        comparator = NumericComparator(tolerance=0.5)
        assert comparator.compare(100, 75) == pytest.approx(0.5)
        assert comparator.compare(100, 50) == 0.0
        assert comparator.compare(100, 40) == 0.0

    def test_symmetry(self):
        comparator = NumericComparator(0.4)
        assert comparator.compare(8, 10) == comparator.compare(10, 8)

    def test_non_numeric_is_zero(self):
        assert NumericComparator().compare("x", 1) == 0.0

    def test_numeric_strings_coerced(self):
        assert NumericComparator().compare("10", 10) == 1.0

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            NumericComparator(0)
