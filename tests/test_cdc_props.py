"""Differential suite: incremental CDC maintenance == batch rebuild.

The tentpole invariant of :mod:`repro.cdc`: after any interleaving of
store writes and hub pumps, the incrementally maintained A' index holds
exactly the p-relations a from-scratch batch
:class:`~repro.collector.Collector` run over the current polystore
would produce, and augmented searches answer identically at levels 0
and 1 — sharded and unsharded. Probabilities are compared rounded to 12
decimals: closure products are order-independent modulo float
association in the last ulp.
"""

from __future__ import annotations

import random

import pytest

from repro.cdc import ChangeHub, IncrementalCollector
from repro.collector import Collector, JaroWinklerComparator, PairwiseMatcher
from repro.collector.collector import CollectorSettings
from repro.collector.matching import AttributeRule
from repro.core import Quepa
from repro.core.aindex import AIndex
from repro.errors import ConfigurationError
from repro.model import Polystore
from repro.sharding.aindex import ShardedAIndex
from repro.stores import (
    DocumentStore,
    GraphStore,
    KeyValueStore,
    RelationalStore,
)
from repro.stores.relational.types import Column, ColumnType, TableSchema

SEEDS = (7, 23, 91)

#: Multi-token titles sharing the "silver" token, so the blocker keeps
#: putting mutated objects into contested buckets (and the query below
#: always has results to augment).
TITLES = (
    "Silver Sessions",
    "Silver Harbors",
    "Silver Rivers Live",
    "Violet Dreams",
    "Endless Rivers",
    "Quiet Harbors",
    "Golden Sessions",
    "Midnight Harbors",
)

QUERIES = (
    ("transactions", "SELECT * FROM inventory WHERE name LIKE '%Silver%'"),
    ("catalogue", {"collection": "albums", "filter": {}}),
)


def make_matcher() -> PairwiseMatcher:
    return PairwiseMatcher(
        [AttributeRule("name", "title", JaroWinklerComparator())],
        identity_threshold=0.9,
        matching_threshold=0.6,
    )


def build_polystore() -> Polystore:
    polystore = Polystore()
    sales = RelationalStore()
    sales.create_table(
        "inventory",
        TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("name", ColumnType.TEXT),
            ],
            primary_key="id",
        ),
    )
    catalogue = DocumentStore()
    similar = GraphStore()
    discount = KeyValueStore(keyspace="drop")
    for index, title in enumerate(TITLES[:5]):
        sales.insert_row("inventory", {"id": f"a{index}", "name": title})
        catalogue.insert("albums", {"_id": f"d{index}", "title": title})
        similar.create_node("Item", {"title": title}, node_id=f"i{index}")
    discount.set("k0", TITLES[0])
    discount.set("k1", TITLES[3])
    polystore.attach("transactions", sales)
    polystore.attach("catalogue", catalogue)
    polystore.attach("similar", similar)
    polystore.attach("discount", discount)
    return polystore


class Driver:
    """Seeded random writes across all four engines."""

    def __init__(self, polystore: Polystore, rng: random.Random) -> None:
        self.polystore = polystore
        self.rng = rng
        self.next_id = 100
        self.rows = [f"a{i}" for i in range(5)]
        self.docs = [f"d{i}" for i in range(5)]
        self.nodes = [f"i{i}" for i in range(5)]
        self.kv_keys = ["k0", "k1"]

    def title(self) -> str:
        base = self.rng.choice(TITLES)
        if self.rng.random() < 0.4:
            base += f" {self.rng.choice(('Live', 'Remaster', 'Deluxe'))}"
        return base

    def step(self) -> None:
        op = self.rng.randrange(11)
        sales = self.polystore.database("transactions")
        catalogue = self.polystore.database("catalogue")
        similar = self.polystore.database("similar")
        discount = self.polystore.database("discount")
        fresh = self.next_id
        self.next_id += 1
        if op == 0:
            sales.table("inventory").insert(
                {"id": f"a{fresh}", "name": self.title()}
            )
            self.rows.append(f"a{fresh}")
        elif op == 1:
            catalogue.insert(
                "albums", {"_id": f"d{fresh}", "title": self.title()}
            )
            self.docs.append(f"d{fresh}")
        elif op == 2:
            similar.create_node(
                "Item", {"title": self.title()}, node_id=f"i{fresh}"
            )
            self.nodes.append(f"i{fresh}")
        elif op == 3:
            key = f"k{fresh}"
            discount.set(key, self.title())
            self.kv_keys.append(key)
        elif op == 4 and self.rows:
            sales.table("inventory").update(
                self.rng.choice(self.rows), {"name": self.title()}
            )
        elif op == 5 and self.docs:
            catalogue.update_one(
                "albums", self.rng.choice(self.docs),
                {"$set": {"title": self.title()}},
            )
        elif op == 6 and self.nodes:
            similar.update_node(
                self.rng.choice(self.nodes), {"title": self.title()}
            )
        elif op == 7 and len(self.rows) > 1:
            sales.table("inventory").delete(self.rows.pop())
        elif op == 8 and len(self.docs) > 1:
            catalogue.delete_one("albums", self.docs.pop())
        elif op == 9 and len(self.nodes) > 1:
            similar.delete_node(self.nodes.pop())
        elif op == 10 and len(self.kv_keys) > 1:
            discount.delete(self.kv_keys.pop())


def index_signature(index) -> set[tuple[str, str, str, float]]:
    signature = set()
    for node in set(index.nodes()):
        for neighbor in index.neighbors(node):
            signature.add(
                (
                    str(node),
                    str(neighbor.key),
                    neighbor.type.value,
                    round(neighbor.probability, 12),
                )
            )
    return signature


def batch_signature(polystore: Polystore) -> set:
    index = AIndex()
    Collector(make_matcher()).collect(polystore, index)
    return index_signature(index)


def answer_signature(answer):
    return (
        sorted(str(obj.key) for obj in answer.originals),
        sorted(
            (str(obj.key), round(obj.probability, 12))
            for obj in answer.augmented
        ),
    )


def assert_same_answers(polystore: Polystore, live_index) -> None:
    """Searches through the live index == searches through a rebuild."""
    batch_index = AIndex()
    Collector(make_matcher()).collect(polystore, batch_index)
    live = Quepa(polystore, live_index)
    batch = Quepa(polystore, batch_index)
    for database, query in QUERIES:
        for level in (0, 1):
            got = live.augmented_search(database, query, level=level)
            want = batch.augmented_search(database, query, level=level)
            assert answer_signature(got) == answer_signature(want), (
                f"answers diverged on {database} level {level}"
            )


class TestBootstrap:
    def test_bootstrap_matches_batch(self):
        polystore = build_polystore()
        index = AIndex()
        hub = ChangeHub(polystore, index, IncrementalCollector(make_matcher()))
        report = hub.bootstrap()
        assert report.objects_scanned > 0
        assert index_signature(index) == batch_signature(polystore)

    def test_rejects_candidate_cap(self):
        settings = CollectorSettings(max_candidate_pairs=10)
        with pytest.raises(ConfigurationError):
            IncrementalCollector(make_matcher(), settings)


class TestIncrementalEqualsBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_unsharded(self, seed):
        rng = random.Random(seed)
        polystore = build_polystore()
        index = AIndex()
        hub = ChangeHub(polystore, index, IncrementalCollector(make_matcher()))
        hub.bootstrap()
        driver = Driver(polystore, rng)
        for step in range(60):
            driver.step()
            if rng.random() < 0.3:
                hub.pump()
        hub.pump()
        assert index_signature(index) == batch_signature(polystore)
        assert_same_answers(polystore, index)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sharded(self, seed):
        """Deltas route through the sharded index's owning partitions
        and still land on the batch-equivalent edge set."""
        rng = random.Random(seed)
        polystore = build_polystore()
        index = ShardedAIndex(shards=3)
        hub = ChangeHub(polystore, index, IncrementalCollector(make_matcher()))
        hub.bootstrap()
        driver = Driver(polystore, rng)
        for step in range(60):
            driver.step()
            if rng.random() < 0.3:
                hub.pump()
        hub.pump()
        # Same edge set as an unsharded batch rebuild...
        assert index_signature(index) == batch_signature(polystore)
        # ...and as a sharded batch rebuild.
        sharded_batch = ShardedAIndex(shards=3)
        Collector(make_matcher()).collect(polystore, sharded_batch)
        assert index_signature(index) == index_signature(sharded_batch)
        assert_same_answers(polystore, index)

    def test_pump_cadence_is_irrelevant(self):
        """The same writes produce the same index whether pumped after
        every write, in coarse batches, or once at the end."""
        signatures = []
        for cadence in (1, 7, 10_000):
            rng = random.Random(5)
            polystore = build_polystore()
            index = AIndex()
            hub = ChangeHub(
                polystore, index, IncrementalCollector(make_matcher())
            )
            hub.bootstrap()
            driver = Driver(polystore, rng)
            for step in range(40):
                driver.step()
                if (step + 1) % cadence == 0:
                    hub.pump()
            hub.pump()
            signatures.append(index_signature(index))
        assert signatures[0] == signatures[1] == signatures[2]


class TestMaterializedTier:
    def test_hit_after_promotion_and_invalidation_on_write(self):
        from repro.cdc import MaterializedAugmentations

        polystore = build_polystore()
        index = AIndex()
        tier = MaterializedAugmentations(hot_threshold=2)
        hub = ChangeHub(
            polystore, index, IncrementalCollector(make_matcher()),
            materialized=tier,
        )
        hub.bootstrap()
        quepa = Quepa(polystore, index)
        database, query = QUERIES[0]

        def compute():
            return quepa.augmented_search(database, query, level=1)

        # Two misses promote; the third request hits.
        for __ in range(2):
            assert tier.lookup(database, query, 1) is None
            tier.observe(database, query, 1, True, compute())
        hit = tier.lookup(database, query, 1)
        assert hit is not None
        assert hit.stats.materialized
        assert answer_signature(hit) == answer_signature(compute())

        # A write on a dependency database invalidates the entry.
        polystore.database("transactions").table("inventory").update(
            "a0", {"name": "Renamed Entirely"}
        )
        hub.pump()
        assert tier.lookup(database, query, 1) is None
        # Recomputed-and-reobserved answers reflect the new state.
        tier.observe(database, query, 1, True, compute())
        fresh = tier.lookup(database, query, 1)
        assert fresh is not None
        assert answer_signature(fresh) == answer_signature(compute())
