"""Tests for the RepTree-style regression tree."""

import random

import pytest

from repro.errors import NotTrainedError, TrainingError
from repro.ml import Example, RepTree


def step_examples() -> list[Example]:
    """y = 10 for x <= 50, else 100."""
    return [
        Example({"x": x}, 10.0 if x <= 50 else 100.0) for x in range(0, 101, 2)
    ]


def grid_examples() -> list[Example]:
    """y depends on a categorical and a numeric feature."""
    data = []
    for deployment in ("centralized", "distributed"):
        for size in range(10, 200, 10):
            base = 100 if deployment == "distributed" else 10
            data.append(
                Example({"deployment": deployment, "size": size},
                        base + size * 0.1)
            )
    return data


class TestTraining:
    def test_learns_step_function(self):
        tree = RepTree(min_leaf=2).fit(step_examples())
        assert tree.predict({"x": 10}) == pytest.approx(10.0, abs=1.0)
        assert tree.predict({"x": 90}) == pytest.approx(100.0, abs=1.0)

    def test_learns_categorical_offset(self):
        tree = RepTree(min_leaf=2).fit(grid_examples())
        low = tree.predict({"deployment": "centralized", "size": 100})
        high = tree.predict({"deployment": "distributed", "size": 100})
        assert high - low > 50

    def test_constant_target_single_leaf(self):
        examples = [Example({"x": i}, 7.0) for i in range(20)]
        tree = RepTree().fit(examples)
        assert tree.predict({"x": 999}) == 7.0

    def test_non_numeric_target_rejected(self):
        with pytest.raises(TrainingError):
            RepTree().fit([Example({"x": 1}, "high")])

    def test_boolean_target_rejected(self):
        with pytest.raises(TrainingError):
            RepTree().fit([Example({"x": 1}, True)])

    def test_integer_targets_accepted(self):
        tree = RepTree(min_leaf=1, prune=False).fit(
            [Example({"x": i}, i * 2) for i in range(10)]
        )
        assert tree.predict({"x": 3}) == pytest.approx(6.0, abs=4.0)


class TestPrediction:
    def test_predict_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            RepTree().predict({"x": 1})

    def test_missing_feature_returns_node_mean(self):
        tree = RepTree(min_leaf=2).fit(step_examples())
        prediction = tree.predict({})
        assert 10.0 <= prediction <= 100.0

    def test_unseen_category_returns_node_mean(self):
        tree = RepTree(min_leaf=2).fit(grid_examples())
        prediction = tree.predict({"deployment": "lunar", "size": 100})
        assert prediction > 0

    def test_mse_on_training_data_is_low(self):
        examples = step_examples()
        tree = RepTree(min_leaf=2).fit(examples)
        assert tree.mse(examples) < 5.0

    def test_mse_empty_is_zero(self):
        tree = RepTree(min_leaf=2).fit(step_examples())
        assert tree.mse([]) == 0.0


class TestPruning:
    def test_reduced_error_pruning_controls_noise(self):
        rng = random.Random(3)
        examples = [
            Example({"x": rng.random()}, rng.gauss(50.0, 1.0))
            for __ in range(200)
        ]
        pruned = RepTree(prune=True, min_leaf=1, max_depth=12).fit(examples)
        unpruned = RepTree(prune=False, min_leaf=1, max_depth=12).fit(examples)

        def leaf_count(tree):
            def walk(node):
                if node.is_leaf:
                    return 1
                return sum(walk(child) for child in node.children.values())

            return walk(tree._root)

        assert leaf_count(pruned) <= leaf_count(unpruned)

    def test_pruning_preserves_strong_signal(self):
        tree = RepTree(prune=True, min_leaf=2).fit(step_examples())
        assert abs(tree.predict({"x": 0}) - tree.predict({"x": 100})) > 50


class TestInspection:
    def test_to_text(self):
        tree = RepTree(min_leaf=2).fit(step_examples())
        text = tree.to_text()
        assert "x" in text and "->" in text

    def test_to_text_before_fit_raises(self):
        with pytest.raises(NotTrainedError):
            RepTree().to_text()
