"""Tests for the validator: augmentability checks and rewrites."""

import pytest

from repro.core.validator import Validator, expr_to_string, sql_to_string
from repro.errors import NotAugmentableError
from repro.stores.relational.parser import parse_sql


@pytest.fixture
def validator() -> Validator:
    return Validator()


class TestRelational:
    def test_plain_select_star_passes(self, validator, mini_polystore):
        store = mini_polystore.database("transactions")
        result = validator.validate(store, "SELECT * FROM inventory")
        assert result.rewritten is False
        assert result.query == "SELECT * FROM inventory"

    def test_aggregate_rejected(self, validator, mini_polystore):
        store = mini_polystore.database("transactions")
        with pytest.raises(NotAugmentableError):
            validator.validate(store, "SELECT COUNT(*) FROM inventory")

    def test_group_by_rejected(self, validator, mini_polystore):
        store = mini_polystore.database("transactions")
        with pytest.raises(NotAugmentableError):
            validator.validate(
                store, "SELECT artist FROM inventory GROUP BY artist"
            )

    def test_distinct_rejected(self, validator, mini_polystore):
        store = mini_polystore.database("transactions")
        with pytest.raises(NotAugmentableError):
            validator.validate(store, "SELECT DISTINCT artist FROM inventory")

    def test_join_rejected(self, validator, mini_polystore):
        store = mini_polystore.database("transactions")
        with pytest.raises(NotAugmentableError):
            validator.validate(
                store,
                "SELECT * FROM inventory a JOIN inventory b ON a.id = b.id",
            )

    def test_insert_rejected(self, validator, mini_polystore):
        store = mini_polystore.database("transactions")
        with pytest.raises(NotAugmentableError):
            validator.validate(
                store, "INSERT INTO inventory (id) VALUES ('x')"
            )

    def test_broken_sql_rejected(self, validator, mini_polystore):
        store = mini_polystore.database("transactions")
        with pytest.raises(NotAugmentableError):
            validator.validate(store, "SELETC * FORM inventory")

    def test_non_string_rejected(self, validator, mini_polystore):
        store = mini_polystore.database("transactions")
        with pytest.raises(NotAugmentableError):
            validator.validate(store, {"collection": "inventory"})

    def test_missing_pk_injected(self, validator, mini_polystore):
        """The validator 'rewrites queries by adding all identifiers'."""
        store = mini_polystore.database("transactions")
        result = validator.validate(
            store, "SELECT name FROM inventory WHERE price > 10"
        )
        assert result.rewritten is True
        assert "id" in result.query
        # The rewritten query must still run and return the pk.
        rows = store.sql(result.query)
        assert all("id" in row for row in rows)

    def test_pk_already_selected_not_rewritten(self, validator, mini_polystore):
        store = mini_polystore.database("transactions")
        result = validator.validate(store, "SELECT id, name FROM inventory")
        assert result.rewritten is False

    def test_rewrite_preserves_semantics(self, validator, mini_polystore):
        store = mini_polystore.database("transactions")
        original = "SELECT name FROM inventory WHERE name LIKE '%wish%' ORDER BY name LIMIT 2"
        result = validator.validate(store, original)
        rewritten_rows = store.sql(result.query)
        original_rows = store.sql(original)
        assert [r["name"] for r in rewritten_rows] == [
            r["name"] for r in original_rows
        ]


class TestDocument:
    def test_plain_filter_passes(self, validator, mini_polystore):
        store = mini_polystore.database("catalogue")
        query = {"collection": "albums", "filter": {"year": 1992}}
        result = validator.validate(store, query)
        assert result.rewritten is False

    def test_projection_excluding_id_rewritten(self, validator, mini_polystore):
        store = mini_polystore.database("catalogue")
        query = {
            "collection": "albums",
            "filter": {},
            "projection": {"title": 1, "_id": 0},
        }
        result = validator.validate(store, query)
        assert result.rewritten is True
        assert result.query["projection"] == {"title": 1}

    def test_projection_only_excluding_id_dropped(self, validator, mini_polystore):
        store = mini_polystore.database("catalogue")
        query = {"collection": "albums", "filter": {}, "projection": {"_id": 0}}
        result = validator.validate(store, query)
        assert "projection" not in result.query


class TestGraphAndKv:
    def test_graph_query_passes_through(self, validator, mini_polystore):
        store = mini_polystore.database("similar")
        query = {"op": "match", "label": "Item"}
        assert validator.validate(store, query).query is query

    def test_kv_pattern_passes_through(self, validator, mini_polystore):
        store = mini_polystore.database("discount")
        assert validator.validate(store, "KEYS *").query == "KEYS *"


class TestSqlPrinting:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM inventory",
            "SELECT name AS n, price FROM inventory WHERE price > 10",
            "SELECT * FROM t WHERE name LIKE '%x%' AND a IN (1, 2)",
            "SELECT * FROM t WHERE a BETWEEN 1 AND 2 OR b IS NOT NULL",
            "SELECT * FROM t WHERE NOT a = 1 ORDER BY b DESC LIMIT 3 OFFSET 1",
            "SELECT a FROM t WHERE c = 'it''s'",
            "SELECT UPPER(name) FROM t WHERE price * 2 >= 10",
        ],
    )
    def test_round_trip_is_stable(self, sql):
        """parse -> print -> parse -> print reaches a fixpoint."""
        printed = sql_to_string(parse_sql(sql))
        reprinted = sql_to_string(parse_sql(printed))
        assert printed == reprinted

    def test_literals(self):
        from repro.stores.relational.ast import Literal

        assert expr_to_string(Literal(None)) == "NULL"
        assert expr_to_string(Literal(True)) == "TRUE"
        assert expr_to_string(Literal("o'clock")) == "'o''clock'"
        assert expr_to_string(Literal(3)) == "3"
