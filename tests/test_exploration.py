"""Tests for augmented exploration sessions (Definition 4)."""

import pytest

from repro.errors import AugmentationError
from repro.model.objects import GlobalKey

K = GlobalKey.parse

QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"
START = K("transactions.inventory.a32")


class TestSession:
    def test_initial_results_are_local_answer(self, mini_quepa):
        session = mini_quepa.explore("transactions", QUERY)
        assert [str(obj.key) for obj in session.results] == [str(START)]

    def test_first_select_must_be_in_answer(self, mini_quepa):
        session = mini_quepa.explore("transactions", QUERY)
        with pytest.raises(AugmentationError):
            session.select(K("transactions.inventory.a33"))

    def test_select_returns_ranked_links(self, mini_quepa):
        session = mini_quepa.explore("transactions", QUERY)
        step = session.select(START)
        probabilities = [link.probability for link in step.links]
        assert probabilities == sorted(probabilities, reverse=True)
        assert str(step.links[0].key) == "catalogue.albums.d1"

    def test_next_select_must_be_a_link(self, mini_quepa):
        session = mini_quepa.explore("transactions", QUERY)
        session.select(START)
        with pytest.raises(AugmentationError):
            session.select(K("transactions.inventory.a34"))

    def test_walk_two_steps(self, mini_quepa):
        session = mini_quepa.explore("transactions", QUERY)
        step1 = session.select(START)
        target = step1.links[0].key
        step2 = session.select(target)
        assert step2.selected == target
        assert len(session.steps) == 2

    def test_path_records_selections(self, mini_quepa):
        session = mini_quepa.explore("transactions", QUERY)
        step1 = session.select(START)
        session.select(step1.links[0].key)
        assert session.path == (START, step1.links[0].key)

    def test_close_records_path_for_promotion(self, mini_quepa):
        session = mini_quepa.explore("transactions", QUERY)
        step1 = session.select(START)
        step2 = session.select(step1.links[0].key)
        third = next(
            link.key for link in step2.links if link.key != START
        )
        session.select(third)
        session.close()
        assert mini_quepa.paths.visits(session.path) == 1

    def test_close_is_idempotent(self, mini_quepa):
        session = mini_quepa.explore("transactions", QUERY)
        step = session.select(START)
        step2 = session.select(step.links[0].key)
        session.select(next(l.key for l in step2.links if l.key != START))
        session.close()
        session.close()
        assert mini_quepa.paths.visits(session.path) == 1

    def test_select_after_close_rejected(self, mini_quepa):
        session = mini_quepa.explore("transactions", QUERY)
        session.close()
        with pytest.raises(AugmentationError):
            session.select(START)

    def test_context_manager_closes(self, mini_quepa):
        with mini_quepa.explore("transactions", QUERY) as session:
            step = session.select(START)
            step2 = session.select(step.links[0].key)
            session.select(
                next(l.key for l in step2.links if l.key != START)
            )
            path = session.path
        assert mini_quepa.paths.visits(path) == 1

    def test_short_paths_not_recorded(self, mini_quepa):
        """Full paths need k > 1 (at least three nodes)."""
        with mini_quepa.explore("transactions", QUERY) as session:
            session.select(START)
        assert mini_quepa.paths.visits((START,)) == 0

    def test_exploration_uses_inner_augmenter_queries(self, mini_quepa):
        """Each step augments a single object with direct queries."""
        session = mini_quepa.explore("transactions", QUERY)
        step = session.select(START)
        assert len(step.links) == 3
