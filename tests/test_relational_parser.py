"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.stores.relational.ast import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Delete,
    FuncCall,
    InOp,
    Insert,
    IsNullOp,
    LikeOp,
    Literal,
    Select,
    Star,
    UnaryOp,
    Update,
)
from repro.stores.relational.parser import parse_sql, tokenize


class TestTokenizer:
    def test_keywords_are_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select FROM Where")]
        assert kinds == ["keyword", "keyword", "keyword", "end"]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].text == "'it''s'"

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e2")
        assert [t.kind for t in tokens[:3]] == ["number"] * 3

    def test_unexpected_character_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT #")


class TestSelectParsing:
    def test_select_star(self):
        statement = parse_sql("SELECT * FROM inventory")
        assert isinstance(statement, Select)
        assert isinstance(statement.items[0].expr, Star)
        assert statement.table.name == "inventory"

    def test_select_columns_with_aliases(self):
        statement = parse_sql("SELECT name AS n, price FROM inventory")
        assert statement.items[0].alias == "n"
        assert isinstance(statement.items[1].expr, ColumnRef)

    def test_table_alias(self):
        statement = parse_sql("SELECT i.name FROM inventory i")
        assert statement.table.alias == "i"
        assert statement.items[0].expr == ColumnRef("name", table="i")

    def test_where_like(self):
        statement = parse_sql("SELECT * FROM t WHERE name LIKE '%wish%'")
        assert isinstance(statement.where, LikeOp)
        assert statement.where.pattern == Literal("%wish%")

    def test_where_not_like(self):
        statement = parse_sql("SELECT * FROM t WHERE name NOT LIKE 'x'")
        assert statement.where.negated is True

    def test_where_in_list(self):
        statement = parse_sql("SELECT * FROM t WHERE id IN ('a', 'b')")
        assert isinstance(statement.where, InOp)
        assert len(statement.where.items) == 2

    def test_where_between(self):
        statement = parse_sql("SELECT * FROM t WHERE price BETWEEN 5 AND 10")
        assert isinstance(statement.where, BetweenOp)

    def test_where_is_null_and_not_null(self):
        statement = parse_sql("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL")
        assert isinstance(statement.where, BinaryOp)
        assert isinstance(statement.where.left, IsNullOp)
        assert statement.where.right.negated is True

    def test_operator_precedence_and_or(self):
        statement = parse_sql("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        # OR binds last: (a=1) OR ((b=2) AND (c=3))
        assert statement.where.op == "OR"
        assert statement.where.right.op == "AND"

    def test_arithmetic_precedence(self):
        statement = parse_sql("SELECT a + b * c FROM t")
        expr = statement.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        statement = parse_sql("SELECT (a + b) * c FROM t")
        assert statement.items[0].expr.op == "*"

    def test_not_expression(self):
        statement = parse_sql("SELECT * FROM t WHERE NOT a = 1")
        assert isinstance(statement.where, UnaryOp)

    def test_negative_literal(self):
        statement = parse_sql("SELECT * FROM t WHERE a > -5")
        assert isinstance(statement.where.right, UnaryOp)

    def test_diamond_not_equal_normalized(self):
        statement = parse_sql("SELECT * FROM t WHERE a <> 1")
        assert statement.where.op == "!="

    def test_group_by_having(self):
        statement = parse_sql(
            "SELECT artist, COUNT(*) FROM t GROUP BY artist HAVING COUNT(*) > 1"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_order_by_multiple_directions(self):
        statement = parse_sql("SELECT * FROM t ORDER BY a DESC, b ASC, c")
        assert [o.ascending for o in statement.order_by] == [False, True, True]

    def test_limit_offset(self):
        statement = parse_sql("SELECT * FROM t LIMIT 10 OFFSET 5")
        assert statement.limit == 10
        assert statement.offset == 5

    def test_mysql_limit_comma(self):
        statement = parse_sql("SELECT * FROM t LIMIT 5, 10")
        assert statement.offset == 5
        assert statement.limit == 10

    def test_join_with_on(self):
        statement = parse_sql(
            "SELECT * FROM sales s JOIN sales_details d ON s.id = d.sale_id"
        )
        assert len(statement.joins) == 1
        assert statement.joins[0].kind == "INNER"

    def test_left_join(self):
        statement = parse_sql(
            "SELECT * FROM a LEFT JOIN b ON a.x = b.y"
        )
        assert statement.joins[0].kind == "LEFT"

    def test_left_outer_join(self):
        statement = parse_sql("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y")
        assert statement.joins[0].kind == "LEFT"

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct is True

    def test_count_star(self):
        statement = parse_sql("SELECT COUNT(*) FROM t")
        call = statement.items[0].expr
        assert isinstance(call, FuncCall)
        assert isinstance(call.args[0], Star)

    def test_count_distinct(self):
        call = parse_sql("SELECT COUNT(DISTINCT a) FROM t").items[0].expr
        assert call.distinct is True

    def test_alias_star_select(self):
        statement = parse_sql("SELECT t.* FROM inventory t")
        assert statement.items[0].expr == Star("t")

    def test_is_aggregate_detection(self):
        assert parse_sql("SELECT MAX(a) FROM t").is_aggregate()
        assert parse_sql("SELECT a FROM t GROUP BY a").is_aggregate()
        assert not parse_sql("SELECT a FROM t").is_aggregate()

    def test_aggregate_inside_expression_detected(self):
        assert parse_sql("SELECT 1 + SUM(a) FROM t").is_aggregate()


class TestOtherStatements:
    def test_insert_with_columns(self):
        statement = parse_sql(
            "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"
        )
        assert isinstance(statement, Insert)
        assert statement.columns == ("a", "b")
        assert len(statement.rows) == 2

    def test_insert_without_columns(self):
        statement = parse_sql("INSERT INTO t VALUES (1, 2)")
        assert statement.columns == ()

    def test_update(self):
        statement = parse_sql("UPDATE t SET a = 1, b = 'x' WHERE id = 'k'")
        assert isinstance(statement, Update)
        assert len(statement.assignments) == 2

    def test_delete(self):
        statement = parse_sql("DELETE FROM t WHERE a < 0")
        assert isinstance(statement, Delete)

    def test_delete_without_where(self):
        assert parse_sql("DELETE FROM t").where is None


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT *")

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM t extra nonsense tokens ,")

    def test_unknown_function(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT FROBNICATE(a) FROM t")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT (a FROM t")

    def test_not_a_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("EXPLAIN SELECT * FROM t")

    def test_dangling_not(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("SELECT * FROM t WHERE a NOT")

    def test_semicolon_allowed(self):
        assert isinstance(parse_sql("SELECT * FROM t;"), Select)
