"""Tests for EXPLAIN/ANALYZE: per-engine access paths and the report
``Quepa.explain`` stitches over them."""

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.core.runlog import QueryFeatures, RunRecord
from repro.errors import QueryError
from repro.network import centralized_profile
from repro.optimizer.adaptive import AdaptiveOptimizer
from repro.workloads import QueryWorkload

QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"


# ---------------------------------------------------------------------------
# Per-engine access paths
# ---------------------------------------------------------------------------


class TestRelationalExplain:
    def test_full_scan_without_usable_index(self, mini_polystore):
        store = mini_polystore.database("transactions")
        report = store.explain("SELECT * FROM inventory WHERE price > 12")
        assert report["engine"] == "relational"
        assert report["access_path"] == "full_scan"
        assert report["index"] is None
        assert report["estimated_rows"] == 3

    def test_primary_key_is_an_index_probe(self, mini_polystore):
        store = mini_polystore.database("transactions")
        report = store.explain("SELECT * FROM inventory WHERE id = 'a32'")
        assert report["access_path"] == "index_probe"
        assert report["index"] == "inventory.id"
        assert report["estimated_rows"] == 1

    def test_created_index_changes_the_plan(self, mini_polystore):
        store = mini_polystore.database("transactions")
        before = store.explain("SELECT * FROM inventory WHERE artist = 'Cure'")
        assert before["access_path"] == "full_scan"
        store.table("inventory").create_index("artist")
        after = store.explain("SELECT * FROM inventory WHERE artist = 'Cure'")
        assert after["access_path"] == "index_probe"
        assert after["index"] == "inventory.artist"
        assert after["estimated_rows"] == 2  # two Cure albums

    def test_analyze_reports_actual_rows_and_time(self, mini_polystore):
        store = mini_polystore.database("transactions")
        report = store.explain(
            "SELECT * FROM inventory WHERE artist = 'Cure'", analyze=True
        )
        assert report["actual_rows"] == 2
        assert report["actual_time_s"] >= 0.0
        # Estimated rows are examined rows, so estimated >= returned.
        assert report["estimated_rows"] >= report["actual_rows"]

    def test_plain_explain_does_not_execute(self, mini_polystore):
        store = mini_polystore.database("transactions")
        before = store.stats.queries
        report = store.explain("SELECT * FROM inventory")
        assert "actual_rows" not in report
        assert store.stats.queries == before

    def test_rejects_non_sql_query(self, mini_polystore):
        store = mini_polystore.database("transactions")
        with pytest.raises(QueryError):
            store.explain({"op": "match"})


class TestDocumentExplain:
    def test_collection_scan_without_index(self, mini_polystore):
        store = mini_polystore.database("catalogue")
        report = store.explain(("albums", {"artist": "Pixies"}))
        assert report["engine"] == "document"
        assert report["access_path"] == "collection_scan"
        assert report["estimated_rows"] == 2  # both albums examined

    def test_index_probe_on_indexed_field(self, mini_polystore):
        store = mini_polystore.database("catalogue")
        store.create_index("albums", "artist")
        report = store.explain(("albums", {"artist": "Pixies"}))
        assert report["access_path"] == "index_probe"
        assert report["index"] == "albums.artist"
        assert report["estimated_rows"] == 1

    def test_index_probe_on_in_condition(self, mini_polystore):
        store = mini_polystore.database("catalogue")
        store.create_index("albums", "artist")
        report = store.explain(
            ("albums", {"artist": {"$in": ["Pixies", "The Cure"]}})
        )
        assert report["access_path"] == "index_probe"
        assert report["estimated_rows"] == 2

    def test_analyze(self, mini_polystore):
        store = mini_polystore.database("catalogue")
        report = store.explain(("albums", {}), analyze=True)
        assert report["actual_rows"] == 2


class TestGraphExplain:
    def test_match_uses_the_label_index(self, mini_polystore):
        store = mini_polystore.database("similar")
        report = store.explain({"op": "match", "label": "Item"})
        assert report["engine"] == "graph"
        assert report["access_path"] == "label_index"
        assert report["index"] == "label:Item"
        assert report["estimated_rows"] == 3

    def test_cypher_counts_hops(self, mini_polystore):
        store = mini_polystore.database("similar")
        report = store.explain("MATCH (a:Item)-[:SIMILAR]->(b) RETURN b")
        assert report["access_path"] == "label_index"
        assert report["hops"] == 1
        assert report["estimated_cost"] > report["estimated_rows"]

    def test_neighbors_is_an_adjacency_probe(self, mini_polystore):
        store = mini_polystore.database("similar")
        report = store.explain({"op": "neighbors", "node": "i2"})
        assert report["access_path"] == "adjacency_probe"
        assert report["estimated_rows"] == 2  # one in, one out

    def test_analyze_match(self, mini_polystore):
        store = mini_polystore.database("similar")
        report = store.explain({"op": "match", "label": "Item"}, analyze=True)
        assert report["actual_rows"] == 3


class TestKeyValueExplain:
    def test_get_is_a_key_probe(self, mini_polystore):
        store = mini_polystore.database("discount")
        report = store.explain("GET k1:cure:wish")
        assert report["engine"] == "keyvalue"
        assert report["access_path"] == "key_probe"
        assert report["index"] == "keyspace_hash"
        assert report["estimated_rows"] == 1

    def test_get_missing_key_estimates_zero(self, mini_polystore):
        store = mini_polystore.database("discount")
        report = store.explain("GET nope")
        assert report["access_path"] == "key_probe"
        assert report["estimated_rows"] == 0

    def test_keys_glob_is_a_keyspace_scan(self, mini_polystore):
        store = mini_polystore.database("discount")
        report = store.explain("KEYS *")
        assert report["access_path"] == "keyspace_scan"
        assert report["estimated_rows"] == 2

    def test_connector_mget_form(self, mini_polystore):
        store = mini_polystore.database("discount")
        report = store.explain(("mget", ["k1:cure:wish", "k2:pixies:doolittle"]))
        assert report["access_path"] == "key_probe"
        assert report["estimated_rows"] == 2

    def test_analyze_get(self, mini_polystore):
        store = mini_polystore.database("discount")
        report = store.explain("GET k1:cure:wish", analyze=True)
        assert report["actual_rows"] == 1


# ---------------------------------------------------------------------------
# The stitched Quepa.explain report
# ---------------------------------------------------------------------------


class TestQuepaExplain:
    def test_report_sections(self, mini_quepa):
        report = mini_quepa.explain("transactions", QUERY, level=1)
        assert report["database"] == "transactions"
        assert report["level"] == 1
        assert report["query"]["store"]["access_path"] == "full_scan"
        plan = report["plan"]
        assert plan["seeds"] == 1
        assert plan["planned_fetches"] > 0
        assert plan["edges_examined"] > 0
        assert "snapshot_generation" in plan
        assert report["config"]["source"] == "default"
        execution = report["execution"]
        assert execution["augmenter"] == "sequential"
        assert execution["batching"] is False
        assert execution["pooled"] is False
        assert execution["estimated_queries"] >= 1
        assert "actual" not in report  # plain EXPLAIN

    def test_plan_cache_hit_on_second_explain(self, mini_quepa):
        first = mini_quepa.explain("transactions", QUERY, level=1)
        second = mini_quepa.explain("transactions", QUERY, level=1)
        assert first["plan"]["plan_cache_hit"] is False
        assert second["plan"]["plan_cache_hit"] is True

    def test_explicit_config_is_reported(self, mini_quepa):
        config = AugmentationConfig(augmenter="outer_batch", threads_size=3)
        report = mini_quepa.explain(
            "transactions", QUERY, level=1, config=config
        )
        assert report["config"]["source"] == "explicit"
        execution = report["execution"]
        assert execution["augmenter"] == "outer_batch"
        assert execution["batching"] is True
        assert execution["pooled"] is True
        assert execution["pool_workers"] == 3
        assert "pool" in execution["shape"]

    def test_analyze_estimates_match_actuals_cold(
        self, mini_polystore, mini_aindex
    ):
        quepa = Quepa(mini_polystore, mini_aindex)
        report = quepa.explain("transactions", QUERY, level=1, analyze=True)
        actual = report["actual"]
        # Sequential augmenter on a cold cache: one native query per
        # planned miss plus the local query — the estimate is exact.
        assert actual["queries_issued"] == report["execution"]["estimated_queries"]
        assert actual["augmented_objects"] > 0
        assert actual["elapsed_s"] > 0.0
        assert set(actual["queries_by_database"]) >= {"transactions"}

    def test_explain_predicts_cache_hits_after_a_run(self, mini_quepa):
        cold = mini_quepa.explain("transactions", QUERY, level=1)
        assert cold["execution"]["cache"]["would_hit"] == 0
        mini_quepa.augmented_search("transactions", QUERY, level=1)
        warm = mini_quepa.explain("transactions", QUERY, level=1)
        assert warm["execution"]["cache"]["would_hit"] > 0

    def test_explain_does_not_perturb_cache_counters(self, mini_quepa):
        mini_quepa.augmented_search("transactions", QUERY, level=1)
        stats_before = mini_quepa.cache.stats()
        mini_quepa.explain("transactions", QUERY, level=1)
        stats_after = mini_quepa.cache.stats()
        assert stats_after["hits"] == stats_before["hits"]
        assert stats_after["misses"] == stats_before["misses"]

    def test_untrained_optimizer_reports_fallback_rule(
        self, mini_polystore, mini_aindex
    ):
        quepa = Quepa(
            mini_polystore, mini_aindex, optimizer=AdaptiveOptimizer()
        )
        report = quepa.explain("transactions", QUERY, level=1)
        assert report["config"]["source"] == "optimizer"
        rules = report["config"]["rules"]
        assert rules[0]["tree"] == "T1"
        assert rules[0]["fired"] is False
        assert "not trained" in rules[0]["detail"]

    def test_trained_optimizer_reports_decision_path(
        self, mini_polystore, mini_aindex
    ):
        optimizer = AdaptiveOptimizer()
        for level, augmenter, elapsed in (
            (0, "sequential", 0.01), (1, "outer", 0.5), (2, "batch", 0.3),
        ):
            features = QueryFeatures(
                engine="relational", database="transactions", level=level,
                original_count=1, planned_fetches=4, store_count=4,
                deployment="centralized",
            )
            optimizer.logs.add(RunRecord(
                features=features, augmenter=augmenter, batch_size=64,
                threads_size=4, cache_size=1024, elapsed=elapsed,
            ))
        optimizer.train()
        quepa = Quepa(mini_polystore, mini_aindex, optimizer=optimizer)
        report = quepa.explain("transactions", QUERY, level=1)
        rules = {rule["tree"]: rule for rule in report["config"]["rules"]}
        assert rules["T1"]["fired"] is True
        assert rules["T1"]["outcome"] == report["execution"]["augmenter"]
        assert "->" in rules["T1"]["detail"]
        assert {"T2", "T3", "T4"} <= set(rules)
        # EXPLAIN is side-effect free: no prediction counter was bumped.
        names = {entry["name"] for entry in quepa.obs.metrics.snapshot()}
        assert "optimizer_predictions_total" not in names


# ---------------------------------------------------------------------------
# Acceptance: the fig09 workload explains on all four engines
# ---------------------------------------------------------------------------


class TestWorkloadAcceptance:
    def test_every_engine_reports_path_and_rows(self, small_bundle):
        quepa = Quepa(
            small_bundle.polystore, small_bundle.aindex,
            profile=centralized_profile([n for n, _ in small_bundle.databases]),
        )
        workload = QueryWorkload(small_bundle)
        seen_engines = set()
        for item in workload.base_queries(20):
            report = quepa.explain(
                item.database, item.query, level=1, analyze=True
            )
            store_report = report["query"]["store"]
            seen_engines.add(store_report["engine"])
            assert store_report["access_path"]
            assert store_report["estimated_rows"] >= 0
            assert store_report["actual_rows"] == 20
            assert store_report["estimated_rows"] >= store_report["actual_rows"]
            assert report["actual"]["queries_issued"] >= 1
        assert seen_engines == {"relational", "document", "graph", "keyvalue"}
