"""Property tests for resilience invariants (seeded, pure stdlib).

For randomly drawn fault schedules over a generated polystore, two
invariants must hold against the fault-free run of the same query:

* **subset** — a faulted run never invents objects: its answer key set
  (originals and augmented) is a subset of the fault-free answer's;
* **degraded iff different** — ``stats.degraded`` is True exactly when
  the faulted answer lost objects the fault-free answer has. Errors may
  be reported without degradation (a retry that recovered), but a
  degraded flag always comes with a non-empty ``errors`` report.

Schedules are drawn from a seeded ``random.Random`` so every failure
reproduces from the printed case seed.
"""

from __future__ import annotations

import random

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.faults import FaultInjector, ResilienceConfig
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony

CASE_SEEDS = range(24)


@pytest.fixture(scope="module")
def props_bundle():
    """A private bundle: fault runs must not share an A' index that
    other tests' lazy deletions could have shrunk."""
    return build_polyphony(stores=4, scale=PolystoreScale(n_albums=60), seed=13)


def draw_schedule(rng: random.Random, databases: list[str]) -> FaultInjector:
    """One to three random fault specs on random databases."""
    injector = FaultInjector(seed=rng.randrange(1_000_000))
    for _ in range(rng.randint(1, 3)):
        database = rng.choice(databases)
        kind = rng.choice(("fail", "stall", "truncate", "flap"))
        if kind == "fail":
            injector.inject(database, kind, rate=rng.uniform(0.1, 1.0))
        elif kind == "stall":
            injector.inject(
                database, kind,
                rate=rng.uniform(0.3, 1.0),
                stall_seconds=rng.uniform(0.005, 0.05),
            )
        elif kind == "truncate":
            injector.inject(
                database, kind,
                rate=rng.uniform(0.2, 1.0),
                keep_fraction=rng.choice((0.0, 0.25, 0.5, 0.75)),
            )
        else:
            injector.inject(
                database, kind,
                up_seconds=rng.uniform(0.01, 0.1),
                down_seconds=rng.uniform(0.01, 0.1),
                phase=rng.uniform(0.0, 0.1),
            )
    return injector


def draw_config(rng: random.Random) -> AugmentationConfig:
    return AugmentationConfig(
        augmenter=rng.choice(("sequential", "batch", "outer_batch")),
        batch_size=rng.choice((4, 16, 64)),
        threads_size=rng.choice((2, 4)),
    )


def answer_keys(answer):
    return (
        {obj.key for obj in answer.originals}
        | {entry.key for entry in answer.augmented}
    )


@pytest.mark.chaos
class TestResilienceProperties:
    @pytest.mark.parametrize("case_seed", CASE_SEEDS)
    def test_subset_and_degraded_iff_lost(self, props_bundle, case_seed):
        rng = random.Random(case_seed)
        databases = sorted(props_bundle.polystore)
        workload = QueryWorkload(props_bundle)
        query = workload.query(
            rng.choice(databases), size=rng.randint(2, 12)
        )
        level = rng.randint(1, 2)
        config = draw_config(rng)

        clean = Quepa(props_bundle.polystore, props_bundle.aindex)
        baseline = clean.augmented_search(
            query.database, query.query, level=level, config=config
        )
        baseline_keys = answer_keys(baseline)

        injector = draw_schedule(rng, databases)
        faulted_system = Quepa(
            props_bundle.polystore, props_bundle.aindex,
            faults=injector,
            resilience=ResilienceConfig(
                retry_max_attempts=rng.randint(1, 3),
                breaker_failure_threshold=rng.randint(2, 6),
                retry_base_delay=0.01,
            ),
        )
        faulted = faulted_system.augmented_search(
            query.database, query.query, level=level, config=config
        )
        faulted_keys = answer_keys(faulted)

        case = f"case_seed={case_seed} schedule={injector.stats()['specs']}"
        # Subset: faults can only lose objects, never invent them.
        assert faulted_keys <= baseline_keys, case
        # Degraded iff the answer actually lost objects.
        lost = baseline_keys - faulted_keys
        assert faulted.stats.degraded == bool(lost), case
        # A degraded answer always says which stores misbehaved.
        if faulted.stats.degraded:
            assert faulted.stats.errors, case
        # Determinism: replaying the same schedule reproduces the run.
        replay_injector = FaultInjector(seed=injector.seed)
        for spec in injector.specs():
            replay_injector.add(spec)
        replay_system = Quepa(
            props_bundle.polystore, props_bundle.aindex,
            faults=replay_injector,
            resilience=faulted_system.resilience.config,
        )
        replay = replay_system.augmented_search(
            query.database, query.query, level=level, config=config
        )
        assert replay.stats.elapsed == faulted.stats.elapsed, case
        assert answer_keys(replay) == faulted_keys, case

    @pytest.mark.parametrize("case_seed", [3, 7, 11])
    def test_errors_without_loss_is_not_degraded(self, props_bundle, case_seed):
        """A schedule whose every failure recovers on retry loses
        nothing: the answer is complete and not degraded."""
        databases = sorted(props_bundle.polystore)
        workload = QueryWorkload(props_bundle)
        query = workload.query("transactions", size=6)
        injector = FaultInjector(seed=case_seed)
        # One guaranteed failure per store call, but retries always
        # succeed on the second attempt (every=2 fires on even calls).
        injector.inject("catalogue", "fail", every=2)
        quepa = Quepa(
            props_bundle.polystore, props_bundle.aindex,
            faults=injector,
            resilience=ResilienceConfig(
                retry_max_attempts=3, breaker_failure_threshold=50
            ),
        )
        baseline = Quepa(
            props_bundle.polystore, props_bundle.aindex
        ).augmented_search(query.database, query.query, level=1)
        answer = quepa.augmented_search(query.database, query.query, level=1)
        assert answer_keys(answer) == answer_keys(baseline)
        assert not answer.stats.degraded
