"""Tests for the relational engine: tables, SQL execution, contract."""

import pytest

from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    QueryError,
    SchemaError,
)
from repro.stores import RelationalStore
from repro.stores.relational.types import Column, ColumnType, TableSchema


def inventory_schema() -> TableSchema:
    return TableSchema(
        columns=[
            Column("id", ColumnType.TEXT, nullable=False),
            Column("artist", ColumnType.TEXT),
            Column("name", ColumnType.TEXT),
            Column("price", ColumnType.FLOAT),
            Column("stock", ColumnType.INTEGER),
        ],
        primary_key="id",
    )


@pytest.fixture
def store() -> RelationalStore:
    r = RelationalStore()
    r.database_name = "transactions"
    r.create_table("inventory", inventory_schema())
    rows = [
        ("a1", "Cure", "Wish", 14.9, 10),
        ("a2", "Cure", "Disintegration", 12.5, 3),
        ("a3", "Pixies", "Doolittle", 11.0, 0),
        ("a4", "Smiths", "The Queen Is Dead", None, 7),
    ]
    for id_, artist, name, price, stock in rows:
        r.insert_row(
            "inventory",
            {"id": id_, "artist": artist, "name": name, "price": price, "stock": stock},
        )
    return r


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(
                columns=[Column("a", ColumnType.TEXT), Column("a", ColumnType.TEXT)],
                primary_key="a",
            )

    def test_pk_must_be_a_column(self):
        with pytest.raises(SchemaError):
            TableSchema(columns=[Column("a", ColumnType.TEXT)], primary_key="b")

    def test_type_validation(self):
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate("not-an-int")
        with pytest.raises(SchemaError):
            ColumnType.INTEGER.validate(True)  # bools are not ints here
        assert ColumnType.FLOAT.validate(3) == 3.0
        assert ColumnType.TEXT.validate("x") == "x"
        assert ColumnType.BOOLEAN.validate(True) is True

    def test_not_null_enforced(self):
        column = Column("a", ColumnType.TEXT, nullable=False)
        with pytest.raises(SchemaError):
            column.validate(None)

    def test_unknown_column_in_row_rejected(self, store):
        with pytest.raises(SchemaError):
            store.insert_row("inventory", {"id": "x", "bogus": 1})

    def test_null_pk_rejected(self, store):
        with pytest.raises(SchemaError):
            store.table("inventory").insert({"id": None})


class TestTable:
    def test_insert_and_row(self, store):
        table = store.table("inventory")
        assert table.row("a1")["name"] == "Wish"
        assert len(table) == 4

    def test_duplicate_pk_rejected(self, store):
        with pytest.raises(DuplicateKeyError):
            store.insert_row("inventory", {"id": "a1"})

    def test_update(self, store):
        store.table("inventory").update("a3", {"stock": 99})
        assert store.table("inventory").row("a3")["stock"] == 99

    def test_update_pk_rejected(self, store):
        with pytest.raises(SchemaError):
            store.table("inventory").update("a3", {"id": "zz"})

    def test_delete(self, store):
        assert store.table("inventory").delete("a1") is True
        assert store.table("inventory").delete("a1") is False

    def test_row_missing_raises(self, store):
        with pytest.raises(KeyNotFoundError):
            store.table("inventory").row("zz")

    def test_secondary_index_lookup(self, store):
        table = store.table("inventory")
        table.create_index("artist")
        assert table.index_lookup("artist", "Cure") == ["a1", "a2"]
        assert table.index_lookup("artist", "Nobody") == []

    def test_pk_always_indexed(self, store):
        table = store.table("inventory")
        assert table.has_index("id")
        assert table.index_lookup("id", "a2") == ["a2"]

    def test_index_maintenance_on_update_delete(self, store):
        table = store.table("inventory")
        table.create_index("artist")
        table.update("a2", {"artist": "Pixies"})
        assert table.index_lookup("artist", "Pixies") == ["a2", "a3"]
        table.delete("a3")
        assert table.index_lookup("artist", "Pixies") == ["a2"]


class TestSqlDml:
    def test_insert_via_sql(self, store):
        store.sql("INSERT INTO inventory (id, artist, name) VALUES ('a9', 'X', 'Y')")
        assert store.table("inventory").row("a9")["artist"] == "X"

    def test_update_via_sql(self, store):
        store.sql("UPDATE inventory SET stock = stock + 1 WHERE artist = 'Cure'")
        assert store.table("inventory").row("a1")["stock"] == 11
        assert store.table("inventory").row("a2")["stock"] == 4

    def test_delete_via_sql(self, store):
        store.sql("DELETE FROM inventory WHERE stock = 0")
        assert len(store.table("inventory")) == 3

    def test_insert_arity_mismatch(self, store):
        with pytest.raises(QueryError):
            store.sql("INSERT INTO inventory (id, name) VALUES ('z')")


class TestStoreContract:
    def test_execute_returns_objects_with_provenance(self, store):
        objects = store.execute("SELECT * FROM inventory WHERE artist = 'Cure'")
        assert {str(o.key) for o in objects} == {
            "transactions.inventory.a1",
            "transactions.inventory.a2",
        }

    def test_execute_projection_keeps_provenance(self, store):
        objects = store.execute("SELECT name FROM inventory WHERE id = 'a1'")
        assert objects[0].key.key == "a1"
        assert objects[0].value == {"name": "Wish"}

    def test_execute_aggregate_has_synthetic_keys(self, store):
        objects = store.execute("SELECT COUNT(*) FROM inventory")
        assert objects[0].key.collection == "_result"

    def test_execute_join_has_synthetic_keys(self, store):
        store.create_table(
            "tags",
            TableSchema(
                columns=[
                    Column("id", ColumnType.TEXT, nullable=False),
                    Column("item", ColumnType.TEXT),
                ],
                primary_key="id",
            ),
        )
        store.insert_row("tags", {"id": "t1", "item": "a1"})
        objects = store.execute(
            "SELECT * FROM inventory i JOIN tags t ON i.id = t.item"
        )
        assert objects[0].key.collection == "_result"

    def test_execute_requires_string(self, store):
        with pytest.raises(QueryError):
            store.execute({"not": "sql"})

    def test_get_value(self, store):
        assert store.get_value("inventory", "a3")["name"] == "Doolittle"

    def test_get_value_missing_table(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get_value("nope", "a1")

    def test_multi_get_batches(self, store):
        from repro.model.objects import GlobalKey

        keys = [
            GlobalKey("transactions", "inventory", "a1"),
            GlobalKey("transactions", "inventory", "zz"),
            GlobalKey("transactions", "inventory", "a3"),
        ]
        objects = store.multi_get(keys)
        assert [o.key.key for o in objects] == ["a1", "a3"]
        assert store.stats.multi_gets == 1

    def test_collections(self, store):
        assert store.collections() == ["inventory"]

    def test_unknown_table_query(self, store):
        with pytest.raises(QueryError):
            store.sql("SELECT * FROM missing_table")
