"""Differential testing: engines vs naive Python reference models.

Hypothesis generates random data and random queries; each engine's
answer is compared against a straightforward Python evaluation of the
same predicate. Any divergence is a real bug in the parser, the
evaluator, or an index fast path.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stores import GraphStore, RelationalStore
from repro.stores.relational.types import Column, ColumnType, TableSchema

# ---------------------------------------------------------------------------
# SQL WHERE evaluation vs Python
# ---------------------------------------------------------------------------

_ROWS = st.lists(
    st.tuples(
        st.integers(-20, 20),                      # val
        st.one_of(st.none(), st.integers(0, 9)),   # opt (nullable)
        st.sampled_from(["red", "green", "blue"]), # color
    ),
    min_size=0,
    max_size=25,
)


def build_table(rows) -> RelationalStore:
    store = RelationalStore()
    store.database_name = "db"
    store.create_table(
        "t",
        TableSchema(
            columns=[
                Column("id", ColumnType.TEXT, nullable=False),
                Column("val", ColumnType.INTEGER),
                Column("opt", ColumnType.INTEGER),
                Column("color", ColumnType.TEXT),
            ],
            primary_key="id",
        ),
    )
    for index, (val, opt, color) in enumerate(rows):
        store.insert_row(
            "t", {"id": f"r{index}", "val": val, "opt": opt, "color": color}
        )
    return store


# A comparison predicate and its Python reference, as paired factories.
_COMPARISONS = st.sampled_from([
    ("val > {k}", lambda row, k: row["val"] > k),
    ("val <= {k}", lambda row, k: row["val"] <= k),
    ("val = {k}", lambda row, k: row["val"] == k),
    ("val != {k}", lambda row, k: row["val"] != k),
    ("val BETWEEN {k} AND {k2}",
     lambda row, k, k2=None: k <= row["val"] <= (k2 if k2 is not None else k)),
    ("opt IS NULL", lambda row, k: row["opt"] is None),
    ("opt IS NOT NULL", lambda row, k: row["opt"] is not None),
    ("opt > {k}", lambda row, k: row["opt"] is not None and row["opt"] > k),
    ("color = 'red'", lambda row, k: row["color"] == "red"),
    ("color IN ('red', 'blue')",
     lambda row, k: row["color"] in ("red", "blue")),
    ("color LIKE 'g%'", lambda row, k: row["color"].startswith("g")),
    ("val + {k} > 0", lambda row, k: row["val"] + k > 0),
])


class TestSqlVersusReference:
    @given(_ROWS, _COMPARISONS, st.integers(-10, 10), st.integers(-10, 10),
           st.sampled_from(["AND", "OR"]), _COMPARISONS)
    @settings(max_examples=120, deadline=None)
    def test_where_matches_python(
        self, rows, first, k, k2, connector, second
    ):
        store = build_table(rows)
        low, high = sorted((k, k2))
        sql_one = first[0].format(k=low, k2=high)
        sql_two = second[0].format(k=low, k2=high)
        sql = f"SELECT id FROM t WHERE {sql_one} {connector} {sql_two}"
        got = {row["id"] for row in store.sql(sql)}

        def ref_one(row):
            return first[1](row, low, high) if "BETWEEN" in first[0] \
                else first[1](row, low)

        def ref_two(row):
            return second[1](row, low, high) if "BETWEEN" in second[0] \
                else second[1](row, low)

        expected = set()
        for index, (val, opt, color) in enumerate(rows):
            row = {"val": val, "opt": opt, "color": color}
            try:
                a = ref_one(row)
                b = ref_two(row)
            except TypeError:
                continue  # NULL in a comparison: SQL filters the row out
            keep = (a and b) if connector == "AND" else (a or b)
            if keep:
                expected.add(f"r{index}")
        assert got == expected

    @given(_ROWS)
    @settings(max_examples=60, deadline=None)
    def test_order_by_matches_sorted(self, rows):
        store = build_table(rows)
        got = [row["id"] for row in
               store.sql("SELECT id FROM t WHERE val IS NOT NULL "
                         "ORDER BY val, id")]
        expected = [
            f"r{i}" for i, __ in sorted(
                enumerate(rows), key=lambda pair: (pair[1][0], f"r{pair[0]}")
            )
        ]
        assert got == expected

    @given(_ROWS)
    @settings(max_examples=60, deadline=None)
    def test_aggregates_match_python(self, rows):
        store = build_table(rows)
        row = store.sql(
            "SELECT COUNT(*) AS n, COUNT(opt) AS no, SUM(val) AS s, "
            "MIN(val) AS lo, MAX(val) AS hi FROM t"
        )[0]
        values = [r[0] for r in rows]
        opts = [r[1] for r in rows if r[1] is not None]
        assert row["n"] == len(rows)
        assert row["no"] == len(opts)
        assert row["s"] == (sum(values) if values else None)
        assert row["lo"] == (min(values) if values else None)
        assert row["hi"] == (max(values) if values else None)

    @given(_ROWS, st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_limit_offset_window(self, rows, limit, offset):
        store = build_table(rows)
        everything = [row["id"] for row in
                      store.sql("SELECT id FROM t ORDER BY id")]
        window = [row["id"] for row in store.sql(
            f"SELECT id FROM t ORDER BY id LIMIT {limit} OFFSET {offset}"
        )]
        assert window == everything[offset:offset + limit]

    @given(_ROWS, st.sampled_from(["val", "color", "opt"]))
    @settings(max_examples=60, deadline=None)
    def test_index_fast_path_equals_full_scan(self, rows, column):
        """Point queries give identical answers with and without an
        index on the column."""
        store = build_table(rows)
        probe = {"val": 0, "color": "'red'", "opt": 3}[column]
        sql = f"SELECT id FROM t WHERE {column} = {probe} ORDER BY id"
        without_index = store.sql(sql)
        store.table("t").create_index(column)
        with_index = store.sql(sql)
        assert with_index == without_index


# ---------------------------------------------------------------------------
# Cypher pattern matching vs brute force
# ---------------------------------------------------------------------------

_EDGE_LISTS = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)),
    min_size=0,
    max_size=15,
)


def build_graph(edges) -> GraphStore:
    store = GraphStore()
    store.database_name = "g"
    for index in range(7):
        store.create_node(
            "N", {"rank": index, "parity": index % 2}, node_id=f"n{index}"
        )
    for start, end in edges:
        if start != end:
            store.create_edge(f"n{start}", "E", f"n{end}")
    return store


class TestCypherVersusBruteForce:
    @given(_EDGE_LISTS)
    @settings(max_examples=80, deadline=None)
    def test_one_hop_out_matches_adjacency(self, edges):
        store = build_graph(edges)
        rows = store.cypher(
            "MATCH (a:N)-[:E]->(b:N) RETURN a.rank AS x, b.rank AS y"
        )
        got = {(row["x"], row["y"]) for row in rows}
        expected = {(s, e) for s, e in edges if s != e}
        assert got == expected

    @given(_EDGE_LISTS)
    @settings(max_examples=80, deadline=None)
    def test_two_hop_matches_composition(self, edges):
        store = build_graph(edges)
        rows = store.cypher(
            "MATCH (a:N)-[:E]->(b:N)-[:E]->(c:N) "
            "RETURN a.rank AS x, b.rank AS y, c.rank AS z"
        )
        got = {(row["x"], row["y"], row["z"]) for row in rows}
        simple = {(s, e) for s, e in edges if s != e}
        expected = {
            (a, b, c)
            for a, b in simple
            for b2, c in simple
            if b == b2
        }
        assert got == expected

    @given(_EDGE_LISTS, st.integers(0, 6))
    @settings(max_examples=80, deadline=None)
    def test_where_filter_matches_python(self, edges, threshold):
        store = build_graph(edges)
        rows = store.cypher(
            f"MATCH (a:N)-[:E]->(b:N) WHERE b.rank >= {threshold} "
            f"AND a.parity = 0 RETURN a.rank AS x, b.rank AS y"
        )
        got = {(row["x"], row["y"]) for row in rows}
        expected = {
            (s, e) for s, e in edges
            if s != e and e >= threshold and s % 2 == 0
        }
        assert got == expected
