"""Virtual and real runtimes are observationally equivalent.

The virtual runtime exists so benchmarks are deterministic; the real
runtime exists so the serving layer gets true concurrency. Neither may
change *what* an augmented query answers — only how its time is
accounted. This suite runs a seeded workload through all six augmenters
under both runtimes and asserts the answer sets are identical
object-for-object (order-insensitive, probabilities compared exactly
after rounding away float formatting noise).
"""

from __future__ import annotations

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.core.augmenters import available_augmenters
from repro.network import RealRuntime, VirtualRuntime, centralized_profile
from repro.workloads.queries import QueryWorkload

LEVELS = (0, 1, 2)


def _answer_signature(answer):
    """Order-insensitive identity of an augmented answer."""
    originals = frozenset(str(o.key) for o in answer.originals)
    augmented = frozenset(
        (str(a.key), round(a.probability, 12)) for a in answer.augmented
    )
    return originals, augmented


def _quepa(bundle, runtime_name: str) -> Quepa:
    profile = centralized_profile(list(bundle.polystore))
    runtime = (
        VirtualRuntime(profile)
        if runtime_name == "virtual"
        else RealRuntime(profile)
    )
    return Quepa(
        bundle.polystore, bundle.aindex, profile=profile, runtime=runtime
    )


def _run_workload(bundle, runtime_name: str, augmenter: str):
    """Signatures of a fixed seeded workload under one configuration."""
    quepa = _quepa(bundle, runtime_name)
    workload = QueryWorkload(bundle)
    config = AugmentationConfig(
        augmenter=augmenter, batch_size=16, threads_size=4
    )
    signatures = []
    for database, _ in bundle.databases:
        for level in LEVELS:
            query = workload.query(database, 12, variant=level).query
            answer = quepa.augmented_search(
                database, query, level=level, config=config
            )
            signatures.append(_answer_signature(answer))
    return signatures


def test_six_augmenters_registered():
    assert sorted(available_augmenters()) == [
        "batch", "inner", "outer", "outer_batch", "outer_inner",
        "sequential",
    ]


@pytest.mark.parametrize("augmenter", sorted(available_augmenters()))
def test_augmenter_answers_identical_across_runtimes(
    small_bundle, augmenter
):
    virtual = _run_workload(small_bundle, "virtual", augmenter)
    real = _run_workload(small_bundle, "real", augmenter)
    assert virtual == real, (
        f"{augmenter}: virtual and real runtimes answered differently"
    )


def test_all_augmenters_agree_with_each_other(small_bundle):
    """The six strategies differ in cost, never in the answer set."""
    per_augmenter = {
        name: _run_workload(small_bundle, "virtual", name)
        for name in available_augmenters()
    }
    reference_name = "sequential"
    reference = per_augmenter[reference_name]
    for name, signatures in per_augmenter.items():
        assert signatures == reference, (
            f"{name} disagrees with {reference_name}"
        )


def test_serve_search_matches_classic_search(small_bundle):
    """The serving entry point answers exactly like the classic one."""
    quepa = _quepa(small_bundle, "real")
    workload = QueryWorkload(small_bundle)
    for database, _ in small_bundle.databases:
        query = workload.query(database, 10, variant=1).query
        classic = quepa.augmented_search(database, query, level=1)
        served = quepa.serve_search(database, query, level=1)
        assert _answer_signature(classic) == _answer_signature(served)
