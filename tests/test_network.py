"""Tests for the virtual clock, profiles and execution runtimes."""

import pytest

from repro.model.objects import DataObject, GlobalKey
from repro.network import (
    CostModel,
    Machine,
    RealRuntime,
    VirtualClock,
    VirtualRuntime,
    centralized_profile,
    distributed_profile,
)
from repro.network.clock import Resource


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_advance_to_is_monotone(self):
        clock = VirtualClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0
        clock.advance_to(12.0)
        assert clock.now == 12.0


class TestResource:
    def test_serializes_on_one_slot(self):
        resource = Resource(1)
        assert resource.acquire(0.0, 2.0) == (0.0, 2.0)
        assert resource.acquire(0.0, 2.0) == (2.0, 4.0)

    def test_parallel_on_two_slots(self):
        resource = Resource(2)
        assert resource.acquire(0.0, 2.0) == (0.0, 2.0)
        assert resource.acquire(0.0, 2.0) == (0.0, 2.0)

    def test_arrival_respected(self):
        resource = Resource(1)
        assert resource.acquire(5.0, 1.0) == (5.0, 6.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(0)


class TestProfiles:
    def test_centralized_places_all_stores_near(self):
        profile = centralized_profile(["a", "b"])
        assert profile.site("a").one_way_latency < 0.001
        assert profile.site("a").machine is profile.site("b").machine

    def test_distributed_latencies_are_large_and_distinct(self):
        profile = distributed_profile(["a", "b", "c"])
        latencies = {profile.site(db).one_way_latency for db in "abc"}
        assert len(latencies) == 3
        assert all(lat >= 0.040 for lat in latencies)

    def test_distributed_is_seeded(self):
        one = distributed_profile(["a", "b"], seed=9)
        two = distributed_profile(["a", "b"], seed=9)
        assert one.site("a").one_way_latency == two.site("a").one_way_latency

    def test_unplaced_database_gets_default_site(self):
        profile = centralized_profile(["a"])
        site = profile.site("never-placed")
        assert site.machine is profile.quepa_machine


def _fetch_objects(count):
    return [
        DataObject(GlobalKey("db", "c", str(i)), i) for i in range(count)
    ]


class TestVirtualRuntime:
    def make(self, databases=("db",)):
        profile = centralized_profile(list(databases))
        return VirtualRuntime(profile)

    def test_store_call_charges_roundtrip_and_service(self):
        runtime = self.make()
        ctx = runtime.root()
        ctx.store_call("db", lambda: _fetch_objects(10))
        cost = runtime.profile.cost_model
        site = runtime.profile.site("db")
        expected = (
            site.roundtrip
            + cost.per_query_overhead
            + 10 * cost.per_object_service
            + 10 * cost.per_object_cpu
        )
        assert runtime.elapsed == pytest.approx(expected)

    def test_meter_counts_queries_and_objects(self):
        runtime = self.make()
        ctx = runtime.root()
        ctx.store_call("db", lambda: _fetch_objects(3))
        ctx.store_call("db", lambda: _fetch_objects(2))
        assert runtime.meter.total_queries == 2
        assert runtime.meter.total_objects == 5
        assert runtime.meter.queries_by_database == {"db": 2}

    def test_sequential_tasks_in_one_worker_serialize(self):
        runtime = self.make()
        ctx = runtime.root()
        pool = ctx.pool(1)
        for __ in range(3):
            pool.submit(lambda child: child.cpu(1.0))
        pool.join()
        assert runtime.elapsed >= 3.0

    def test_parallel_tasks_overlap(self):
        runtime = VirtualRuntime(centralized_profile(["db"], cores=16))
        ctx = runtime.root()
        pool = ctx.pool(4)
        for __ in range(4):
            pool.submit(lambda child: child.cpu(1.0))
        pool.join()
        assert runtime.elapsed < 1.5

    def test_graham_bound_caps_speedup_at_cores(self):
        """More workers than cores cannot beat total_work / cores."""
        runtime = VirtualRuntime(centralized_profile(["db"], cores=2))
        ctx = runtime.root()
        pool = ctx.pool(16)
        for __ in range(16):
            pool.submit(lambda child: child.cpu(1.0))
        pool.join()
        assert runtime.elapsed >= 16.0 / 2

    def test_latency_waits_do_not_consume_cores(self):
        """Blocked threads overlap freely even on a 1-core host."""
        profile = distributed_profile(["db"], cores=1, min_latency=0.1,
                                      max_latency=0.1)
        runtime = VirtualRuntime(profile)
        ctx = runtime.root()
        pool = ctx.pool(10)
        for __ in range(10):
            pool.submit(
                lambda child: child.store_call("db", lambda: [])
            )
        pool.join()
        # 10 x 0.2s roundtrips overlapped: far less than 2s sequential.
        assert runtime.elapsed < 0.5

    def test_nested_pools_compose(self):
        runtime = VirtualRuntime(centralized_profile(["db"], cores=64))
        ctx = runtime.root()

        def outer_task(child):
            inner = child.pool(2)
            inner.submit(lambda grandchild: grandchild.cpu(1.0))
            inner.submit(lambda grandchild: grandchild.cpu(1.0))
            inner.join()
            return child.now

        pool = ctx.pool(2)
        pool.submit(outer_task)
        pool.submit(outer_task)
        pool.join()
        # 4 seconds of CPU across 4-way nested parallelism.
        assert runtime.elapsed < 1.6

    def test_results_returned_in_submission_order(self):
        runtime = self.make()
        ctx = runtime.root()
        pool = ctx.pool(2)
        for value in range(5):
            pool.submit(lambda child, v=value: v)
        assert pool.join() == [0, 1, 2, 3, 4]

    def test_root_resets_elapsed(self):
        runtime = self.make()
        ctx = runtime.root()
        ctx.cpu(5.0)
        assert runtime.elapsed == pytest.approx(5.0)
        runtime.root()
        assert runtime.elapsed == 0.0


class TestRealRuntime:
    def test_tasks_actually_run_and_results_collected(self):
        runtime = RealRuntime(centralized_profile(["db"]))
        ctx = runtime.root()
        pool = ctx.pool(4)
        for value in range(8):
            pool.submit(lambda child, v=value: v * 2)
        assert pool.join() == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_store_call_executes_and_meters(self):
        runtime = RealRuntime(centralized_profile(["db"]))
        ctx = runtime.root()
        results = ctx.store_call("db", lambda: _fetch_objects(4))
        assert len(results) == 4
        assert runtime.meter.total_objects == 4

    def test_elapsed_measures_wall_time(self):
        runtime = RealRuntime(centralized_profile(["db"]))
        runtime.root()
        runtime.stop()
        assert runtime.elapsed >= 0.0

    def test_cost_model_exposed_via_context(self):
        model = CostModel(cache_probe_cost=0.123)
        profile = centralized_profile(["db"], cost_model=model)
        runtime = RealRuntime(profile)
        assert runtime.root().cost_model.cache_probe_cost == 0.123


class TestMachine:
    def test_reset_clears_resource(self):
        machine = Machine("m", 2)
        machine.cpu.acquire(0.0, 5.0)
        machine.reset()
        assert machine.cpu.earliest_free() == 0.0
