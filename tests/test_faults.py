"""The fault-injection & resilience layer (repro.faults).

Three families of tests live here:

* plain unit tests of the injector's decision logic and the meter's
  failed-call accounting — always run (tier-1);
* the zero-fault-overhead regression: with no injector attached, the
  fault layer must not add store calls, events, or a single float
  operation to the virtual-time numbers — always run (tier-1);
* ``chaos``-marked suites that run seeded fault schedules over a
  Fig 9-shaped workload and assert augmentations complete or degrade
  cleanly, breakers trip and recover at the configured thresholds, and
  retry backoff timing is exact under the virtual clock. Deselected by
  the tier-1 gate (``-m "not chaos"``); CI runs them in their own step.
"""

from __future__ import annotations

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    InjectedFaultError,
    StoreUnavailableError,
    TimeoutExceeded,
)
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    ResilienceConfig,
    ResilienceManager,
    parse_fault_spec,
)
from repro.testing import DownStore
from repro.workloads import PolystoreScale, QueryWorkload, build_polyphony

from .conftest import make_mini_aindex, make_mini_polystore


# ---------------------------------------------------------------------------
# Fixtures: a Fig 9-shaped (smaller) workload bundle
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def chaos_bundle():
    """A private bundle for fault runs (never share a mutated A' index)."""
    return build_polyphony(stores=4, scale=PolystoreScale(n_albums=80), seed=11)


def run_query(quepa, bundle, database="transactions", size=10, level=1,
              config=None):
    query = QueryWorkload(bundle).query(database, size)
    return quepa.augmented_search(
        query.database, query.query, level=level, config=config
    )


def answer_keys(answer):
    return (
        {obj.key for obj in answer.originals}
        | {entry.key for entry in answer.augmented}
    )


# ---------------------------------------------------------------------------
# Spec parsing and validation (tier-1)
# ---------------------------------------------------------------------------


class TestFaultSpec:
    def test_parse_minimal(self):
        spec = parse_fault_spec("catalogue:fail")
        assert spec.database == "catalogue"
        assert spec.kind == "fail"
        assert spec.rate == 1.0

    def test_parse_parameters(self):
        spec = parse_fault_spec("discount:stall:stall_seconds=0.2,every=3")
        assert spec.stall_seconds == 0.2
        assert spec.every == 3
        assert isinstance(spec.every, int)

    @pytest.mark.parametrize("text", [
        "nocolon", "db:unknown_kind", "db:fail:rate", "db:fail:bogus=1",
        "db:fail:rate=2.0",
    ])
    def test_parse_rejects(self, text):
        with pytest.raises(ValueError):
            parse_fault_spec(text)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(database="db", kind="flap", up_seconds=0.0)
        with pytest.raises(ValueError):
            FaultSpec(database="db", kind="truncate", keep_fraction=1.5)

    def test_as_dict_round_trips(self):
        spec = FaultSpec(database="db", kind="truncate", keep_fraction=0.25)
        assert FaultSpec(**spec.as_dict()) == spec


class TestInjectorDecisions:
    def test_every_nth_call(self):
        injector = FaultInjector()
        injector.inject("db", "fail", every=3)
        actions = [injector.decide("db", 0.0).action for _ in range(6)]
        assert actions == ["ok", "ok", "fail", "ok", "ok", "fail"]

    def test_rate_is_seeded_and_deterministic(self):
        first = FaultInjector(seed=5)
        first.inject("db", "fail", rate=0.5)
        second = FaultInjector(seed=5)
        second.inject("db", "fail", rate=0.5)
        a = [first.decide("db", 0.0).action for _ in range(32)]
        b = [second.decide("db", 0.0).action for _ in range(32)]
        assert a == b
        assert "fail" in a and "ok" in a

    def test_flap_follows_the_clock(self):
        injector = FaultInjector()
        injector.inject("db", "flap", up_seconds=1.0, down_seconds=0.5)
        assert injector.decide("db", 0.2).action == "ok"
        assert injector.decide("db", 1.2).action == "fail"
        assert injector.decide("db", 1.6).action == "ok"  # next cycle

    def test_stall_composes_with_fail(self):
        injector = FaultInjector()
        injector.inject("db", "stall", stall_seconds=0.25)
        injector.inject("db", "fail")
        decision = injector.decide("db", 0.0)
        assert decision.action == "fail"
        assert decision.extra_seconds == 0.25

    def test_other_databases_untouched(self):
        injector = FaultInjector()
        injector.inject("db", "fail")
        assert injector.decide("other", 0.0).action == "ok"

    def test_stats_counts_fired_faults(self):
        injector = FaultInjector()
        injector.inject("db", "fail", every=2)
        for _ in range(4):
            injector.decide("db", 0.0)
        stats = injector.stats()
        assert stats["calls_by_database"] == {"db": 4}
        assert stats["fired_by_database"] == {"db": {"fail": 2}}


# ---------------------------------------------------------------------------
# Meter + missing accounting when fetches fail mid-batch (tier-1)
# ---------------------------------------------------------------------------


class TestFailureAccounting:
    def _quepa_with_down_catalogue(self):
        polystore = make_mini_polystore()
        polystore.attach("catalogue", DownStore(polystore.detach("catalogue")))
        return Quepa(polystore, make_mini_aindex())

    def test_failed_calls_are_metered(self):
        quepa = self._quepa_with_down_catalogue()
        config = AugmentationConfig(skip_unavailable=True)
        answer = quepa.augmented_search(
            "transactions", "SELECT * FROM inventory", level=1, config=config
        )
        meter = quepa.runtime.meter
        # The roundtrip happened: the failed call counts as issued with
        # zero objects, and separately as failed.
        assert meter.failed_queries_by_database.get("catalogue", 0) >= 1
        assert meter.queries_by_database.get("catalogue", 0) >= 1
        assert meter.objects_by_database.get("catalogue", 0) == 0
        # Answered-query metrics must not include the failures.
        answered = quepa.obs.metrics.counter(
            "store_queries_total", database="catalogue"
        ).value
        failures = quepa.obs.metrics.counter(
            "store_failures_total", database="catalogue"
        ).value
        assert answered == 0
        assert failures == meter.failed_queries_by_database["catalogue"]
        assert answer.stats.degraded
        assert "catalogue" in answer.stats.errors

    def test_failed_fetches_do_not_feed_lazy_deletion(self):
        quepa = self._quepa_with_down_catalogue()
        nodes_before = quepa.aindex.node_count()
        config = AugmentationConfig(skip_unavailable=True)
        answer = quepa.augmented_search(
            "transactions", "SELECT * FROM inventory", level=1, config=config
        )
        # The skipped objects exist; they must not be deleted as missing.
        assert answer.stats.missing_objects == 0
        assert quepa.aindex.node_count() == nodes_before

    def test_truncated_batches_count_only_returned_objects(self):
        injector = FaultInjector()
        injector.inject("catalogue", "truncate", keep_fraction=0.0)
        quepa = Quepa(
            make_mini_polystore(), make_mini_aindex(), faults=injector,
            resilience=ResilienceConfig(retry_max_attempts=1),
        )
        nodes_before = quepa.aindex.node_count()
        answer = quepa.augmented_search(
            "transactions", "SELECT * FROM inventory", level=1,
            config=AugmentationConfig(augmenter="batch", skip_unavailable=True),
        )
        meter = quepa.runtime.meter
        assert meter.objects_by_database.get("catalogue", 0) == 0
        assert answer.stats.errors.get("catalogue") == "truncated results"
        assert answer.stats.degraded
        # Truncated keys may well exist: no lazy deletion.
        assert answer.stats.missing_objects == 0
        assert quepa.aindex.node_count() == nodes_before


# ---------------------------------------------------------------------------
# Zero-fault overhead: the layer must be invisible when unused (tier-1)
# ---------------------------------------------------------------------------


class TestZeroFaultOverhead:
    FAULT_EVENT_KINDS = {
        "fault_injected", "store_call_failed", "retry", "degraded_answer",
        "breaker_open", "breaker_half_open", "breaker_closed",
        "timeout_budget_exceeded",
    }

    def test_numbers_identical_with_empty_fault_layer(self, small_bundle):
        query = QueryWorkload(small_bundle).query("transactions", 20)
        config = AugmentationConfig(augmenter="batch", batch_size=32)

        plain = Quepa(small_bundle.polystore, small_bundle.aindex)
        baseline = plain.augmented_search(
            query.database, query.query, level=1, config=config
        )

        armed = Quepa(
            small_bundle.polystore, small_bundle.aindex,
            faults=FaultInjector(),  # attached, but no specs
            resilience=ResilienceConfig(),
        )
        shadowed = armed.augmented_search(
            query.database, query.query, level=1, config=config
        )

        # Bit-identical virtual time, same traffic, same answer.
        assert shadowed.stats.elapsed == baseline.stats.elapsed
        assert shadowed.stats.queries_issued == baseline.stats.queries_issued
        assert (
            armed.runtime.meter.queries_by_database
            == plain.runtime.meter.queries_by_database
        )
        assert answer_keys(shadowed) == answer_keys(baseline)
        assert not shadowed.stats.degraded
        assert shadowed.stats.errors == {}

    def test_no_fault_events_or_failure_metrics_without_faults(
        self, small_bundle
    ):
        quepa = Quepa(small_bundle.polystore, small_bundle.aindex)
        query = QueryWorkload(small_bundle).query("transactions", 10)
        quepa.augmented_search(query.database, query.query, level=1)
        kinds = {event.kind for event in quepa.obs.events.events()}
        assert not (kinds & self.FAULT_EVENT_KINDS)
        names = {entry["name"] for entry in quepa.obs.metrics.snapshot()}
        assert "store_failures_total" not in names
        assert "faults_injected_total" not in names
        assert quepa.runtime.meter.failed_queries_by_database == {}

    def test_fault_report_without_layers(self, small_bundle):
        quepa = Quepa(small_bundle.polystore, small_bundle.aindex)
        report = quepa.fault_report()
        assert report["faults"] is None
        assert report["resilience"] is None
        assert report["failed_queries_by_database"] == {}


class TestConfigValidation:
    def test_timeout_budget_must_be_positive(self, mini_quepa):
        with pytest.raises(ConfigurationError):
            mini_quepa.augmented_search(
                "transactions", "SELECT * FROM inventory", level=1,
                config=AugmentationConfig(timeout_budget=0.0),
            )

    def test_resilience_config_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(retry_max_attempts=0)
        with pytest.raises(ValueError):
            ResilienceConfig(breaker_failure_threshold=0)
        with pytest.raises(ValueError):
            ResilienceConfig(retry_multiplier=0.0)


# ---------------------------------------------------------------------------
# Chaos: seeded schedules over the workload (deselected in tier-1)
# ---------------------------------------------------------------------------


@pytest.mark.chaos
class TestChaosNeverRaises:
    """With faults on any single store, Quepa never raises."""

    KINDS = (
        {"kind": "fail", "rate": 0.6},
        {"kind": "truncate", "rate": 0.5, "keep_fraction": 0.5},
        {"kind": "stall", "stall_seconds": 0.02},
        {"kind": "flap", "up_seconds": 0.05, "down_seconds": 0.05},
    )

    @pytest.mark.parametrize("augmenter", ["sequential", "batch", "outer_batch"])
    def test_single_store_faults_degrade_cleanly(self, chaos_bundle, augmenter):
        baseline = run_query(
            Quepa(chaos_bundle.polystore, chaos_bundle.aindex),
            chaos_bundle,
            config=AugmentationConfig(augmenter=augmenter),
        )
        baseline_keys = answer_keys(baseline)
        for seed, database in enumerate(sorted(chaos_bundle.polystore)):
            for params in self.KINDS:
                injector = FaultInjector(seed=seed)
                injector.inject(database, **params)
                quepa = Quepa(
                    chaos_bundle.polystore, chaos_bundle.aindex,
                    faults=injector,
                    resilience=ResilienceConfig(
                        retry_max_attempts=2, breaker_failure_threshold=3
                    ),
                )
                answer = run_query(
                    quepa, chaos_bundle,
                    config=AugmentationConfig(augmenter=augmenter),
                )
                keys = answer_keys(answer)
                assert keys <= baseline_keys
                if answer.stats.degraded:
                    assert answer.stats.errors
                if keys == baseline_keys:
                    assert not answer.stats.degraded

    def test_breaker_trip_lands_in_journal(self, chaos_bundle):
        injector = FaultInjector()
        injector.inject("catalogue", "fail")
        quepa = Quepa(
            chaos_bundle.polystore, chaos_bundle.aindex,
            faults=injector,
            resilience=ResilienceConfig(
                retry_max_attempts=1, breaker_failure_threshold=2
            ),
        )
        answer = run_query(quepa, chaos_bundle, size=12)
        assert answer.stats.degraded
        kinds = [event.kind for event in quepa.obs.events.events()]
        assert "breaker_open" in kinds
        report = quepa.fault_report()
        breaker = report["resilience"]["breakers"]["catalogue"]
        assert breaker["state"] == "open"
        assert breaker["trips"] == 1
        # Once open, further calls fast-fail without touching the store.
        assert report["resilience"]["fast_fails_by_database"]["catalogue"] > 0


@pytest.mark.chaos
class TestCircuitBreakerLifecycle:
    def test_state_machine(self):
        events = []
        breaker = CircuitBreaker(
            "db", failure_threshold=3, recovery_timeout=1.0,
            half_open_max_calls=2,
            emit=lambda kind, now, db, **a: events.append((kind, now)),
        )
        for t in (0.1, 0.2):
            breaker.record_failure(t)
        assert breaker.state == "closed"
        breaker.record_failure(0.3)  # third consecutive failure trips
        assert breaker.state == "open"
        assert breaker.allow(0.5) is False  # still cooling down
        assert breaker.allow(1.4) is True  # past 0.3 + 1.0 -> half-open
        assert breaker.state == "half_open"
        assert breaker.allow(1.45) is True  # second half-open probe
        assert breaker.allow(1.5) is False  # max in-flight probes
        breaker.record_success(1.5)
        assert breaker.state == "half_open"  # needs 2 successes
        breaker.record_success(1.6)
        assert breaker.state == "closed"
        assert breaker.trips == 1
        assert breaker.recoveries == 1
        assert [kind for kind, _ in events] == [
            "breaker_open", "breaker_half_open", "breaker_closed"
        ]

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(
            "db", failure_threshold=1, recovery_timeout=0.5
        )
        breaker.record_failure(0.0)
        assert breaker.allow(0.6) is True  # half-open probe
        breaker.record_failure(0.6)
        assert breaker.state == "open"
        assert breaker.trips == 2


class _StubContext:
    """Minimal ExecContext for driving ResilienceManager directly."""

    def __init__(self):
        self.now = 0.0
        self.calls = 0
        self.fail_first = 0

    def store_call(self, database, fn, query=None):
        self.calls += 1
        self.now += 0.01  # a fixed per-call roundtrip
        if self.calls <= self.fail_first:
            raise StoreUnavailableError(f"{database}: down")
        return fn()

    def sleep(self, seconds):
        self.now += seconds


@pytest.mark.chaos
class TestRetryBackoffTiming:
    def test_backoff_delays_replay_the_seeded_rng(self):
        import random

        config = ResilienceConfig(
            retry_base_delay=0.05, retry_multiplier=2.0,
            retry_jitter=0.5, retry_seed=9,
        )
        manager = ResilienceManager(config)
        observed = [manager.backoff_delay("db", attempt) for attempt in (1, 2, 3)]
        rng = random.Random("9:db:retry")
        expected = [
            0.05 * 2.0 ** (attempt - 1) * (1 + 0.5 * rng.random())
            for attempt in (1, 2, 3)
        ]
        assert observed == expected

    def test_exact_virtual_time_of_a_recovered_call(self):
        config = ResilienceConfig(
            retry_max_attempts=3, retry_base_delay=0.1,
            retry_multiplier=2.0, retry_jitter=0.0,
            breaker_failure_threshold=10,
        )
        manager = ResilienceManager(config)
        ctx = _StubContext()
        ctx.fail_first = 2
        result = manager.call(ctx, "db", lambda: ["ok"])
        assert result == ["ok"]
        assert ctx.calls == 3
        # 3 roundtrips + backoff 0.1 (after attempt 1) + 0.2 (after 2).
        assert ctx.now == pytest.approx(3 * 0.01 + 0.1 + 0.2, abs=1e-12)
        snapshot = manager.snapshot()
        assert snapshot["retries_by_database"] == {"db": 2}

    def test_exhausted_retries_reraise(self):
        manager = ResilienceManager(ResilienceConfig(retry_max_attempts=2))
        ctx = _StubContext()
        ctx.fail_first = 99
        with pytest.raises(StoreUnavailableError):
            manager.call(ctx, "db", lambda: ["never"])
        assert ctx.calls == 2

    def test_open_breaker_fast_fails(self):
        manager = ResilienceManager(
            ResilienceConfig(
                retry_max_attempts=1, breaker_failure_threshold=1,
                breaker_recovery_timeout=10.0,
            )
        )
        ctx = _StubContext()
        ctx.fail_first = 1
        with pytest.raises(StoreUnavailableError):
            manager.call(ctx, "db", lambda: ["x"])
        calls_before = ctx.calls
        with pytest.raises(CircuitOpenError):
            manager.call(ctx, "db", lambda: ["x"])
        assert ctx.calls == calls_before  # the store was never contacted


@pytest.mark.chaos
class TestSeededScheduleDeterminism:
    def _run(self, bundle, seed):
        injector = FaultInjector(seed=seed)
        injector.inject("catalogue", "fail", rate=0.4)
        injector.inject("discount", "stall", stall_seconds=0.03, every=2)
        quepa = Quepa(
            bundle.polystore, bundle.aindex, faults=injector,
            resilience=ResilienceConfig(retry_max_attempts=2),
        )
        answer = run_query(quepa, bundle, size=15)
        return answer, quepa

    def test_same_seed_bit_identical(self, chaos_bundle):
        first, q1 = self._run(chaos_bundle, seed=21)
        second, q2 = self._run(chaos_bundle, seed=21)
        assert first.stats.elapsed == second.stats.elapsed
        assert answer_keys(first) == answer_keys(second)
        assert first.stats.errors == second.stats.errors
        assert first.stats.degraded == second.stats.degraded
        assert (
            q1.runtime.meter.queries_by_database
            == q2.runtime.meter.queries_by_database
        )
        assert (
            q1.faults.stats()["fired_by_database"]
            == q2.faults.stats()["fired_by_database"]
        )

    def test_different_seed_changes_the_schedule(self, chaos_bundle):
        first, q1 = self._run(chaos_bundle, seed=21)
        second, q2 = self._run(chaos_bundle, seed=22)
        assert (
            q1.faults.stats()["fired_by_database"]
            != q2.faults.stats()["fired_by_database"]
        )


@pytest.mark.chaos
class TestTimeoutBudget:
    def test_budget_skips_remaining_fetches(self, chaos_bundle):
        quepa = Quepa(chaos_bundle.polystore, chaos_bundle.aindex)
        baseline = run_query(quepa, chaos_bundle, size=15)

        budgeted = Quepa(chaos_bundle.polystore, chaos_bundle.aindex)
        answer = run_query(
            budgeted, chaos_bundle, size=15,
            config=AugmentationConfig(
                skip_unavailable=True,
                timeout_budget=baseline.stats.elapsed / 4,
            ),
        )
        assert answer.stats.queries_issued < baseline.stats.queries_issued
        assert answer.stats.degraded
        assert any(
            "timeout budget" in reason
            for reason in answer.stats.errors.values()
        )
        kinds = {event.kind for event in budgeted.obs.events.events()}
        assert "timeout_budget_exceeded" in kinds
        # Skipped keys exist: they must not feed lazy deletion.
        assert answer.stats.missing_objects == 0

    def test_strict_mode_raises(self, chaos_bundle):
        quepa = Quepa(chaos_bundle.polystore, chaos_bundle.aindex)
        with pytest.raises(TimeoutExceeded):
            run_query(
                quepa, chaos_bundle, size=15,
                config=AugmentationConfig(timeout_budget=1e-9),
            )
