"""Property tests: serving is answer-preserving and accountable.

The serving layer adds scheduling, not semantics. For a seeded workload
the properties are:

1. **Equivalence** — every request that completes under concurrency K
   returns exactly the answer the same request returns when executed
   sequentially (order-insensitive object-for-object match).
2. **Shed-only-missing** — requests the server shed (queue full or
   deadline expired) are the *only* ones without answers; nothing else
   is dropped and nothing fails.
3. **Reconciliation** — the scheduler's meters add up exactly:
   ``submitted == admitted + shed(queue_full) +
   shed(deadline_at_admission)`` and, at quiescence, ``admitted ==
   completed + failed + shed(deadline) + shed(stopped)``; the
   client-side view agrees with the server-side counters.
4. **Acceleration is invisible** — single-flight coalescing and hedged
   store calls change latency and physical call counts, never answers:
   with both on, every completed request still matches its sequential
   reference, even on duplicate-laden workloads built to maximize
   flight sharing, and even under seeded chaos with open breakers.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.errors import ServerBusy, ServingError
from repro.faults import FaultInjector, ResilienceConfig
from repro.network import RealRuntime, centralized_profile
from repro.serving import QuepaServer, ServingConfig
from repro.workloads import PolystoreScale, build_polyphony
from repro.workloads.queries import QueryWorkload


@pytest.fixture(scope="module")
def props_bundle():
    return build_polyphony(
        stores=4, scale=PolystoreScale(n_albums=60), seed=13
    )


def _real_quepa(bundle) -> Quepa:
    profile = centralized_profile(list(bundle.polystore))
    return Quepa(
        bundle.polystore,
        bundle.aindex,
        profile=profile,
        runtime=RealRuntime(profile),
    )


def _plan_requests(bundle, seed: int, count: int):
    """A seeded flat list of (database, query, level) requests."""
    workload = QueryWorkload(bundle)
    rng = random.Random(f"{seed}:serving-props")
    databases = [name for name, _ in bundle.databases]
    plan = []
    for _ in range(count):
        database = rng.choice(databases)
        size = rng.choice((8, 12, 16))
        level = rng.choice((0, 1, 2))
        query = workload.query(database, size, variant=rng.randrange(4))
        plan.append((database, query.query, level))
    return plan


def _signature(answer):
    return (
        frozenset(str(o.key) for o in answer.originals),
        frozenset(
            (str(a.key), round(a.probability, 12)) for a in answer.augmented
        ),
    )


def _run_concurrently(bundle, plan, config: ServingConfig, clients: int):
    """Fan the plan out over ``clients`` threads; collect per-request
    outcomes as (index, status, signature-or-None)."""
    quepa = _real_quepa(bundle)
    outcomes: list[tuple[int, str, object]] = []
    lock = threading.Lock()
    with QuepaServer(quepa, config) as server:

        def client(worker: int) -> None:
            for index in range(worker, len(plan), clients):
                database, query, level = plan[index]
                try:
                    answer = server.search(
                        f"client-{worker}", database, query, level=level
                    )
                except (ServerBusy, ServingError):
                    with lock:
                        outcomes.append((index, "shed", None))
                    continue
                except Exception as exc:  # property 2: nothing may fail
                    with lock:
                        outcomes.append((index, "failed", repr(exc)))
                    continue
                with lock:
                    outcomes.append(
                        (index, "completed", _signature(answer))
                    )

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        status = server.status()
    return outcomes, status


@pytest.mark.parametrize("seed,clients", [(0, 4), (1, 8)])
def test_concurrent_answers_equal_sequential(props_bundle, seed, clients):
    plan = _plan_requests(props_bundle, seed=seed, count=40)

    # Sequential reference: same requests, one at a time.
    sequential = _real_quepa(props_bundle)
    reference = [
        _signature(
            sequential.serve_search(database, query, level=level)
        )
        for database, query, level in plan
    ]

    outcomes, status = _run_concurrently(
        props_bundle,
        plan,
        ServingConfig(workers=clients, queue_capacity=len(plan)),
        clients,
    )

    assert len(outcomes) == len(plan)
    failures = [o for o in outcomes if o[1] == "failed"]
    assert not failures, f"requests failed under concurrency: {failures}"
    # Ample queue: nothing shed, so every single answer must match.
    assert all(outcome[1] == "completed" for outcome in outcomes)
    for index, _, signature in outcomes:
        assert signature == reference[index], (
            f"request {index} answered differently under concurrency"
        )
    totals = status["totals"]
    assert totals["submitted"] == len(plan)
    assert totals["completed"] == len(plan)
    assert totals["failed"] == 0


def test_shed_requests_are_the_only_missing_ones(props_bundle):
    plan = _plan_requests(props_bundle, seed=2, count=60)
    sequential = _real_quepa(props_bundle)
    reference = [
        _signature(sequential.serve_search(db, q, level=lvl))
        for db, q, lvl in plan
    ]

    # A deliberately tiny server: 1 worker, 2 queue slots, 8 clients —
    # shedding is expected, data loss is not.
    outcomes, status = _run_concurrently(
        props_bundle,
        plan,
        ServingConfig(
            workers=1, queue_capacity=2, max_inflight_per_session=1
        ),
        clients=8,
    )

    assert len(outcomes) == len(plan)
    by_status: dict[str, list] = {"completed": [], "shed": [], "failed": []}
    for outcome in outcomes:
        by_status[outcome[1]].append(outcome)
    assert not by_status["failed"]
    # Completed answers are exact; shed ones are absent, not torn.
    for index, _, signature in by_status["completed"]:
        assert signature == reference[index]
    assert (
        len(by_status["completed"]) + len(by_status["shed"]) == len(plan)
    )

    totals = status["totals"]
    shed = totals["shed"]
    assert totals["submitted"] == len(plan)
    assert totals["submitted"] == (
        totals["admitted"]
        + shed["queue_full"]
        + shed["deadline_at_admission"]
    )
    assert totals["admitted"] == (
        totals["completed"]
        + totals["failed"]
        + shed["deadline"]
        + shed["stopped"]
    )
    # Client-side view agrees with the server-side meters.
    assert len(by_status["completed"]) == totals["completed"]
    assert len(by_status["shed"]) == (
        shed["queue_full"]
        + shed["deadline"]
        + shed["deadline_at_admission"]
    )


def test_meters_reconcile_under_deadlines(props_bundle):
    """Deadline shedding is metered exactly like queue-full shedding."""
    plan = _plan_requests(props_bundle, seed=3, count=30)
    outcomes, status = _run_concurrently(
        props_bundle,
        plan,
        ServingConfig(
            workers=2,
            queue_capacity=len(plan),
            default_deadline=1e-9,  # everything expires while queued
        ),
        clients=6,
    )
    assert len(outcomes) == len(plan)
    assert not [o for o in outcomes if o[1] == "failed"]
    totals = status["totals"]
    shed = totals["shed"]
    assert totals["submitted"] == len(plan)
    assert totals["submitted"] == (
        totals["admitted"]
        + shed["queue_full"]
        + shed["deadline_at_admission"]
    )
    assert totals["admitted"] == (
        totals["completed"]
        + totals["failed"]
        + shed["deadline"]
        + shed["stopped"]
    )
    shed_client_side = sum(1 for o in outcomes if o[1] == "shed")
    assert shed_client_side == (
        shed["queue_full"]
        + shed["deadline"]
        + shed["deadline_at_admission"]
    )
    # With a nanosecond deadline every request is hopeless: it sheds
    # either at admission (workers all busy) or at pickup.
    assert shed["deadline"] + shed["deadline_at_admission"] >= 1


# -- acceleration equivalence -------------------------------------------------


def _duplicate_plan(bundle, seed: int, unique: int, copies: int):
    """A plan with each request repeated ``copies`` times, shuffled:
    concurrent clients then issue identical queries at the same time —
    the exact workload single-flight coalescing targets."""
    base = _plan_requests(bundle, seed=seed, count=unique)
    plan = base * copies
    random.Random(f"{seed}:duplicates").shuffle(plan)
    return plan


def test_coalesced_answers_equal_sequential(props_bundle):
    """Single-flight sharing never changes an answer, even when the
    plan is built almost entirely of identical concurrent requests."""
    plan = _duplicate_plan(props_bundle, seed=4, unique=10, copies=4)
    sequential = _real_quepa(props_bundle)
    reference = [
        _signature(sequential.serve_search(db, q, level=lvl))
        for db, q, lvl in plan
    ]
    outcomes, status = _run_concurrently(
        props_bundle,
        plan,
        ServingConfig(
            workers=8, queue_capacity=len(plan), coalesce=True
        ),
        clients=8,
    )
    assert len(outcomes) == len(plan)
    assert all(outcome[1] == "completed" for outcome in outcomes)
    for index, _, signature in outcomes:
        assert signature == reference[index], (
            f"request {index} answered differently when coalesced"
        )
    accelerator = status["accelerator"]
    assert accelerator is not None
    assert accelerator["coalesce"]["leaders"] >= 1


def test_hedged_answers_equal_sequential(props_bundle):
    """Hedging (armed as aggressively as the config allows) changes
    latency, never answers."""
    plan = _duplicate_plan(props_bundle, seed=5, unique=10, copies=3)
    sequential = _real_quepa(props_bundle)
    reference = [
        _signature(sequential.serve_search(db, q, level=lvl))
        for db, q, lvl in plan
    ]
    outcomes, status = _run_concurrently(
        props_bundle,
        plan,
        ServingConfig(
            workers=8,
            queue_capacity=len(plan),
            coalesce=True,
            hedge=True,
            hedge_min_observations=1,
            hedge_min_delay=0.0,
        ),
        clients=8,
    )
    assert len(outcomes) == len(plan)
    assert all(outcome[1] == "completed" for outcome in outcomes)
    for index, _, signature in outcomes:
        assert signature == reference[index], (
            f"request {index} answered differently when hedged"
        )
    accelerator = status["accelerator"]
    assert accelerator is not None
    assert accelerator["hedge"] is not None
    # Outcome counts are timing-dependent; the ledger, not the values,
    # is the invariant.
    hedge = accelerator["hedge"]
    assert hedge["issued"] == (
        hedge["won"] + hedge["lost"] + hedge["cancelled"]
    )


@pytest.mark.chaos
def test_hedging_with_chaos_and_open_breakers(props_bundle):
    """Seeded chaos: one store fails half its calls, breakers trip and
    open, hedging is armed to fire on nearly every call. The server
    must survive with reconciled meters, degraded (never torn) answers,
    and hedges accounted — including breaker-open skips."""
    databases = [name for name, _ in props_bundle.databases]
    injector = FaultInjector(seed=7)
    injector.inject(databases[0], kind="fail", rate=0.5)
    profile = centralized_profile(list(props_bundle.polystore))
    quepa = Quepa(
        props_bundle.polystore,
        props_bundle.aindex,
        profile=profile,
        runtime=RealRuntime(profile),
        resilience=ResilienceConfig(
            retry_max_attempts=1, breaker_failure_threshold=3
        ),
        faults=injector,
    )
    # Queries target the healthy stores only — the chaotic store is
    # still exercised through augmentation fetches (p-relations cross
    # stores), which is where hedging and breakers live.
    workload = QueryWorkload(props_bundle)
    rng = random.Random("serving-chaos-plan")
    base = []
    for _ in range(12):
        database = rng.choice(databases[1:])
        query = workload.query(
            database, rng.choice((8, 12, 16)), variant=rng.randrange(4)
        )
        base.append((database, query.query, rng.choice((1, 2))))
    plan = base * 3
    rng.shuffle(plan)
    # Degrade instead of failing: faults on the chaotic store surface
    # as partial answers, so every request either completes or sheds.
    degrade = AugmentationConfig(skip_unavailable=True)
    config = ServingConfig(
        workers=8,
        queue_capacity=len(plan),
        coalesce=True,
        hedge=True,
        hedge_min_observations=1,
        hedge_min_delay=0.0,
    )
    completed = 0
    failed: list = []
    lock = threading.Lock()
    with QuepaServer(quepa, config) as server:

        def client(worker: int) -> None:
            nonlocal completed
            for index in range(worker, len(plan), 6):
                database, query, level = plan[index]
                try:
                    server.search(
                        f"chaos-{worker}",
                        database,
                        query,
                        level=level,
                        config=degrade,
                    )
                except (ServerBusy, ServingError):
                    continue
                except Exception as exc:  # noqa: BLE001
                    with lock:
                        failed.append((index, repr(exc)))
                    continue
                with lock:
                    completed += 1

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        status = server.status()

    assert not failed, f"chaos leaked client-visible failures: {failed}"
    assert completed >= 1
    totals = status["totals"]
    shed = totals["shed"]
    assert totals["submitted"] == len(plan)
    assert totals["submitted"] == (
        totals["admitted"]
        + shed["queue_full"]
        + shed["deadline_at_admission"]
    )
    assert totals["admitted"] == (
        totals["completed"]
        + totals["failed"]
        + shed["deadline"]
        + shed["stopped"]
    )
    accelerator = status["accelerator"]
    assert accelerator is not None
    hedge = accelerator["hedge"]
    assert hedge["issued"] == (
        hedge["won"] + hedge["lost"] + hedge["cancelled"]
    )
    assert hedge["breaker_skips"] >= 0  # never negative, never crashes
    # If the chaotic store's breaker opened, the journal says so — and
    # hedging kept running for the healthy stores regardless.
    report = quepa.fault_report()
    breaker_state = report["resilience"]["breakers"].get(
        databases[0], {"state": "closed"}
    )["state"]
    assert breaker_state in {"closed", "open", "half_open"}
