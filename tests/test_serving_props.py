"""Property tests: serving is answer-preserving and accountable.

The serving layer adds scheduling, not semantics. For a seeded workload
the properties are:

1. **Equivalence** — every request that completes under concurrency K
   returns exactly the answer the same request returns when executed
   sequentially (order-insensitive object-for-object match).
2. **Shed-only-missing** — requests the server shed (queue full or
   deadline expired) are the *only* ones without answers; nothing else
   is dropped and nothing fails.
3. **Reconciliation** — the scheduler's meters add up exactly:
   ``submitted == admitted + shed(queue_full)`` and, at quiescence,
   ``admitted == completed + failed + shed(deadline)``; the client-side
   view agrees with the server-side counters.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core import Quepa
from repro.errors import ServerBusy, ServingError
from repro.network import RealRuntime, centralized_profile
from repro.serving import QuepaServer, ServingConfig
from repro.workloads import PolystoreScale, build_polyphony
from repro.workloads.queries import QueryWorkload


@pytest.fixture(scope="module")
def props_bundle():
    return build_polyphony(
        stores=4, scale=PolystoreScale(n_albums=60), seed=13
    )


def _real_quepa(bundle) -> Quepa:
    profile = centralized_profile(list(bundle.polystore))
    return Quepa(
        bundle.polystore,
        bundle.aindex,
        profile=profile,
        runtime=RealRuntime(profile),
    )


def _plan_requests(bundle, seed: int, count: int):
    """A seeded flat list of (database, query, level) requests."""
    workload = QueryWorkload(bundle)
    rng = random.Random(f"{seed}:serving-props")
    databases = [name for name, _ in bundle.databases]
    plan = []
    for _ in range(count):
        database = rng.choice(databases)
        size = rng.choice((8, 12, 16))
        level = rng.choice((0, 1, 2))
        query = workload.query(database, size, variant=rng.randrange(4))
        plan.append((database, query.query, level))
    return plan


def _signature(answer):
    return (
        frozenset(str(o.key) for o in answer.originals),
        frozenset(
            (str(a.key), round(a.probability, 12)) for a in answer.augmented
        ),
    )


def _run_concurrently(bundle, plan, config: ServingConfig, clients: int):
    """Fan the plan out over ``clients`` threads; collect per-request
    outcomes as (index, status, signature-or-None)."""
    quepa = _real_quepa(bundle)
    outcomes: list[tuple[int, str, object]] = []
    lock = threading.Lock()
    with QuepaServer(quepa, config) as server:

        def client(worker: int) -> None:
            for index in range(worker, len(plan), clients):
                database, query, level = plan[index]
                try:
                    answer = server.search(
                        f"client-{worker}", database, query, level=level
                    )
                except (ServerBusy, ServingError):
                    with lock:
                        outcomes.append((index, "shed", None))
                    continue
                except Exception as exc:  # property 2: nothing may fail
                    with lock:
                        outcomes.append((index, "failed", repr(exc)))
                    continue
                with lock:
                    outcomes.append(
                        (index, "completed", _signature(answer))
                    )

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        status = server.status()
    return outcomes, status


@pytest.mark.parametrize("seed,clients", [(0, 4), (1, 8)])
def test_concurrent_answers_equal_sequential(props_bundle, seed, clients):
    plan = _plan_requests(props_bundle, seed=seed, count=40)

    # Sequential reference: same requests, one at a time.
    sequential = _real_quepa(props_bundle)
    reference = [
        _signature(
            sequential.serve_search(database, query, level=level)
        )
        for database, query, level in plan
    ]

    outcomes, status = _run_concurrently(
        props_bundle,
        plan,
        ServingConfig(workers=clients, queue_capacity=len(plan)),
        clients,
    )

    assert len(outcomes) == len(plan)
    failures = [o for o in outcomes if o[1] == "failed"]
    assert not failures, f"requests failed under concurrency: {failures}"
    # Ample queue: nothing shed, so every single answer must match.
    assert all(outcome[1] == "completed" for outcome in outcomes)
    for index, _, signature in outcomes:
        assert signature == reference[index], (
            f"request {index} answered differently under concurrency"
        )
    totals = status["totals"]
    assert totals["submitted"] == len(plan)
    assert totals["completed"] == len(plan)
    assert totals["failed"] == 0


def test_shed_requests_are_the_only_missing_ones(props_bundle):
    plan = _plan_requests(props_bundle, seed=2, count=60)
    sequential = _real_quepa(props_bundle)
    reference = [
        _signature(sequential.serve_search(db, q, level=lvl))
        for db, q, lvl in plan
    ]

    # A deliberately tiny server: 1 worker, 2 queue slots, 8 clients —
    # shedding is expected, data loss is not.
    outcomes, status = _run_concurrently(
        props_bundle,
        plan,
        ServingConfig(
            workers=1, queue_capacity=2, max_inflight_per_session=1
        ),
        clients=8,
    )

    assert len(outcomes) == len(plan)
    by_status: dict[str, list] = {"completed": [], "shed": [], "failed": []}
    for outcome in outcomes:
        by_status[outcome[1]].append(outcome)
    assert not by_status["failed"]
    # Completed answers are exact; shed ones are absent, not torn.
    for index, _, signature in by_status["completed"]:
        assert signature == reference[index]
    assert (
        len(by_status["completed"]) + len(by_status["shed"]) == len(plan)
    )

    totals = status["totals"]
    assert totals["submitted"] == len(plan)
    assert (
        totals["submitted"]
        == totals["admitted"] + totals["shed"]["queue_full"]
    )
    assert (
        totals["admitted"]
        == totals["completed"]
        + totals["failed"]
        + totals["shed"]["deadline"]
    )
    # Client-side view agrees with the server-side meters.
    assert len(by_status["completed"]) == totals["completed"]
    assert (
        len(by_status["shed"])
        == totals["shed"]["queue_full"] + totals["shed"]["deadline"]
    )


def test_meters_reconcile_under_deadlines(props_bundle):
    """Deadline shedding is metered exactly like queue-full shedding."""
    plan = _plan_requests(props_bundle, seed=3, count=30)
    outcomes, status = _run_concurrently(
        props_bundle,
        plan,
        ServingConfig(
            workers=2,
            queue_capacity=len(plan),
            default_deadline=1e-9,  # everything expires while queued
        ),
        clients=6,
    )
    assert len(outcomes) == len(plan)
    assert not [o for o in outcomes if o[1] == "failed"]
    totals = status["totals"]
    assert totals["submitted"] == len(plan)
    assert (
        totals["admitted"]
        == totals["completed"]
        + totals["failed"]
        + totals["shed"]["deadline"]
    )
    shed_client_side = sum(1 for o in outcomes if o[1] == "shed")
    assert (
        shed_client_side
        == totals["shed"]["queue_full"] + totals["shed"]["deadline"]
    )
    # With a nanosecond deadline at least some requests must shed
    # (a request can only survive if it started within ~0 wall time).
    assert totals["shed"]["deadline"] >= 1
