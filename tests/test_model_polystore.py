"""Tests for the Polystore registry and cross-store object access."""

import pytest

from repro.errors import UnknownDatabaseError
from repro.model import GlobalKey, Polystore
from repro.stores import KeyValueStore

K = GlobalKey.parse


class TestRegistry:
    def test_attach_and_lookup(self, mini_polystore):
        assert "transactions" in mini_polystore
        assert mini_polystore.database("transactions").engine == "relational"

    def test_attach_sets_database_name(self):
        polystore = Polystore()
        store = KeyValueStore()
        polystore.attach("kv", store)
        assert store.database_name == "kv"

    def test_double_attach_rejected(self, mini_polystore):
        with pytest.raises(ValueError):
            mini_polystore.attach("transactions", KeyValueStore())

    def test_unknown_database_raises(self, mini_polystore):
        with pytest.raises(UnknownDatabaseError):
            mini_polystore.database("nope")

    def test_detach(self, mini_polystore):
        store = mini_polystore.detach("discount")
        assert store.engine == "keyvalue"
        assert "discount" not in mini_polystore

    def test_detach_unknown_raises(self, mini_polystore):
        with pytest.raises(UnknownDatabaseError):
            mini_polystore.detach("nope")

    def test_len_and_iter(self, mini_polystore):
        assert len(mini_polystore) == 4
        assert sorted(mini_polystore) == [
            "catalogue", "discount", "similar", "transactions",
        ]


class TestObjectAccess:
    def test_get_relational_object(self, mini_polystore):
        obj = mini_polystore.get(K("transactions.inventory.a32"))
        assert obj.value["name"] == "Wish"

    def test_get_document_object(self, mini_polystore):
        obj = mini_polystore.get(K("catalogue.albums.d1"))
        assert obj.value["title"] == "Wish"

    def test_get_kv_object(self, mini_polystore):
        obj = mini_polystore.get(K("discount.drop.k1:cure:wish"))
        assert obj.value == "40%"

    def test_get_graph_object(self, mini_polystore):
        obj = mini_polystore.get(K("similar.Item.i1"))
        assert obj.value["title"] == "Wish"

    def test_get_many_groups_by_database(self, mini_polystore):
        keys = [
            K("transactions.inventory.a32"),
            K("catalogue.albums.d1"),
            K("transactions.inventory.a33"),
        ]
        objects = mini_polystore.get_many(keys)
        assert [str(o.key) for o in objects] == [str(k) for k in keys]
        # One multi_get per touched database.
        assert mini_polystore.database("transactions").stats.multi_gets == 1
        assert mini_polystore.database("catalogue").stats.multi_gets == 1

    def test_get_many_drops_missing(self, mini_polystore):
        keys = [
            K("transactions.inventory.a32"),
            K("transactions.inventory.missing"),
        ]
        objects = mini_polystore.get_many(keys)
        assert len(objects) == 1

    def test_exists(self, mini_polystore):
        assert mini_polystore.exists(K("catalogue.albums.d1"))
        assert not mini_polystore.exists(K("catalogue.albums.nope"))
        assert not mini_polystore.exists(K("nodb.c.k"))

    def test_total_objects(self, mini_polystore):
        # 3 inventory + 2 albums + 1 customer + 2 discounts + 3 items
        assert mini_polystore.total_objects() == 11
