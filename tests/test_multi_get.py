"""The ``multi_get`` bulk-fetch contract, on every engine.

Each store implements the batch protocol natively (relational PK
probe, document ``$in``, graph node-id batch, key-value MGET), so the
contract is pinned engine by engine: missing keys are dropped,
duplicates are fetched once (first occurrence wins the ordering), and
the whole call counts as one ``multi_gets`` operation. A property test
cross-checks ``multi_get`` against single ``get`` calls on arbitrary
key sequences drawn over present and absent keys.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KeyNotFoundError
from repro.model import GlobalKey

from tests.conftest import make_mini_polystore

K = GlobalKey.parse

#: Every object of the mini polystore, per database (all four engines).
PRESENT = {
    "transactions": [
        K("transactions.inventory.a32"),
        K("transactions.inventory.a33"),
        K("transactions.inventory.a34"),
    ],
    "catalogue": [
        K("catalogue.albums.d1"),
        K("catalogue.albums.d2"),
        K("catalogue.customers.c1"),
    ],
    "discount": [
        K("discount.drop.k1:cure:wish"),
        K("discount.drop.k2:pixies:doolittle"),
    ],
    "similar": [
        K("similar.Item.i1"),
        K("similar.Item.i2"),
        K("similar.Item.i3"),
    ],
}

#: Keys that must be dropped: absent key, wrong collection, absent
#: collection — one triple per database.
ABSENT = {
    "transactions": [
        K("transactions.inventory.zzz"),
        K("transactions.nowhere.a32"),
    ],
    "catalogue": [K("catalogue.albums.zzz"), K("catalogue.nowhere.d1")],
    "discount": [K("discount.drop.zzz"), K("discount.other.k1:cure:wish")],
    "similar": [K("similar.Item.zzz"), K("similar.Other.i1")],
}

DATABASES = sorted(PRESENT)


@pytest.fixture(scope="module")
def polystore():
    """One shared instance: multi_get is read-only."""
    return make_mini_polystore()


@pytest.mark.parametrize("database", DATABASES)
def test_multi_get_matches_single_gets(polystore, database):
    store = polystore.database(database)
    keys = PRESENT[database]
    objects = store.multi_get(keys)
    assert [obj.key for obj in objects] == keys
    for obj in objects:
        assert obj.value == store.get(obj.key).value


@pytest.mark.parametrize("database", DATABASES)
def test_multi_get_drops_missing_keys(polystore, database):
    store = polystore.database(database)
    keys = [PRESENT[database][0], *ABSENT[database], PRESENT[database][-1]]
    objects = store.multi_get(keys)
    assert [obj.key for obj in objects] == [
        PRESENT[database][0],
        PRESENT[database][-1],
    ]
    for absent in ABSENT[database]:
        with pytest.raises(KeyNotFoundError):
            store.get(absent)


@pytest.mark.parametrize("database", DATABASES)
def test_multi_get_deduplicates_first_occurrence(polystore, database):
    store = polystore.database(database)
    first, second = PRESENT[database][0], PRESENT[database][1]
    objects = store.multi_get([second, first, second, first, second])
    assert [obj.key for obj in objects] == [second, first]


@pytest.mark.parametrize("database", DATABASES)
def test_multi_get_counts_one_batch_operation(polystore, database):
    store = polystore.database(database)
    before = store.stats.multi_gets
    store.multi_get(PRESENT[database])
    store.multi_get([])
    assert store.stats.multi_gets == before + 2


@pytest.mark.parametrize("database", DATABASES)
def test_multi_get_empty_input(polystore, database):
    assert polystore.database(database).multi_get([]) == []


# -- property: multi_get == the deduplicated single-get results ------------

_ALL_KEYS = [key for keys in PRESENT.values() for key in keys] + [
    key for keys in ABSENT.values() for key in keys
]
_KEY_INDEX = st.integers(min_value=0, max_value=len(_ALL_KEYS) - 1)

#: Shared read-only instance for the property test (building a
#: polystore per example would dominate the runtime).
_POLYSTORE = make_mini_polystore()


@pytest.mark.slow
@settings(max_examples=200, deadline=None)
@given(indexes=st.lists(_KEY_INDEX, max_size=20))
def test_multi_get_equals_single_gets_property(indexes):
    keys = [_ALL_KEYS[index] for index in indexes]
    by_database: dict[str, list[GlobalKey]] = {}
    for key in keys:
        by_database.setdefault(key.database, []).append(key)
    for database, group in by_database.items():
        store = _POLYSTORE.database(database)
        expected = []
        for key in dict.fromkeys(group):
            try:
                expected.append((key, store.get(key).value))
            except KeyNotFoundError:
                continue
        got = store.multi_get(group)
        assert [(obj.key, obj.value) for obj in got] == expected
