"""Tests for the exporters (Prometheus text, Chrome trace JSON), the
histogram percentiles and the span-tree renderer edge cases."""

import json

import pytest

from repro.core import Quepa
from repro.core.augmentation import AugmentationConfig
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Tracer,
    parse_prometheus_text,
    to_chrome_trace,
    to_prometheus,
    tree_lines,
)

QUERY = "SELECT * FROM inventory WHERE name LIKE '%wish%'"


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


class TestPrometheusExport:
    def test_counters_and_gauges_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("queries_total", database="catalogue").inc(7)
        registry.counter("queries_total", database="discount").inc(2)
        registry.gauge("pool_size").set(3)
        text = to_prometheus(registry.snapshot())
        rows = parse_prometheus_text(text)
        by_series = {
            (row["name"], tuple(sorted(row["labels"].items()))): row["value"]
            for row in rows
        }
        assert by_series[
            ("queries_total", (("database", "catalogue"),))
        ] == 7.0
        assert by_series[("queries_total", (("database", "discount"),))] == 2.0
        assert by_series[("pool_size", ())] == 3.0

    def test_type_header_once_per_metric_name(self):
        registry = MetricsRegistry()
        registry.counter("hits", shard="0").inc()
        registry.counter("hits", shard="1").inc()
        text = to_prometheus(registry.snapshot())
        assert text.count("# TYPE hits counter") == 1

    def test_histogram_series_shape(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency_seconds", buckets=(0.1, 1.0), database="x"
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        text = to_prometheus(registry.snapshot())
        rows = parse_prometheus_text(text)
        buckets = {
            row["labels"]["le"]: row["value"]
            for row in rows
            if row["name"] == "latency_seconds_bucket"
        }
        # Cumulative counts, +Inf covers everything.
        assert buckets == {"0.1": 1.0, "1": 2.0, "+Inf": 3.0}
        totals = {
            row["name"]: row["value"]
            for row in rows
            if row["name"].endswith(("_sum", "_count"))
        }
        assert totals["latency_seconds_count"] == 3.0
        assert totals["latency_seconds_sum"] == pytest.approx(5.55)

    def test_label_values_escaped_and_restored(self):
        registry = MetricsRegistry()
        nasty = 'a"b\\c\nd'
        registry.counter("odd", note=nasty).inc()
        text = to_prometheus(registry.snapshot())
        assert "\n" not in text.splitlines()[1]  # newline escaped in-line
        rows = parse_prometheus_text(text)
        assert rows[0]["labels"]["note"] == nasty

    def test_metric_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-1").inc()
        text = to_prometheus(registry.snapshot())
        assert "weird_name_1 1" in text
        parse_prometheus_text(text)  # must stay parseable

    def test_empty_snapshot_is_empty_text(self):
        assert to_prometheus([]) == ""
        assert parse_prometheus_text("") == []

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("}{not a series line")

    def test_live_registry_from_a_run(self, mini_quepa):
        mini_quepa.augmented_search("transactions", QUERY, level=1)
        text = to_prometheus(mini_quepa.obs.metrics.snapshot())
        rows = parse_prometheus_text(text)
        names = {row["name"] for row in rows}
        assert "store_queries_total" in names
        assert "store_call_seconds_bucket" in names
        assert "store_call_seconds_count" in names


# ---------------------------------------------------------------------------
# Chrome trace events
# ---------------------------------------------------------------------------


class TestChromeTraceExport:
    def test_event_schema(self):
        tracer = Tracer()
        parent = tracer.begin("augment", 0.0, None, level=1)
        tracer.record("fetch", 0.001, 0.002, parent.span_id, database="d")
        tracer.end(parent, 0.004)
        payload = to_chrome_trace(tracer.spans())
        json.dumps(payload)  # valid JSON
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        fetch = next(e for e in events if e["name"] == "fetch")
        assert fetch["ts"] == pytest.approx(1000.0)  # 0.001 s in µs
        assert fetch["dur"] == pytest.approx(1000.0)
        assert fetch["args"]["parent_id"] == parent.span_id
        assert fetch["args"]["database"] == "d"

    def test_child_nests_on_parent_lane(self):
        tracer = Tracer()
        parent = tracer.begin("outer", 0.0, None)
        child = tracer.begin("inner", 0.1, parent.span_id)
        tracer.end(child, 0.2)
        tracer.end(parent, 1.0)
        events = to_chrome_trace(tracer.spans())["traceEvents"]
        by_name = {event["name"]: event for event in events}
        assert by_name["inner"]["tid"] == by_name["outer"]["tid"]
        # ts/dur containment: the child sits inside the parent.
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_overlapping_siblings_get_separate_lanes(self):
        tracer = Tracer()
        parent = tracer.begin("pool", 0.0, None)
        a = tracer.begin("fetch", 0.1, parent.span_id)
        b = tracer.begin("fetch", 0.2, parent.span_id)  # overlaps a
        tracer.end(a, 0.5)
        tracer.end(b, 0.6)
        tracer.end(parent, 1.0)
        events = to_chrome_trace(tracer.spans())["traceEvents"]
        fetches = [e for e in events if e["name"] == "fetch"]
        assert fetches[0]["tid"] != fetches[1]["tid"]

    def test_sequential_siblings_share_the_parent_lane(self):
        tracer = Tracer()
        parent = tracer.begin("pool", 0.0, None)
        a = tracer.begin("fetch", 0.1, parent.span_id)
        tracer.end(a, 0.2)
        b = tracer.begin("fetch", 0.3, parent.span_id)
        tracer.end(b, 0.4)
        tracer.end(parent, 1.0)
        events = to_chrome_trace(tracer.spans())["traceEvents"]
        tids = {event["tid"] for event in events}
        assert len(tids) == 1

    def test_non_primitive_attrs_stringified(self):
        tracer = Tracer()
        tracer.record("s", 0.0, 1.0, None, keys=["a", "b"])
        event = to_chrome_trace(tracer.spans())["traceEvents"][0]
        assert event["args"]["keys"] == "['a', 'b']"
        json.dumps(event)

    def test_real_run_exports_consistent_tree(self, mini_quepa):
        config = AugmentationConfig(augmenter="outer", threads_size=2)
        mini_quepa.augmented_search(
            "transactions", QUERY, level=1, config=config
        )
        spans = mini_quepa.obs.tracer.spans()
        events = to_chrome_trace(spans)["traceEvents"]
        assert len(events) == len(spans)
        # Within each lane, events sorted by ts must nest like a stack:
        # every event either starts after the previous one ends, or is
        # fully contained in it.
        by_tid = {}
        for event in sorted(events, key=lambda e: (e["ts"], -e["dur"])):
            stack = by_tid.setdefault(event["tid"], [])
            while stack and stack[-1] <= event["ts"]:
                stack.pop()
            if stack:
                assert event["ts"] + event["dur"] <= stack[-1] + 1e-6
            stack.append(event["ts"] + event["dur"])


# ---------------------------------------------------------------------------
# tree_lines edge cases (CLI span tree)
# ---------------------------------------------------------------------------


class TestTreeLines:
    def test_orphan_span_renders_at_depth_zero(self):
        tracer = Tracer()
        # Parent id 999 was never retained (evicted or foreign).
        tracer.record("orphan", 0.0, 1.0, 999)
        lines = tree_lines(tracer.spans())
        assert len(lines) == 1
        assert lines[0].startswith("orphan")  # no indentation

    def test_eviction_keeps_children_renderable(self):
        tracer = Tracer(max_spans=2)
        parent = tracer.begin("parent", 0.0, None)
        child = tracer.begin("child", 0.1, parent.span_id)
        grandchild = tracer.begin("grandchild", 0.2, child.span_id)
        tracer.end(grandchild, 0.3)
        tracer.end(child, 0.4)
        tracer.end(parent, 0.5)  # over the cap: dropped
        assert tracer.dropped == 1
        lines = tree_lines(tracer.spans())
        # The child lost its parent and sits at depth 0; its own child
        # still nests underneath it.
        assert len(lines) == 2
        assert lines[0].startswith("child")
        assert lines[1].startswith("  grandchild")

    def test_mixed_roots_sorted_by_start(self):
        tracer = Tracer()
        tracer.record("late", 2.0, 3.0)
        tracer.record("early", 0.0, 1.0)
        lines = tree_lines(tracer.spans())
        assert lines[0].startswith("early")
        assert lines[1].startswith("late")


# ---------------------------------------------------------------------------
# Histogram percentiles
# ---------------------------------------------------------------------------


class TestHistogramPercentiles:
    def test_empty_histogram_is_zero(self):
        histogram = Histogram(buckets=(1.0, 2.0))
        assert histogram.percentile(0.5) == 0.0
        snap = histogram.snapshot()
        assert (snap["p50"], snap["p95"], snap["p99"]) == (0.0, 0.0, 0.0)

    def test_interpolates_inside_the_bucket(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for __ in range(100):
            histogram.observe(0.5)
        # All mass in (0, 1]: rank 50 of 100 sits halfway up the bucket.
        assert histogram.percentile(0.5) == pytest.approx(0.5)
        assert histogram.percentile(0.99) == pytest.approx(0.99)

    def test_spread_across_buckets(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5,) * 50 + (1.5,) * 50:
            histogram.observe(value)
        # p50 = top of the first bucket, p95 interpolates the second.
        assert histogram.percentile(0.5) == pytest.approx(1.0)
        assert 1.0 < histogram.percentile(0.95) <= 2.0

    def test_overflow_bucket_pins_to_observed_max(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(10.0)
        histogram.observe(50.0)
        assert histogram.percentile(0.99) == 50.0

    def test_snapshot_carries_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        histogram.observe(0.002)
        entry = registry.snapshot()[0]
        assert entry["p50"] > 0.0
        assert entry["p50"] <= entry["p95"] <= entry["p99"]
