"""Differential testing of the document store against naive filtering."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stores import DocumentStore
from repro.stores.document.query import matches_filter

_DOCS = st.lists(
    st.fixed_dictionaries(
        {
            "year": st.one_of(st.none(), st.integers(1980, 2020)),
            "plays": st.integers(0, 100),
            "genre": st.sampled_from(["rock", "pop", "jazz"]),
            "tags": st.lists(
                st.sampled_from(["live", "remix", "mono"]), max_size=3
            ),
        }
    ),
    max_size=20,
)

_FILTERS = st.one_of(
    st.builds(lambda k: {"plays": {"$gte": k}}, st.integers(0, 100)),
    st.builds(lambda g: {"genre": g}, st.sampled_from(["rock", "pop", "jazz"])),
    st.builds(lambda t: {"tags": t}, st.sampled_from(["live", "remix"])),
    st.builds(
        lambda a, b: {"year": {"$gte": min(a, b), "$lte": max(a, b)}},
        st.integers(1980, 2020),
        st.integers(1980, 2020),
    ),
    st.builds(lambda: {"year": {"$exists": True}}),
    st.builds(
        lambda k, g: {"$or": [{"plays": {"$lt": k}}, {"genre": g}]},
        st.integers(0, 100),
        st.sampled_from(["rock", "jazz"]),
    ),
)


def build_store(docs) -> DocumentStore:
    store = DocumentStore()
    store.create_collection("c")
    for index, doc in enumerate(docs):
        payload = {k: v for k, v in doc.items() if v is not None}
        payload["_id"] = f"d{index}"
        store.insert("c", payload)
    return store


class TestFindVersusNaive:
    @given(_DOCS, _FILTERS)
    @settings(max_examples=120, deadline=None)
    def test_find_matches_python_filter(self, docs, query):
        store = build_store(docs)
        got = {d["_id"] for d in store.find("c", query)}
        expected = set()
        for index, doc in enumerate(docs):
            payload = {k: v for k, v in doc.items() if v is not None}
            payload["_id"] = f"d{index}"
            if matches_filter(payload, query):
                expected.add(f"d{index}")
        assert got == expected

    @given(_DOCS, _FILTERS)
    @settings(max_examples=60, deadline=None)
    def test_index_does_not_change_answers(self, docs, query):
        plain = build_store(docs)
        indexed = build_store(docs)
        indexed.create_index("c", "genre")
        indexed.create_index("c", "tags")
        got_plain = {d["_id"] for d in plain.find("c", query)}
        got_indexed = {d["_id"] for d in indexed.find("c", query)}
        assert got_indexed == got_plain

    @given(_DOCS, st.integers(0, 10), st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_sort_skip_limit_window(self, docs, skip, limit):
        store = build_store(docs)
        everything = store.find("c", sort=[("plays", 1), ("_id", 1)])
        window = store.find(
            "c", sort=[("plays", 1), ("_id", 1)], skip=skip, limit=limit
        )
        assert window == everything[skip:skip + limit]

    @given(_DOCS)
    @settings(max_examples=60, deadline=None)
    def test_count_matches_len_find(self, docs):
        store = build_store(docs)
        assert store.count("c", {"genre": "rock"}) == len(
            store.find("c", {"genre": "rock"})
        )


class TestScanGuarantee:
    @given(st.sets(st.text("abcz", min_size=1, max_size=4), max_size=30),
           st.integers(1, 7))
    @settings(max_examples=60, deadline=None)
    def test_scan_returns_every_stable_key(self, keys, count):
        from repro.stores import KeyValueStore

        store = KeyValueStore()
        for key in keys:
            store.set(key, "v")
        seen: set[str] = set()
        cursor = 0
        for __ in range(1000):
            cursor, page = store.scan(cursor, count=count)
            seen.update(page)
            if cursor == 0:
                break
        assert seen == keys
