"""Tests for the Redis-like key-value store."""

import pytest

from repro.errors import KeyNotFoundError, QueryError
from repro.model.objects import GlobalKey
from repro.stores import KeyValueStore


@pytest.fixture
def store() -> KeyValueStore:
    kv = KeyValueStore(keyspace="drop")
    kv.database_name = "discount"
    kv.set("a:1", "10%")
    kv.set("a:2", "20%")
    kv.set("b:1", "30%")
    return kv


class TestCommands:
    def test_get_existing(self, store):
        assert store.get_command("a:1") == "10%"

    def test_get_missing_returns_none(self, store):
        assert store.get_command("nope") is None

    def test_set_overwrites(self, store):
        store.set("a:1", "99%")
        assert store.get_command("a:1") == "99%"

    def test_delete(self, store):
        assert store.delete("a:1") is True
        assert store.delete("a:1") is False
        assert store.get_command("a:1") is None

    def test_mget_preserves_order_with_none_gaps(self, store):
        assert store.mget(["b:1", "nope", "a:1"]) == ["30%", None, "10%"]

    def test_keys_glob(self, store):
        assert sorted(store.keys("a:*")) == ["a:1", "a:2"]
        assert store.keys("*") == ["a:1", "a:2", "b:1"] or set(
            store.keys("*")
        ) == {"a:1", "a:2", "b:1"}

    def test_len(self, store):
        assert len(store) == 3


class TestScan:
    def test_scan_full_iteration(self, store):
        seen: list[str] = []
        cursor = 0
        while True:
            cursor, page = store.scan(cursor, count=2)
            seen.extend(page)
            if cursor == 0:
                break
        assert sorted(seen) == ["a:1", "a:2", "b:1"]

    def test_scan_with_pattern(self, store):
        cursor, page = store.scan(0, pattern="a:*", count=10)
        assert cursor == 0
        assert page == ["a:1", "a:2"]


class TestStoreContract:
    def test_execute_pattern_query(self, store):
        objects = store.execute("KEYS a:*")
        assert [o.key.key for o in objects] == ["a:1", "a:2"]
        assert objects[0].key.database == "discount"

    def test_execute_bare_pattern(self, store):
        assert len(store.execute("*")) == 3

    def test_execute_mget_form(self, store):
        objects = store.execute(("mget", ["a:1", "missing", "b:1"]))
        assert [o.value for o in objects] == ["10%", "30%"]

    def test_execute_bad_query_raises(self, store):
        with pytest.raises(QueryError):
            store.execute(12345)

    def test_get_value_unknown_collection(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get_value("other", "a:1")

    def test_get_value_missing_key(self, store):
        with pytest.raises(KeyNotFoundError):
            store.get_value("drop", "missing")

    def test_multi_get_skips_missing(self, store):
        keys = [
            GlobalKey("discount", "drop", "a:1"),
            GlobalKey("discount", "drop", "zzz"),
        ]
        assert len(store.multi_get(keys)) == 1

    def test_collections_and_keys(self, store):
        assert store.collections() == ["drop"]
        assert sorted(store.collection_keys("drop")) == ["a:1", "a:2", "b:1"]
        assert list(store.collection_keys("nope")) == []

    def test_count_objects(self, store):
        assert store.count_objects() == 3

    def test_stats_track_queries(self, store):
        store.execute("KEYS *")
        assert store.stats.queries == 1
        assert store.stats.objects_returned == 3
