"""Chaos suite for the CDC boundary: drop, duplicate, reorder batches.

The delivery seam of :class:`~repro.cdc.hub.ChangeHub` models a
misbehaving transport between the store feeds and the maintainer.
Under any seeded fault schedule the system must stay *stale, never
wrong*: a dropped batch is simply not acked (bounded lag, redelivered
until applied), duplicated and reordered batches are harmless because
the maintainer recomputes from current store state, and once delivery
heals the index converges to the batch-rebuild truth.
"""

from __future__ import annotations

import random

import pytest

from repro.cdc import ChangeHub, IncrementalCollector, MaterializedAugmentations
from repro.core.aindex import AIndex

from tests.test_cdc_props import (
    Driver,
    batch_signature,
    build_polystore,
    index_signature,
    make_matcher,
)

pytestmark = pytest.mark.chaos

SEEDS = (3, 17, 41)


class FaultyDelivery:
    """Seeded transport faults: drop / duplicate / reorder batches."""

    def __init__(
        self,
        seed: int,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
    ) -> None:
        self.rng = random.Random(seed)
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.reorder_rate = reorder_rate
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.healthy = False

    def __call__(self, database, events):
        if self.healthy:
            return events
        roll = self.rng.random()
        if roll < self.drop_rate:
            self.dropped += 1
            return None
        roll -= self.drop_rate
        if roll < self.duplicate_rate:
            self.duplicated += 1
            return list(events) + list(events)
        roll -= self.duplicate_rate
        if roll < self.reorder_rate:
            self.reordered += 1
            shuffled = list(events)
            self.rng.shuffle(shuffled)
            return shuffled
        return events


def run_chaotic(seed, **fault_rates):
    polystore = build_polystore()
    index = AIndex()
    delivery = FaultyDelivery(seed, **fault_rates)
    hub = ChangeHub(
        polystore, index, IncrementalCollector(make_matcher()),
        delivery=delivery,
    )
    hub.bootstrap()
    driver = Driver(polystore, random.Random(seed))
    for step in range(50):
        driver.step()
        if (step + 1) % 4 == 0:
            hub.pump()
    hub.pump()  # tail events (may itself be dropped — that's the point)
    return polystore, index, hub, delivery


class TestDroppedBatches:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_drops_bound_staleness_never_corrupt(self, seed):
        polystore, index, hub, delivery = run_chaotic(seed, drop_rate=0.5)
        assert delivery.dropped > 0
        # Staleness is bounded by the unacked lag the hub reports: the
        # events exist on the feeds, nothing was lost.
        assert hub.lag() == sum(f.pending() for f in hub.feeds.values())
        # Never wrong: replaying the *pending* events through a healed
        # pipe lands exactly on the batch rebuild.
        delivery.healthy = True
        while hub.pump().batches:
            pass
        assert hub.lag() == 0
        assert index_signature(index) == batch_signature(polystore)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_redelivery_retries_same_events(self, seed):
        """A dropped batch is redelivered verbatim on the next pump —
        ack-based feeds never skip past unapplied events."""
        polystore = build_polystore()
        index = AIndex()
        dropped_batches = []

        def drop_once(database, events):
            if not dropped_batches:
                dropped_batches.append([e.seq for e in events])
                return None
            return events

        hub = ChangeHub(
            polystore, index, IncrementalCollector(make_matcher()),
            delivery=drop_once,
        )
        hub.bootstrap()
        polystore.database("catalogue").insert(
            "albums", {"_id": "dx", "title": "Silver Sessions"}
        )
        first = hub.pump()
        assert first.dropped_batches == 1
        assert hub.lag() == 1
        second = hub.pump()
        assert second.batches == 1
        assert hub.lag() == 0
        assert index_signature(index) == batch_signature(polystore)


class TestDuplicatedAndReordered:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_duplicates_are_harmless(self, seed):
        polystore, index, __, delivery = run_chaotic(
            seed, duplicate_rate=0.6
        )
        assert delivery.duplicated > 0
        assert index_signature(index) == batch_signature(polystore)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reordering_is_harmless(self, seed):
        polystore, index, __, delivery = run_chaotic(seed, reorder_rate=0.6)
        assert delivery.reordered > 0
        assert index_signature(index) == batch_signature(polystore)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_combined_faults_converge(self, seed):
        polystore, index, hub, delivery = run_chaotic(
            seed, drop_rate=0.25, duplicate_rate=0.25, reorder_rate=0.25
        )
        delivery.healthy = True
        while hub.pump().batches:
            pass
        assert index_signature(index) == batch_signature(polystore)


class TestMaterializedUnderFaults:
    def test_stale_answers_never_wrong(self):
        """With delivery down, a materialized answer may be stale — it
        reflects the last *applied* batch — but it is exactly the
        answer the pre-fault state produces, never a half-applied one,
        and invalidation fires as soon as the batch lands."""
        from repro.core import Quepa

        polystore = build_polystore()
        index = AIndex()
        tier = MaterializedAugmentations(hot_threshold=1)
        delivery = FaultyDelivery(0, drop_rate=1.0)
        hub = ChangeHub(
            polystore, index, IncrementalCollector(make_matcher()),
            materialized=tier, delivery=delivery,
        )
        hub.bootstrap()
        quepa = Quepa(polystore, index)
        database, query = (
            "transactions",
            "SELECT * FROM inventory WHERE name LIKE '%Silver%'",
        )
        baseline = quepa.augmented_search(database, query, level=1)
        tier.lookup(database, query, 1)  # miss -> hot after 1
        tier.observe(database, query, 1, True, baseline)

        # A write the hub cannot apply: the cached answer stays, stale
        # but equal to the last applied state.
        polystore.database("transactions").table("inventory").update(
            "a0", {"name": "Silver Sessions Anniversary"}
        )
        hub.pump()
        stale = tier.lookup(database, query, 1)
        assert stale is not None
        assert [str(o.key) for o in stale.originals] == [
            str(o.key) for o in baseline.originals
        ]
        assert hub.lag() > 0  # the staleness is visible, not silent

        # Delivery heals: the batch applies and the entry is gone.
        delivery.healthy = True
        report = hub.pump()
        assert report.invalidated >= 1
        assert tier.lookup(database, query, 1) is None
        assert index_signature(index) == batch_signature(polystore)
