"""Tests for the six augmenter strategies (Section IV).

The key invariant: all strategies produce exactly the same *answer*;
they differ only in the number of native queries and their overlap.
"""

import pytest

from repro.core.aindex import AIndex
from repro.core.augmentation import Augmentation, AugmentationConfig
from repro.core.augmenters import available_augmenters, make_augmenter
from repro.core.cache import LruCache
from repro.core.connectors import ConnectorRegistry
from repro.errors import ConfigurationError, UnknownAugmenterError
from repro.model.objects import GlobalKey
from repro.model.prelations import PRelation
from repro.network import RealRuntime, VirtualRuntime, centralized_profile

K = GlobalKey.parse
ALL_AUGMENTERS = (
    "sequential", "batch", "inner", "outer", "outer_batch", "outer_inner",
)


@pytest.fixture
def setup(mini_polystore, mini_aindex):
    registry = ConnectorRegistry(mini_polystore)
    augmentation = Augmentation(mini_aindex)
    seeds = [
        K("transactions.inventory.a32"),
        K("transactions.inventory.a34"),
    ]
    plan = augmentation.plan(seeds, level=1)
    profile = centralized_profile(list(mini_polystore))
    return registry, plan, profile


def run_augmenter(name, registry, plan, profile, cache=None, **config_kwargs):
    cache = cache if cache is not None else LruCache(0)
    runtime = VirtualRuntime(profile)
    ctx = runtime.root()
    augmenter = make_augmenter(name, registry, cache)
    config = AugmentationConfig(augmenter=name, **config_kwargs)
    outcome = augmenter.execute(ctx, plan, config)
    return outcome, runtime


def answer_signature(outcome):
    return sorted(
        (str(entry.key), str(entry.source), round(entry.probability, 6))
        for entry in outcome.objects
    )


class TestRegistry:
    def test_all_six_registered(self):
        assert set(ALL_AUGMENTERS) <= set(available_augmenters())

    def test_unknown_augmenter_raises(self, setup):
        registry, __, ___ = setup
        with pytest.raises(UnknownAugmenterError):
            make_augmenter("warp-drive", registry, LruCache(0))

    def test_invalid_config_rejected(self, setup):
        registry, plan, profile = setup
        with pytest.raises(ConfigurationError):
            run_augmenter("batch", registry, plan, profile, batch_size=0)
        with pytest.raises(ConfigurationError):
            run_augmenter("outer", registry, plan, profile, threads_size=0)


class TestAnswersAreEquivalent:
    @pytest.mark.parametrize("name", ALL_AUGMENTERS)
    def test_same_answer_as_sequential(self, setup, name):
        registry, plan, profile = setup
        baseline, __ = run_augmenter("sequential", registry, plan, profile)
        outcome, __ = run_augmenter(
            name, registry, plan, profile, batch_size=2, threads_size=4
        )
        assert answer_signature(outcome) == answer_signature(baseline)

    @pytest.mark.parametrize("name", ALL_AUGMENTERS)
    def test_same_answer_under_real_threads(self, setup, name):
        registry, plan, profile = setup
        baseline, __ = run_augmenter("sequential", registry, plan, profile)
        runtime = RealRuntime(profile)
        ctx = runtime.root()
        augmenter = make_augmenter(name, registry, LruCache(0))
        config = AugmentationConfig(
            augmenter=name, batch_size=2, threads_size=4
        )
        outcome = augmenter.execute(ctx, plan, config)
        assert answer_signature(outcome) == answer_signature(baseline)

    def test_inner_with_warm_cache_creates_no_pool(self, setup):
        """Regression: INNER paid the pool-creation overhead even when
        every probe hit the cache and no task was ever submitted."""
        registry, plan, profile = setup
        cache = LruCache(10_000)
        run_augmenter("inner", registry, plan, profile, cache=cache)
        outcome, runtime = run_augmenter(
            "inner", registry, plan, profile, cache=cache
        )
        assert outcome.cache_hits == plan.total_fetches()
        pools = runtime.obs.metrics.counter("pools_created_total")
        assert pools.value == 0

    @pytest.mark.parametrize("name", ("inner", "outer", "outer_batch"))
    def test_empty_plan_creates_no_pool(self, name, setup, mini_aindex):
        registry, __, profile = setup
        empty_plan = Augmentation(mini_aindex).plan([], level=1)
        assert empty_plan.total_fetches() == 0
        outcome, runtime = run_augmenter(name, registry, empty_plan, profile)
        assert outcome.objects == []
        pools = runtime.obs.metrics.counter("pools_created_total")
        assert pools.value == 0

    def test_probabilities_attached_to_objects(self, setup):
        registry, plan, profile = setup
        outcome, __ = run_augmenter("sequential", registry, plan, profile)
        assert all(0 < entry.probability <= 1 for entry in outcome.objects)
        assert any(entry.probability < 1 for entry in outcome.objects)


class TestQueryCounts:
    def test_sequential_issues_one_query_per_fetch(self, setup):
        registry, plan, profile = setup
        outcome, runtime = run_augmenter("sequential", registry, plan, profile)
        assert outcome.queries_issued == plan.total_fetches()
        assert runtime.meter.total_queries == plan.total_fetches()

    def test_batch_respects_batch_size(self, setup):
        """Fig 6(b): one query per full group, plus the final flushes."""
        registry, plan, profile = setup
        outcome, runtime = run_augmenter(
            "batch", registry, plan, profile, batch_size=4
        )
        databases = {f.key.database for f in plan.all_fetches()}
        import math
        upper = sum(
            math.ceil(
                sum(1 for f in plan.all_fetches() if f.key.database == db) / 4
            )
            for db in databases
        )
        assert outcome.queries_issued <= upper
        assert outcome.queries_issued < plan.total_fetches()

    def test_batch_size_one_degenerates_to_sequential_count(self, setup):
        registry, plan, profile = setup
        outcome, __ = run_augmenter(
            "batch", registry, plan, profile, batch_size=1
        )
        assert outcome.queries_issued == plan.total_fetches()

    def test_huge_batch_size_one_query_per_database(self, setup):
        registry, plan, profile = setup
        outcome, __ = run_augmenter(
            "batch", registry, plan, profile, batch_size=10_000
        )
        databases = {f.key.database for f in plan.all_fetches()}
        assert outcome.queries_issued == len(databases)

    def test_outer_batch_also_batches(self, setup):
        registry, plan, profile = setup
        outcome, __ = run_augmenter(
            "outer_batch", registry, plan, profile,
            batch_size=10_000, threads_size=4,
        )
        databases = {f.key.database for f in plan.all_fetches()}
        assert outcome.queries_issued == len(databases)


class TestCacheInteraction:
    def test_cache_hits_skip_store_queries(self, setup):
        registry, plan, profile = setup
        cache = LruCache(1000)
        first, __ = run_augmenter(
            "sequential", registry, plan, profile, cache=cache
        )
        assert first.cache_hits == 0
        second, runtime = run_augmenter(
            "sequential", registry, plan, profile, cache=cache
        )
        assert second.cache_hits == plan.total_fetches()
        assert runtime.meter.total_queries == 0
        assert answer_signature(second) == answer_signature(first)

    @pytest.mark.parametrize("name", ALL_AUGMENTERS)
    def test_warm_cache_equivalence(self, setup, name):
        registry, plan, profile = setup
        cache = LruCache(1000)
        cold, __ = run_augmenter(name, registry, plan, profile, cache=cache,
                                 batch_size=2, threads_size=4)
        warm, __ = run_augmenter(name, registry, plan, profile, cache=cache,
                                 batch_size=2, threads_size=4)
        assert answer_signature(warm) == answer_signature(cold)
        assert warm.cache_hits > 0

    def test_cached_probability_reweighted_per_fetch(self, setup):
        """A cached object must carry the probability of *this* path."""
        registry, plan, profile = setup
        cache = LruCache(1000)
        run_augmenter("sequential", registry, plan, profile, cache=cache)
        warm, __ = run_augmenter("sequential", registry, plan, profile,
                                 cache=cache)
        by_pair = {
            (str(e.key), str(e.source)): e.probability for e in warm.objects
        }
        cold, __ = run_augmenter("sequential", registry, plan, profile)
        for entry in cold.objects:
            assert by_pair[(str(entry.key), str(entry.source))] == pytest.approx(
                entry.probability
            )


class TestMissingObjects:
    def test_missing_objects_reported(self, mini_polystore, mini_aindex):
        ghost = K("transactions.inventory.ghost")
        mini_aindex.add(
            PRelation.identity(K("transactions.inventory.a32"), ghost, 0.9)
        )
        registry = ConnectorRegistry(mini_polystore)
        plan = Augmentation(mini_aindex).plan(
            [K("transactions.inventory.a32")], level=0
        )
        profile = centralized_profile(list(mini_polystore))
        for name in ALL_AUGMENTERS:
            outcome, __ = run_augmenter(
                name, registry, plan, profile, batch_size=2, threads_size=2
            )
            assert ghost in outcome.missing, name


class TestTimingShapes:
    """Coarse performance sanity on virtual time (full curves live in
    benchmarks/)."""

    def test_batching_is_faster_than_sequential(self, seven_store_bundle):
        bundle = seven_store_bundle
        registry = ConnectorRegistry(bundle.polystore)
        seeds = [bundle.entity_key("transactions", i) for i in range(50)]
        plan = Augmentation(bundle.aindex).plan(seeds, level=0)
        profile = centralized_profile(bundle.database_names())
        slow, __ = run_augmenter("sequential", registry, plan, profile)
        fast, __ = run_augmenter("batch", registry, plan, profile,
                                 batch_size=64)
        __, runtime_seq = run_augmenter("sequential", registry, plan, profile)
        __, runtime_batch = run_augmenter("batch", registry, plan, profile,
                                          batch_size=64)
        assert runtime_batch.elapsed < runtime_seq.elapsed

    def test_threads_speed_up_outer(self, seven_store_bundle):
        bundle = seven_store_bundle
        registry = ConnectorRegistry(bundle.polystore)
        seeds = [bundle.entity_key("catalogue", i) for i in range(50)]
        plan = Augmentation(bundle.aindex).plan(seeds, level=0)
        profile = centralized_profile(bundle.database_names())
        __, one = run_augmenter("outer", registry, plan, profile,
                                threads_size=1)
        __, eight = run_augmenter("outer", registry, plan, profile,
                                  threads_size=8)
        assert eight.elapsed < one.elapsed
