"""Tests for SQL DDL: CREATE TABLE / CREATE INDEX / DROP TABLE."""

import pytest

from repro.errors import QueryError, SchemaError, SqlSyntaxError
from repro.stores import RelationalStore


@pytest.fixture
def store() -> RelationalStore:
    return RelationalStore()


class TestCreateTable:
    def test_create_and_use(self, store):
        store.sql(
            "CREATE TABLE items ("
            "id TEXT NOT NULL PRIMARY KEY, "
            "name VARCHAR(64), "
            "price FLOAT, "
            "stock INT, "
            "active BOOLEAN)"
        )
        store.sql(
            "INSERT INTO items (id, name, price, stock, active) "
            "VALUES ('a', 'Wish', 9.5, 3, TRUE)"
        )
        rows = store.sql("SELECT * FROM items")
        assert rows == [{
            "id": "a", "name": "Wish", "price": 9.5, "stock": 3,
            "active": True,
        }]

    def test_table_level_primary_key(self, store):
        store.sql(
            "CREATE TABLE t (id TEXT NOT NULL, v INT, PRIMARY KEY (id))"
        )
        assert store.table("t").schema.primary_key == "id"

    def test_not_null_enforced(self, store):
        store.sql("CREATE TABLE t (id TEXT PRIMARY KEY, v INT NOT NULL)")
        with pytest.raises(SchemaError):
            store.sql("INSERT INTO t (id, v) VALUES ('a', NULL)")

    def test_types_validated(self, store):
        store.sql("CREATE TABLE t (id TEXT PRIMARY KEY, v INT)")
        with pytest.raises(SchemaError):
            store.sql("INSERT INTO t (id, v) VALUES ('a', 'not-an-int')")

    def test_duplicate_table_rejected(self, store):
        store.sql("CREATE TABLE t (id TEXT PRIMARY KEY)")
        with pytest.raises(SchemaError):
            store.sql("CREATE TABLE t (id TEXT PRIMARY KEY)")

    def test_if_not_exists(self, store):
        store.sql("CREATE TABLE t (id TEXT PRIMARY KEY)")
        store.sql("CREATE TABLE IF NOT EXISTS t (id TEXT PRIMARY KEY)")
        assert store.tables() == ["t"]

    def test_missing_primary_key_rejected(self, store):
        with pytest.raises(SqlSyntaxError):
            store.sql("CREATE TABLE t (id TEXT, v INT)")

    def test_missing_type_rejected(self, store):
        with pytest.raises(SqlSyntaxError):
            store.sql("CREATE TABLE t (id PRIMARY KEY)")

    def test_empty_column_list_rejected(self, store):
        with pytest.raises(SqlSyntaxError):
            store.sql("CREATE TABLE t (PRIMARY KEY (id))")


class TestCreateIndex:
    def test_index_used_by_queries(self, store):
        store.sql("CREATE TABLE t (id TEXT PRIMARY KEY, grp TEXT)")
        for i in range(6):
            store.sql(
                f"INSERT INTO t (id, grp) VALUES ('k{i}', 'g{i % 2}')"
            )
        store.sql("CREATE INDEX grp_idx ON t (grp)")
        assert store.table("t").has_index("grp")
        rows = store.sql("SELECT id FROM t WHERE grp = 'g0' ORDER BY id")
        assert [r["id"] for r in rows] == ["k0", "k2", "k4"]

    def test_anonymous_index(self, store):
        store.sql("CREATE TABLE t (id TEXT PRIMARY KEY, v INT)")
        store.sql("CREATE INDEX ON t (v)")
        assert store.table("t").has_index("v")

    def test_index_on_unknown_table(self, store):
        with pytest.raises(QueryError):
            store.sql("CREATE INDEX ON missing (v)")


class TestDropTable:
    def test_drop(self, store):
        store.sql("CREATE TABLE t (id TEXT PRIMARY KEY)")
        store.sql("DROP TABLE t")
        assert store.tables() == []

    def test_drop_missing_raises(self, store):
        with pytest.raises(QueryError):
            store.sql("DROP TABLE missing")

    def test_drop_if_exists(self, store):
        store.sql("DROP TABLE IF EXISTS missing")  # no error

    def test_full_lifecycle(self, store):
        """DDL + DML + queries end to end, SQL only."""
        store.database_name = "db"
        store.sql(
            "CREATE TABLE albums (id TEXT PRIMARY KEY, artist TEXT, "
            "year INT)"
        )
        store.sql("CREATE INDEX ON albums (artist)")
        store.sql(
            "INSERT INTO albums VALUES ('a1', 'Cure', 1992), "
            "('a2', 'Cure', 1989), ('a3', 'Pixies', 1989)"
        )
        store.sql("UPDATE albums SET year = year + 1 WHERE id = 'a3'")
        store.sql("DELETE FROM albums WHERE year = 1990")
        rows = store.sql(
            "SELECT artist, COUNT(*) AS n FROM albums GROUP BY artist"
        )
        assert rows == [{"artist": "Cure", "n": 2}]
        store.sql("DROP TABLE albums")
        assert store.tables() == []
