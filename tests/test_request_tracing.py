"""Request-scoped tracing, flight recorder and SLO monitor tests.

The acceptance spine lives here: a sharded + hedged serving run where
every scheduler-admitted request carries a ``trace_id`` that shows up
on its root span, its coalesce-follower links, every hedge attempt and
every per-shard fetch span. Around it: the tracer-reset regression,
histogram percentile edge cases, the per-request Chrome-trace lanes,
the concurrent JSONL sink, and unit suites for the flight recorder,
the SLO monitor and the latency-breakdown fold.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.core import Quepa
from repro.network import RealRuntime, centralized_profile
from repro.obs import (
    FlightRecorder,
    Observability,
    RequestDigest,
    SloConfig,
    SloMonitor,
    latency_breakdown,
)
from repro.obs.events import EventJournal
from repro.obs.export import to_chrome_trace
from repro.obs.metrics import Histogram
from repro.obs.trace import Tracer
from repro.model import Polystore
from repro.serving import QuepaServer, ServingConfig
from repro.sharding import make_scheme, partition_store, shard_aindex
from repro.ui.api import ApiError, QuepaApi
from repro.workloads import PolystoreScale, build_polyphony
from repro.workloads.queries import QueryWorkload

from tests.conftest import make_mini_aindex, make_mini_polystore

DOC_QUERY = {"collection": "albums", "filter": {}}


def _mini_real_quepa() -> Quepa:
    polystore = make_mini_polystore()
    profile = centralized_profile(list(polystore))
    return Quepa(
        polystore,
        make_mini_aindex(),
        profile=profile,
        runtime=RealRuntime(profile),
    )


# -- the acceptance criterion: sharded + hedged end-to-end ---------------------


def test_trace_propagates_through_sharded_hedged_serving():
    """Every admitted request's trace id reaches the root span, every
    per-shard fetch, every hedge attempt and every coalesce link."""
    bundle = build_polyphony(
        stores=4, scale=PolystoreScale(n_albums=60), seed=13
    )
    # Mixed placement: hash databases route each key fetch to its one
    # owning shard (fan-out 1 — the accelerator path, so hedging and
    # coalescing engage), while the range-placed database cannot prune
    # key fetches and scatters every group across both shards (fan-out
    # 2 — per-shard scatter spans). One workload exercises both paths.
    polystore = Polystore()
    for name, store in bundle.polystore.databases.items():
        placement = "range" if name == "transactions" else "hash"
        polystore.attach(name, partition_store(store, make_scheme(placement, 2)))
    aindex = shard_aindex(bundle.aindex, shards=2)
    profile = centralized_profile(list(polystore))
    quepa = Quepa(
        polystore, aindex, profile=profile, runtime=RealRuntime(profile)
    )
    workload = QueryWorkload(bundle)
    database = "catalogue"
    query = workload.query(database, 40, variant=2).query

    # Once armed, the first two fan-out-1 store calls (the facade's own
    # multi_get — the accelerator path) stall long enough for the hedge
    # to fire and for the other requests to coalesce behind the leader.
    # Scatter fetches hit shard engines directly and are never stalled.
    armed = threading.Event()
    budget = {"stalls": 2}
    budget_lock = threading.Lock()
    for name in list(polystore):
        facade = polystore.database(name)

        def stalling(keys, _orig=facade.multi_get):
            stall = False
            if armed.is_set():
                with budget_lock:
                    if budget["stalls"] > 0:
                        budget["stalls"] -= 1
                        stall = True
            if stall:
                time.sleep(0.08)
            return _orig(keys)

        facade.multi_get = stalling

    config = ServingConfig(
        workers=6,
        coalesce=True,
        hedge=True,
        hedge_min_observations=1,
        hedge_min_delay=0.001,
        recorder_slow_threshold=1e-9,  # retain every completion
    )
    with QuepaServer(quepa, config) as server:
        warm = server.submit_search("warm", database, query, level=1)
        expected = warm.result(30.0)
        assert expected.originals
        # The warm run filled the shared object cache; cleared, the six
        # concurrent requests below must fetch for real — which is what
        # scatters, stalls, hedges and coalesces.
        quepa.cache.clear()
        armed.set()
        tickets = [
            server.submit_search(f"s{i}", database, query, level=1)
            for i in range(6)
        ]
        answers = [ticket.result(30.0) for ticket in tickets]

    def signature(answer):
        return (
            sorted(str(obj.key) for obj in answer.originals),
            sorted(
                (str(obj.key), round(obj.probability, 12))
                for obj in answer.augmented
            ),
        )

    for answer in answers:
        assert signature(answer) == signature(expected)

    admitted = {warm.trace_id} | {ticket.trace_id for ticket in tickets}
    assert len(admitted) == 7  # distinct ids, warm included

    tracer = quepa.obs.tracer
    for trace_id in admitted:
        spans = tracer.spans_for(trace_id)
        assert all(span.trace_id == trace_id for span in spans)
        roots = [span for span in spans if span.name == "request"]
        assert len(roots) == 1, f"{trace_id}: expected one root span"
        assert roots[0].attrs.get("status") == "completed"
        assert roots[0].parent_id is None

    all_spans = tracer.spans()

    shard_fetches = [s for s in all_spans if s.name == "shard_fetch"]
    assert shard_fetches, "hash placement over 60 albums must scatter"
    assert all(span.trace_id in admitted for span in shard_fetches)

    scatters = [s for s in all_spans if s.name == "scatter_gather"]
    assert scatters
    assert all(span.trace_id in admitted for span in scatters)

    hedges = [s for s in all_spans if s.name == "hedge_attempt"]
    assert hedges, "the stalled leader call must have hedged"
    assert all(span.trace_id in admitted for span in hedges)
    assert any(span.attrs.get("outcome") == "won" for span in hedges)

    follows = [s for s in all_spans if s.name == "coalesce_wait"]
    assert follows, "identical concurrent requests must coalesce"
    for span in follows:
        assert span.trace_id in admitted
        assert span.attrs.get("leader_trace") in admitted

    # The flight recorder retained every completion (threshold 1e-9)
    # with a per-request breakdown, and the SLO monitor reads healthy.
    digests = server.records(status="completed")
    assert {d["trace_id"] for d in digests} >= admitted
    by_trace = {d["trace_id"]: d for d in digests}
    for trace_id in admitted:
        breakdown = by_trace[trace_id]["breakdown"]
        assert breakdown["store_calls"] > 0
    assert any(
        by_trace[trace_id]["breakdown"]["shard_fetch_s"]
        for trace_id in admitted
    )
    slo = server.slo_report()
    assert slo["healthy"] is True
    assert slo["availability"]["measured"] == 1.0


# -- satellite: tracer reset vs in-flight serving ------------------------------


def test_tracer_reset_under_concurrent_serving():
    """``reset()`` racing live requests never corrupts them: every
    request completes, and once the resets stop a fresh request's trace
    is fully retained under its own id."""
    quepa = _mini_real_quepa()
    with QuepaServer(quepa, ServingConfig(workers=4)) as server:
        stop = threading.Event()

        def resetter():
            while not stop.is_set():
                quepa.obs.tracer.reset()
                time.sleep(0)  # yield so workers make progress

        thread = threading.Thread(target=resetter, daemon=True)
        thread.start()
        try:
            tickets = [
                server.submit_search(
                    f"session-{i % 2}", "catalogue", DOC_QUERY, level=1
                )
                for i in range(12)
            ]
            answers = [ticket.result(10.0) for ticket in tickets]
        finally:
            stop.set()
            thread.join()
        assert all(answer.originals for answer in answers)

        fresh = server.submit_search("fresh", "catalogue", DOC_QUERY, level=1)
        fresh.result(10.0)
        spans = quepa.obs.tracer.spans_for(fresh.trace_id)
        assert [s.name for s in spans if s.name == "request"] == ["request"]
        assert any(s.name == "store_call" for s in spans)


# -- satellite: histogram percentile / fraction edge cases ---------------------


def test_percentile_empty_histogram_is_zero():
    hist = Histogram()
    assert hist.percentile(0.5) == 0.0
    assert hist.percentile(1.0) == 0.0


def test_percentile_q_at_or_below_zero_is_lower_edge():
    hist = Histogram()
    hist.observe(0.2)
    hist.observe(0.4)
    assert hist.percentile(0.0) == 0.0
    assert hist.percentile(-1.0) == 0.0


def test_percentile_q_at_or_above_one_is_observed_max():
    hist = Histogram()
    hist.observe(0.003)
    hist.observe(0.7)
    assert hist.percentile(1.0) == 0.7
    assert hist.percentile(2.0) == 0.7


def test_percentile_all_mass_in_overflow_is_observed_max():
    hist = Histogram(buckets=(0.001,))
    hist.observe(5.0)
    hist.observe(9.0)
    assert hist.percentile(0.5) == 9.0


def test_fraction_at_or_below_empty_is_one():
    assert Histogram().fraction_at_or_below(0.5) == 1.0


def test_fraction_at_or_below_exact_and_conservative_bounds():
    hist = Histogram(buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(2.0)
    # Exact on a bucket bound...
    assert hist.fraction_at_or_below(0.1) == pytest.approx(1 / 3)
    assert hist.fraction_at_or_below(1.0) == pytest.approx(2 / 3)
    # ...conservative (rounds up to the covering bucket) between bounds.
    assert hist.fraction_at_or_below(0.5) == pytest.approx(2 / 3)


# -- satellite: one Chrome-trace lane per request ------------------------------


def test_chrome_trace_gives_each_request_its_own_process():
    tracer = Tracer()
    root_a = tracer.begin("request", 0.0, None, "t-000001", session="alice")
    tracer.record(
        "store_call", 0.1, 0.2, root_a.span_id, "t-000001", database="db"
    )
    tracer.end(root_a, 0.3)
    root_b = tracer.begin("request", 0.05, None, "t-000002", session="bob")
    tracer.record(
        "shard_fetch", 0.06, 0.09, root_b.span_id, "t-000002", shard=1
    )
    tracer.end(root_b, 0.1)
    tracer.record("plan", 0.0, 0.01)  # classic untraced span

    exported = json.loads(json.dumps(to_chrome_trace(tracer.spans(), pid=7)))
    events = exported["traceEvents"]

    meta = [e for e in events if e["ph"] == "M"]
    assert [m["args"]["name"] for m in meta] == [
        "request t-000001 [alice]",
        "request t-000002 [bob]",
    ]
    request_pids = [m["pid"] for m in meta]
    assert len(set(request_pids)) == 2
    assert 7 not in request_pids

    complete = [e for e in events if e["ph"] == "X"]
    by_pid: dict[int, list[dict]] = {}
    for event in complete:
        by_pid.setdefault(event["pid"], []).append(event)
    # Untraced spans keep the caller's pid and carry no trace_id arg.
    assert [e["name"] for e in by_pid[7]] == ["plan"]
    assert "trace_id" not in by_pid[7][0]["args"]
    # Each request renders in its own process with parent links intact.
    for pid, trace_id, child in (
        (request_pids[0], "t-000001", "store_call"),
        (request_pids[1], "t-000002", "shard_fetch"),
    ):
        names = sorted(e["name"] for e in by_pid[pid])
        assert names == sorted(["request", child])
        assert all(e["args"]["trace_id"] == trace_id for e in by_pid[pid])
        root = next(e for e in by_pid[pid] if e["name"] == "request")
        leaf = next(e for e in by_pid[pid] if e["name"] == child)
        assert leaf["args"]["parent_id"] == root["args"]["span_id"]


def test_chrome_trace_without_trace_ids_is_single_process():
    tracer = Tracer()
    parent = tracer.begin("augment", 0.0)
    tracer.record("store_call", 0.1, 0.4, parent.span_id)
    tracer.end(parent, 0.5)
    exported = to_chrome_trace(tracer.spans(), pid=3)
    events = exported["traceEvents"]
    assert all(e["ph"] == "X" for e in events)
    assert {e["pid"] for e in events} == {3}


# -- satellite: concurrent writers through the JSONL sink ----------------------


def test_event_journal_sink_survives_concurrent_writers(tmp_path):
    path = tmp_path / "events.jsonl"
    journal = EventJournal(max_events=4096)
    journal.attach_sink(str(path))
    workers, per_worker = 8, 50

    def hammer(worker: int) -> None:
        for seq in range(per_worker):
            journal.emit("tick", worker=worker, seq=seq)

    threads = [
        threading.Thread(target=hammer, args=(i,)) for i in range(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    journal.close_sink()

    lines = path.read_text().splitlines()
    assert len(lines) == workers * per_worker
    rows = [json.loads(line) for line in lines]  # every line is valid JSON
    for worker in range(workers):
        seqs = [
            row["attrs"]["seq"]
            for row in rows
            if row["attrs"]["worker"] == worker
        ]
        # The lock serializes writes, so each writer's lines land in
        # its own emit order even when interleaved with the others.
        assert seqs == list(range(per_worker))


# -- flight recorder unit suite ------------------------------------------------


def _digest(
    trace: str = "t-000001",
    status: str = "completed",
    latency: float = 0.01,
    **overrides,
) -> RequestDigest:
    fields = dict(
        trace_id=trace,
        request_id=1,
        session="s1",
        kind="search",
        priority="interactive",
        status=status,
        latency_s=latency,
    )
    fields.update(overrides)
    return RequestDigest(**fields)


def test_recorder_keeps_errors_sheds_and_degraded_drops_fast():
    recorder = FlightRecorder(capacity=8, slow_threshold=1.0)
    assert recorder.observe(_digest("t-1", "failed", error="boom"))
    assert recorder.observe(
        _digest("t-2", "shed", shed_reason="queue_full", error="ServerBusy")
    )
    assert recorder.observe(_digest("t-3", degraded=True))
    assert not recorder.observe(_digest("t-4", latency=0.001))
    kept = {d.trace_id: d.kept_because for d in recorder.records()}
    # A shed digest carries its shed exception, but "shed" is the more
    # specific verdict and must win over "error".
    assert kept == {"t-1": "error", "t-2": "shed", "t-3": "degraded"}
    stats = recorder.stats()
    assert stats["observed"] == 4
    assert stats["kept"] == 3
    assert stats["kept_by_reason"] == {"error": 1, "shed": 1, "degraded": 1}


def test_recorder_absolute_slow_threshold():
    recorder = FlightRecorder(slow_threshold=0.5)
    assert not recorder.observe(_digest("t-1", latency=0.499))
    assert recorder.observe(_digest("t-2", latency=0.5))  # at threshold
    assert recorder.records()[0].kept_because == "slow"


def test_recorder_adaptive_p95_after_min_samples():
    recorder = FlightRecorder(adaptive_min_samples=10)
    for i in range(10):
        assert not recorder.observe(_digest(f"t-{i}", latency=0.01))
    # Rolling p95 is now ~0.01; an outlier at 10x is retained.
    assert recorder.observe(_digest("t-slow", latency=0.1))
    assert recorder.records()[0].kept_because == "slow"


def test_recorder_capacity_evicts_oldest():
    recorder = FlightRecorder(capacity=2, slow_threshold=1.0)
    for trace in ("t-1", "t-2", "t-3"):
        recorder.observe(_digest(trace, "failed", error="x"))
    assert [d.trace_id for d in recorder.records()] == ["t-2", "t-3"]
    assert recorder.stats()["evicted"] == 1


def test_recorder_filters_and_limit():
    recorder = FlightRecorder(slow_threshold=1.0)
    recorder.observe(_digest("t-1", "failed", session="a", error="x"))
    recorder.observe(_digest("t-2", "failed", session="b", error="x"))
    recorder.observe(_digest("t-3", "shed", session="a"))
    assert [d.trace_id for d in recorder.records(session="a")] == [
        "t-1",
        "t-3",
    ]
    assert [d.trace_id for d in recorder.records(status="shed")] == ["t-3"]
    assert [d.trace_id for d in recorder.records(limit=2)] == ["t-2", "t-3"]
    assert recorder.records(limit=0) == []
    assert recorder.as_dicts(session="b")[0]["trace_id"] == "t-2"


# -- SLO monitor unit suite ----------------------------------------------------


def test_slo_monitor_burn_rates_from_live_metrics():
    obs = Observability()
    obs.metrics.counter("serving_requests_total", outcome="completed").inc(90)
    obs.metrics.counter("serving_requests_total", outcome="failed").inc(6)
    obs.metrics.counter("serving_requests_total", outcome="shed").inc(4)
    hist = obs.metrics.histogram("serving_latency_seconds")
    for _ in range(9):
        hist.observe(0.01)
    hist.observe(5.0)

    monitor = SloMonitor(obs, SloConfig())
    report = monitor.report()
    availability = report["availability"]
    assert availability["measured"] == pytest.approx(0.9)
    assert availability["samples"] == 100
    assert availability["bad"] == 10
    # burn = (1 - 0.9) / (1 - 0.99): 10x the error budget.
    assert availability["burn_rate"] == pytest.approx(10.0)
    assert availability["healthy"] is False
    latency = report["latency"]
    assert latency["measured"] == pytest.approx(0.9)
    assert latency["burn_rate"] == pytest.approx(2.0)
    assert latency["healthy"] is False
    assert report["healthy"] is False

    monitor.publish()
    gauge = obs.metrics.gauge
    assert gauge("slo_burn_rate", slo="availability").value == pytest.approx(
        10.0
    )
    assert gauge("slo_measured", slo="latency").value == pytest.approx(0.9)
    assert gauge("slo_objective", slo="latency").value == pytest.approx(0.95)
    assert gauge("slo_healthy").value == 0.0


def test_slo_monitor_no_traffic_is_healthy():
    monitor = SloMonitor(Observability())
    report = monitor.report()
    assert report["healthy"] is True
    assert report["availability"]["measured"] == 1.0
    assert report["availability"]["burn_rate"] == 0.0
    assert report["latency"]["measured"] == 1.0


# -- latency breakdown fold ----------------------------------------------------


def test_latency_breakdown_folds_span_kinds():
    tracer = Tracer()
    trace = "t-000009"
    root = tracer.begin("request", 0.0, None, trace)
    tracer.record("plan", 0.0, 0.1, root.span_id, trace)
    tracer.record("store_call", 0.1, 0.3, root.span_id, trace, database="db1")
    tracer.record("store_call", 0.3, 0.4, root.span_id, trace, database="db1")
    tracer.record("store_call", 0.4, 0.5, root.span_id, trace, database="db2")
    sg = tracer.record(
        "scatter_gather", 0.5, 0.8, root.span_id, trace, database="db1"
    )
    tracer.record(
        "shard_fetch", 0.5, 0.7, sg.span_id, trace, database="db1", shard=0
    )
    tracer.record(
        "shard_fetch", 0.5, 0.8, sg.span_id, trace, database="db1", shard=1
    )
    tracer.record(
        "coalesce_wait", 0.8, 0.9, root.span_id, trace, leader_trace="t-1"
    )
    tracer.record(
        "hedge_attempt", 0.9, 1.0, root.span_id, trace,
        attempt="backup", outcome="won", saved_s=0.25,
    )
    tracer.record(
        "hedge_attempt", 0.9, 1.0, root.span_id, trace,
        attempt="primary", outcome="lost",
    )
    tracer.end(root, 1.0)

    out = latency_breakdown(tracer.spans_for(trace))
    assert out["store_s"]["db1"] == pytest.approx(0.3)
    assert out["store_s"]["db2"] == pytest.approx(0.1)
    assert out["store_calls"] == 3
    assert out["shard_fetch_s"]["db1/0"] == pytest.approx(0.2)
    assert out["shard_fetch_s"]["db1/1"] == pytest.approx(0.3)
    assert out["scatter_gathers"] == 1
    assert out["coalesce_wait_s"] == pytest.approx(0.1)
    assert out["coalesce_followed"] == 1
    assert out["hedge"] == {
        "attempts": 2,
        "won": 1,
        "lost": 1,
        "cancelled": 0,
        "savings_s": pytest.approx(0.25),
    }
    assert out["plan_s"] == pytest.approx(0.1)


# -- HTTP surfaces -------------------------------------------------------------


def test_api_requests_endpoint_without_server():
    api = QuepaApi(_mini_real_quepa())
    assert api.handle("GET", "/requests") == {
        "requests": [],
        "enabled": False,
        "recorder": None,
    }


def test_api_slo_endpoint_without_server_is_404():
    api = QuepaApi(_mini_real_quepa())
    with pytest.raises(ApiError) as err:
        api.handle("GET", "/slo")
    assert err.value.status == 404


def test_api_requests_and_slo_with_live_server():
    quepa = _mini_real_quepa()
    config = ServingConfig(workers=2, recorder_slow_threshold=1e-9)
    with QuepaServer(quepa, config) as server:
        api = QuepaApi(quepa, server=server)
        server.search("s1", "catalogue", DOC_QUERY, level=1, timeout=10.0)

        listing = api.handle("GET", "/requests")
        assert listing["enabled"] is True
        assert listing["recorder"]["kept"] >= 1
        assert listing["requests"][0]["status"] == "completed"
        assert listing["requests"][0]["trace_id"].startswith("t-")

        filtered = api.handle("GET", "/requests?session=nobody")
        assert filtered["requests"] == []
        with pytest.raises(ApiError) as err:
            api.handle("GET", "/requests?limit=many")
        assert err.value.status == 400

        slo = api.handle("GET", "/slo")["slo"]
        assert slo["healthy"] is True
        assert slo["availability"]["samples"] >= 1
