"""Tests for augmented search assembly and the answer API."""

import pytest

from repro.core.search import (
    AugmentedAnswer,
    SearchStats,
    assemble_answer,
    format_answer,
)
from repro.model.objects import AugmentedObject, DataObject, GlobalKey

K = GlobalKey.parse


def augmented(key, probability, source):
    return AugmentedObject(
        DataObject(K(key), {"k": key}, probability=probability),
        source=K(source),
    )


class TestAssembly:
    def test_orders_by_probability_desc(self):
        originals = [DataObject(K("db.t.s1"))]
        raw = [
            augmented("a.c.x", 0.5, "db.t.s1"),
            augmented("b.c.y", 0.9, "db.t.s1"),
            augmented("c.c.z", 0.7, "db.t.s1"),
        ]
        answer = assemble_answer(originals, raw, SearchStats())
        assert [e.probability for e in answer.augmented] == [0.9, 0.7, 0.5]

    def test_dedup_keeps_max_probability(self):
        originals = [DataObject(K("db.t.s1")), DataObject(K("db.t.s2"))]
        raw = [
            augmented("a.c.x", 0.5, "db.t.s1"),
            augmented("a.c.x", 0.8, "db.t.s2"),
        ]
        answer = assemble_answer(originals, raw, SearchStats())
        assert len(answer.augmented) == 1
        assert answer.augmented[0].probability == 0.8
        assert answer.augmented[0].source == K("db.t.s2")

    def test_self_reference_dropped(self):
        originals = [DataObject(K("db.t.s1"))]
        raw = [augmented("db.t.s1", 0.9, "db.t.s1")]
        answer = assemble_answer(originals, raw, SearchStats())
        assert answer.augmented == []

    def test_original_reachable_from_other_seed_kept(self):
        """Example 4: an original object may appear in the augmentation
        of another result."""
        originals = [DataObject(K("db.t.s1")), DataObject(K("db.t.s2"))]
        raw = [augmented("db.t.s2", 0.8, "db.t.s1")]
        answer = assemble_answer(originals, raw, SearchStats())
        assert len(answer.augmented) == 1

    def test_stats_updated(self):
        stats = SearchStats()
        answer = assemble_answer(
            [DataObject(K("db.t.s1"))],
            [augmented("a.c.x", 0.5, "db.t.s1")],
            stats,
        )
        assert stats.original_count == 1
        assert stats.augmented_count == 1
        assert answer.stats is stats

    def test_deterministic_tiebreak(self):
        originals = [DataObject(K("db.t.s1"))]
        raw = [
            augmented("b.c.y", 0.5, "db.t.s1"),
            augmented("a.c.x", 0.5, "db.t.s1"),
        ]
        answer = assemble_answer(originals, raw, SearchStats())
        assert [str(e.key) for e in answer.augmented] == ["a.c.x", "b.c.y"]


class TestAnswerApi:
    def make_answer(self) -> AugmentedAnswer:
        originals = [DataObject(K("db.t.s1"), {"n": 1})]
        raw = [
            augmented("a.c.x", 0.9, "db.t.s1"),
            augmented("b.d.y", 0.5, "db.t.s1"),
            augmented("a.c.z", 0.7, "db.t.s1"),
        ]
        return assemble_answer(originals, raw, SearchStats())

    def test_len_counts_everything(self):
        assert len(self.make_answer()) == 4

    def test_iteration_originals_first(self):
        keys = [str(obj.key) for obj in self.make_answer()]
        assert keys[0] == "db.t.s1"
        assert keys[1] == "a.c.x"

    def test_top(self):
        top = self.make_answer().top(2)
        assert [e.probability for e in top] == [0.9, 0.7]

    def test_by_database(self):
        grouped = self.make_answer().by_database()
        assert {db: len(v) for db, v in grouped.items()} == {"a": 2, "b": 1}

    def test_augmented_keys(self):
        keys = self.make_answer().augmented_keys()
        assert [str(k) for k in keys] == ["a.c.x", "a.c.z", "b.d.y"]


class TestFormatting:
    def test_format_groups_by_source(self):
        text = format_answer(self.make())
        assert "db.t.s1" in text
        assert "=> a.c.x (p=0.90)" in text

    def test_format_truncates(self):
        originals = [DataObject(K(f"db.t.s{i}")) for i in range(20)]
        answer = assemble_answer(originals, [], SearchStats())
        text = format_answer(answer, limit=3)
        assert "17 more results" in text

    @staticmethod
    def make() -> AugmentedAnswer:
        originals = [DataObject(K("db.t.s1"), {"n": 1})]
        raw = [augmented("a.c.x", 0.9, "db.t.s1")]
        return assemble_answer(originals, raw, SearchStats())


class TestEndToEnd:
    def test_running_example_level_0(self, mini_quepa):
        """Lucy's query from the introduction."""
        answer = mini_quepa.augmented_search(
            "transactions",
            "SELECT * FROM inventory WHERE name LIKE '%wish%'",
            level=0,
        )
        assert [str(o.key) for o in answer.originals] == [
            "transactions.inventory.a32"
        ]
        augmented_keys = {str(k) for k in answer.augmented_keys()}
        assert augmented_keys == {
            "catalogue.albums.d1",
            "discount.drop.k1:cure:wish",
            "similar.Item.i1",
        }
        # The discount (40%) from another store is in the answer.
        discount = next(
            e for e in answer.augmented
            if str(e.key) == "discount.drop.k1:cure:wish"
        )
        assert discount.object.value == "40%"

    def test_level_1_reaches_further(self, mini_quepa):
        level0 = mini_quepa.augmented_search(
            "transactions",
            "SELECT * FROM inventory WHERE name LIKE '%wish%'",
            level=0,
        )
        level1 = mini_quepa.augmented_search(
            "transactions",
            "SELECT * FROM inventory WHERE name LIKE '%wish%'",
            level=1,
        )
        assert len(level1.augmented) >= len(level0.augmented)
        assert "similar.Item.i2" in {
            str(k) for k in level1.augmented_keys()
        }

    def test_document_store_query_augments(self, mini_quepa):
        answer = mini_quepa.augmented_search(
            "catalogue", {"collection": "albums", "filter": {"year": 1992}}
        )
        assert "transactions.inventory.a32" in {
            str(k) for k in answer.augmented_keys()
        }

    def test_kv_query_augments(self, mini_quepa):
        answer = mini_quepa.augmented_search("discount", "KEYS k1*")
        assert "catalogue.albums.d1" in {
            str(k) for k in answer.augmented_keys()
        }

    def test_graph_query_augments(self, mini_quepa):
        answer = mini_quepa.augmented_search(
            "similar", {"op": "match", "label": "Item", "properties": {"title": "Wish"}}
        )
        assert "catalogue.albums.d1" in {
            str(k) for k in answer.augmented_keys()
        }
