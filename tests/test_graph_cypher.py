"""Tests for the Cypher-subset language of the graph store."""

import pytest

from repro.errors import QueryError
from repro.stores import GraphStore
from repro.stores.graph.cypher import parse_cypher


@pytest.fixture
def store() -> GraphStore:
    g = GraphStore()
    g.database_name = "similar"
    bands = [
        ("i1", "Wish", 1992, 8.4),
        ("i2", "Disintegration", 1989, 9.1),
        ("i3", "Doolittle", 1989, 8.8),
        ("i4", "Surfer Rosa", 1988, None),
    ]
    for node_id, title, year, rating in bands:
        g.create_node(
            "Item",
            {"title": title, "year": year, "rating": rating},
            node_id=node_id,
        )
    g.create_node("Artist", {"name": "The Cure"}, node_id="ar1")
    g.create_edge("i1", "SIMILAR", "i2", {"weight": 0.9})
    g.create_edge("i2", "SIMILAR", "i3", {"weight": 0.5})
    g.create_edge("i3", "SIMILAR", "i4", {"weight": 0.7})
    g.create_edge("ar1", "MADE", "i1")
    g.create_edge("ar1", "MADE", "i2")
    return g


class TestParsing:
    def test_minimal_query(self):
        query = parse_cypher("MATCH (n:Item) RETURN n")
        assert query.nodes[0].label == "Item"
        assert query.items[0].variable == "n"

    def test_pattern_with_edges(self):
        query = parse_cypher(
            "MATCH (a:Item)-[:SIMILAR]->(b:Item) RETURN a, b"
        )
        assert len(query.nodes) == 2
        assert query.edges[0].direction == "out"
        assert query.edges[0].rel_type == "SIMILAR"

    def test_incoming_and_undirected_edges(self):
        incoming = parse_cypher("MATCH (a)<-[:MADE]-(b) RETURN a")
        assert incoming.edges[0].direction == "in"
        undirected = parse_cypher("MATCH (a)-[:SIMILAR]-(b) RETURN a")
        assert undirected.edges[0].direction == "both"

    def test_node_properties(self):
        query = parse_cypher("MATCH (n:Item {year: 1989}) RETURN n")
        assert query.nodes[0].properties == (("year", 1989),)

    def test_where_order_limit(self):
        query = parse_cypher(
            "MATCH (n:Item) WHERE n.year >= 1989 AND NOT n.rating IS NULL "
            "RETURN n.title AS t ORDER BY n.rating DESC LIMIT 2"
        )
        assert query.where is not None
        assert query.items[0].alias == "t"
        assert query.order[0].ascending is False
        assert query.limit == 2

    def test_string_literals_both_quotes(self):
        single = parse_cypher("MATCH (n {title: 'Wish'}) RETURN n")
        double = parse_cypher('MATCH (n {title: "Wish"}) RETURN n')
        assert single.nodes[0].properties == double.nodes[0].properties

    def test_errors(self):
        for bad in (
            "RETURN n",
            "MATCH (n RETURN n",
            "MATCH (n) WHERE n RETURN n",
            "MATCH (n) RETURN n garbage",
            "MATCH (a)<-[:X]->(b) RETURN a",
        ):
            with pytest.raises(QueryError):
                parse_cypher(bad)


class TestExecution:
    def test_match_by_label(self, store):
        rows = store.cypher("MATCH (n:Item) RETURN n.title AS title")
        assert len(rows) == 4

    def test_match_property_filter(self, store):
        rows = store.cypher(
            "MATCH (n:Item {year: 1989}) RETURN n.title ORDER BY n.title"
        )
        assert [row["n.title"] for row in rows] == [
            "Disintegration", "Doolittle",
        ]

    def test_edge_traversal_out(self, store):
        rows = store.cypher(
            "MATCH (a:Item {title: 'Wish'})-[:SIMILAR]->(b) RETURN b.title"
        )
        assert [row["b.title"] for row in rows] == ["Disintegration"]

    def test_edge_traversal_in(self, store):
        rows = store.cypher(
            "MATCH (a:Item {title: 'Wish'})<-[:MADE]-(who) RETURN who.name"
        )
        assert [row["who.name"] for row in rows] == ["The Cure"]

    def test_undirected_traversal(self, store):
        rows = store.cypher(
            "MATCH (a:Item {title: 'Disintegration'})-[:SIMILAR]-(b) "
            "RETURN b.title ORDER BY b.title"
        )
        assert [row["b.title"] for row in rows] == ["Doolittle", "Wish"]

    def test_two_hop_chain(self, store):
        rows = store.cypher(
            "MATCH (a:Item {title: 'Wish'})-[:SIMILAR]->(b)-[:SIMILAR]->(c) "
            "RETURN c.title"
        )
        assert [row["c.title"] for row in rows] == ["Doolittle"]

    def test_where_comparisons(self, store):
        rows = store.cypher(
            "MATCH (n:Item) WHERE n.rating > 8.5 RETURN n.title "
            "ORDER BY n.rating DESC"
        )
        assert [row["n.title"] for row in rows] == [
            "Disintegration", "Doolittle",
        ]

    def test_where_null_checks(self, store):
        rows = store.cypher(
            "MATCH (n:Item) WHERE n.rating IS NULL RETURN n.title"
        )
        assert [row["n.title"] for row in rows] == ["Surfer Rosa"]
        rows = store.cypher(
            "MATCH (n:Item) WHERE n.rating IS NOT NULL RETURN n.title"
        )
        assert len(rows) == 3

    def test_where_boolean_combinations(self, store):
        rows = store.cypher(
            "MATCH (n:Item) WHERE n.year = 1989 OR n.title = 'Wish' "
            "RETURN n.title ORDER BY n.title"
        )
        assert len(rows) == 3
        rows = store.cypher(
            "MATCH (n:Item) WHERE NOT (n.year = 1989) RETURN n.title "
            "ORDER BY n.title"
        )
        assert [row["n.title"] for row in rows] == ["Surfer Rosa", "Wish"]

    def test_null_comparisons_are_false(self, store):
        rows = store.cypher(
            "MATCH (n:Item) WHERE n.rating < 100 RETURN n.title"
        )
        assert len(rows) == 3  # Surfer Rosa's NULL rating never matches

    def test_order_by_with_nulls(self, store):
        rows = store.cypher(
            "MATCH (n:Item) RETURN n.title ORDER BY n.rating ASC"
        )
        assert rows[0]["n.title"] == "Surfer Rosa"  # NULL first ascending

    def test_limit(self, store):
        rows = store.cypher("MATCH (n:Item) RETURN n ORDER BY n.year LIMIT 2")
        assert len(rows) == 2

    def test_multi_key_order_tie_break(self, store):
        """Equal first keys must fall through to the second key."""
        rows = store.cypher(
            "MATCH (n:Item {year: 1989}) RETURN n.title "
            "ORDER BY n.year, n.title DESC"
        )
        assert [row["n.title"] for row in rows] == [
            "Doolittle", "Disintegration",
        ]

    def test_same_variable_reuse_must_match(self, store):
        """(a)-[:SIMILAR]->(a) matches only self-loops — none here."""
        rows = store.cypher("MATCH (a:Item)-[:SIMILAR]->(a) RETURN a")
        assert rows == []

    def test_distinct_edge_semantics(self, store):
        """An undirected 2-hop cannot bounce back over the same edge."""
        rows = store.cypher(
            "MATCH (a:Item {title: 'Wish'})-[:SIMILAR]-(b)-[:SIMILAR]-(c) "
            "RETURN c.title"
        )
        assert [row["c.title"] for row in rows] == ["Doolittle"]

    def test_unbound_variable_in_where_raises(self, store):
        with pytest.raises(QueryError):
            store.cypher("MATCH (n:Item) WHERE m.year = 1 RETURN n")


class TestStoreIntegration:
    def test_execute_returns_data_objects(self, store):
        objects = store.execute(
            "MATCH (n:Item) WHERE n.year = 1989 RETURN n ORDER BY n.title"
        )
        assert [str(o.key) for o in objects] == [
            "similar.Item.i2", "similar.Item.i3",
        ]
        assert objects[0].value["title"] == "Disintegration"

    def test_execute_property_rows_are_derived(self, store):
        objects = store.execute("MATCH (n:Item) RETURN n.title")
        assert all(o.key.collection == "_result" for o in objects)

    def test_augmented_search_over_cypher(self, mini_quepa):
        """End to end: a Cypher query on the graph store, augmented."""
        answer = mini_quepa.augmented_search(
            "similar",
            "MATCH (n:Item {title: 'Wish'}) RETURN n",
        )
        assert [str(o.key) for o in answer.originals] == ["similar.Item.i1"]
        assert "catalogue.albums.d1" in {
            str(k) for k in answer.augmented_keys()
        }
