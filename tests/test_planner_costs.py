"""Cost-model calibration properties of the cross-store planner.

Three claims from docs/PLANNING.md are pinned here:

* **Accuracy band** — on fault-free workloads the *raw* analytic
  estimate of every strategy is within :data:`~repro.planner.RATIO_BAND`
  of the measured virtual-time execution (``analyze=True`` runs).
* **Calibration tightens** — after observing an execution, a strategy's
  calibrated estimate (``raw * factor``) converges on the measured time;
  faulted/OOM runs are never folded in.
* **Monotonicity** — the :class:`CostBasedOptimizer` formulas the
  push-down estimates are built from are non-decreasing in the planned
  fetch cardinality, for every augmenter and parameter choice.
"""

from __future__ import annotations

import pytest

from repro.core.augmentation import AugmentationConfig
from repro.core.runlog import QueryFeatures
from repro.faults import FaultInjector
from repro.optimizer.costbased import (
    BATCH_SIZES,
    THREADS_SIZES,
    AssumedCosts,
    CostBasedOptimizer,
)
from repro.planner import (
    RATIO_BAND,
    CalibrationStore,
    FederatedEngine,
    LogicalQuery,
)
from repro.workloads import QueryWorkload

BIG_BUDGET = 10_000_000

AUGMENTERS = (
    "sequential",
    "batch",
    "inner",
    "outer",
    "outer_batch",
    "outer_inner",
)


def make_engine(bundle, **kwargs):
    kwargs.setdefault("memory_budget", BIG_BUDGET)
    return FederatedEngine(bundle.polystore, bundle.aindex, **kwargs)


class TestCalibrationStore:
    def test_unseen_strategy_has_unit_factor(self):
        assert CalibrationStore().factor("pushdown:batch") == 1.0

    def test_first_observation_adopts_the_ratio(self):
        store = CalibrationStore()
        assert store.observe("s", raw=2.0, actual=1.0) == pytest.approx(0.5)
        assert store.factor("s") == pytest.approx(0.5)

    def test_later_observations_blend_with_ewma(self):
        store = CalibrationStore(alpha=0.4)
        store.observe("s", raw=1.0, actual=1.0)
        updated = store.observe("s", raw=1.0, actual=2.0)
        assert updated == pytest.approx(0.6 * 1.0 + 0.4 * 2.0)

    def test_ratios_are_clamped(self):
        store = CalibrationStore(min_factor=0.05, max_factor=20.0)
        assert store.observe("hi", raw=1.0, actual=1e9) == 20.0
        assert store.observe("lo", raw=1e9, actual=1e-9) == 0.05

    def test_degenerate_observations_ignored(self):
        store = CalibrationStore()
        store.observe("s", raw=0.0, actual=1.0)
        store.observe("s", raw=-1.0, actual=1.0)
        assert store.factor("s") == 1.0
        assert store.snapshot() == {}

    def test_snapshot_counts_observations(self):
        store = CalibrationStore()
        store.observe("s", raw=1.0, actual=2.0)
        store.observe("s", raw=1.0, actual=2.0)
        snap = store.snapshot()
        assert snap["s"]["observations"] == 2
        assert snap["s"]["factor"] == pytest.approx(2.0)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            CalibrationStore(alpha=0.0)
        with pytest.raises(ValueError):
            CalibrationStore(alpha=1.5)


class TestRatioBand:
    """Raw estimates track measured virtual time within the band."""

    @pytest.mark.parametrize(
        "database,level",
        [("catalogue", 0), ("catalogue", 1), ("catalogue", 2),
         ("transactions", 1)],
    )
    def test_every_strategy_within_band(
        self, small_bundle, database, level
    ):
        engine = make_engine(small_bundle)
        query = QueryWorkload(small_bundle).query(database, 15)
        logical = LogicalQuery(
            database=query.database, query=query.query, level=level
        )
        ranked, __ = engine.candidates(logical)
        raws = {estimate.strategy: estimate.raw for __, estimate in ranked}
        results = engine.execute_all(logical)
        low, high = RATIO_BAND
        for strategy, result in results.items():
            assert not result.out_of_memory and not result.errors
            ratio = result.elapsed / raws[strategy]
            assert low <= ratio <= high, (
                f"{strategy}: measured/raw = {ratio:.3f} outside {RATIO_BAND}"
            )

    def test_analyze_section_reports_ratio_in_band(self, small_bundle):
        engine = make_engine(small_bundle)
        query = QueryWorkload(small_bundle).query("catalogue", 15)
        section = engine.explain_section(
            LogicalQuery(database=query.database, query=query.query, level=1),
            analyze=True,
        )
        actual = section["actual"]
        assert actual["strategy"] == section["chosen"]
        low, high = RATIO_BAND
        assert low <= actual["ratio_to_raw"] <= high


class TestCalibrationFeedback:
    def test_observed_execution_makes_estimate_exact(self, small_bundle):
        """Virtual time is deterministic, so one observation suffices."""
        engine = make_engine(small_bundle)
        query = QueryWorkload(small_bundle).query("catalogue", 15)
        logical = LogicalQuery(
            database=query.database, query=query.query, level=1
        )
        first = engine.execute(logical, record=True)
        assert engine.calibration.snapshot()[first.chosen]["observations"] == 1
        ranked, __ = engine.candidates(logical)
        calibrated = {e.strategy: e for __, e in ranked}[first.chosen]
        assert calibrated.total == pytest.approx(
            first.result.elapsed, rel=1e-9
        )

    def test_calibration_never_loosens_the_estimate(self, small_bundle):
        engine = make_engine(small_bundle)
        query = QueryWorkload(small_bundle).query("catalogue", 15)
        logical = LogicalQuery(
            database=query.database, query=query.query, level=1
        )
        results = engine.execute_all(logical, record=True)
        after, __ = engine.candidates(logical)
        for __, estimate in after:
            measured = results[estimate.strategy].elapsed
            uncalibrated_gap = abs(estimate.raw - measured)
            calibrated_gap = abs(estimate.total - measured)
            assert calibrated_gap <= uncalibrated_gap + 1e-12

    def test_faulted_runs_are_not_observed(self, small_bundle):
        faults = FaultInjector(seed=5)
        faults.inject("discount", "fail", rate=1.0)
        engine = make_engine(small_bundle, faults=faults)
        query = QueryWorkload(small_bundle).query("catalogue", 15)
        engine.execute_all(
            LogicalQuery(database=query.database, query=query.query, level=2),
            record=True,
        )
        assert engine.calibration.snapshot() == {}


class TestMonotonicity:
    """optimizer/costbased.py: cost non-decreasing in input cardinality."""

    FETCH_GRID = (0, 1, 5, 32, 64, 100, 256, 1000, 5000)

    @staticmethod
    def features(planned, original=40, stores=5):
        return QueryFeatures(
            engine="document",
            database="catalogue",
            level=1,
            original_count=original,
            planned_fetches=planned,
            store_count=stores,
            deployment="centralized",
        )

    @pytest.mark.parametrize("augmenter", AUGMENTERS)
    def test_cost_non_decreasing_in_planned_fetches(self, augmenter):
        optimizer = CostBasedOptimizer(AssumedCosts())
        for batch_size in BATCH_SIZES:
            for threads_size in THREADS_SIZES:
                config = AugmentationConfig(
                    augmenter=augmenter,
                    batch_size=batch_size,
                    threads_size=threads_size,
                )
                costs = [
                    optimizer.estimate(self.features(planned), config)
                    for planned in self.FETCH_GRID
                ]
                for small, large in zip(costs, costs[1:]):
                    assert large >= small, (
                        f"{augmenter} b={batch_size} t={threads_size}: "
                        f"{costs}"
                    )

    @pytest.mark.parametrize("augmenter", AUGMENTERS)
    def test_cost_positive(self, augmenter):
        optimizer = CostBasedOptimizer(AssumedCosts())
        config = AugmentationConfig(augmenter=augmenter)
        assert optimizer.estimate(self.features(100), config) > 0

    def test_planner_pushdown_estimate_monotone_in_level(self, small_bundle):
        """More augmentation reach never gets a cheaper push-down plan."""
        engine = make_engine(small_bundle)
        query = QueryWorkload(small_bundle).query("catalogue", 15)
        totals = []
        for level in (0, 1, 2):
            ranked, __ = engine.candidates(
                LogicalQuery(
                    database=query.database, query=query.query, level=level
                )
            )
            raws = {e.strategy: e.raw for __, e in ranked}
            totals.append(raws["pushdown:sequential"])
        assert totals == sorted(totals)
